"""Trace file I/O in a USIMM-compatible text format.

Each line is ``<gap> <R|W> <hex line address>`` — the shape USIMM traces
take after PIN post-processing. This lets externally captured traces drive
the simulator (replacing the synthetic generator), and synthetic traces be
exported for other tools. ``.gz`` paths are compressed transparently.

Example::

    from repro.cpu.tracefile import save_trace, load_trace
    save_trace(trace, "mcf.c0.trace.gz")
    trace = load_trace("mcf.c0.trace.gz")
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.cpu.trace import MemoryOp, Trace, TraceRecord

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))
    return open(path, mode)


def format_record(record: TraceRecord) -> str:
    """One trace line: ``<gap> <R|W> <hex line address>``."""
    return "%d %s 0x%x" % (record.gap, record.op.value, record.line_address)


def parse_record(line: str) -> TraceRecord:
    """Inverse of :func:`format_record`; raises ValueError on bad input."""
    parts = line.split()
    if len(parts) != 3:
        raise ValueError("expected '<gap> <R|W> <address>', got %r" % line)
    gap_text, op_text, address_text = parts
    try:
        gap = int(gap_text)
        address = int(address_text, 0)
    except ValueError as exc:
        raise ValueError("bad numeric field in %r" % line) from exc
    try:
        op = MemoryOp(op_text)
    except ValueError as exc:
        raise ValueError("bad op %r (want R or W)" % op_text) from exc
    return TraceRecord(gap, op, address)


def save_trace(trace: Iterable[TraceRecord], path: PathLike) -> int:
    """Write a trace; returns the number of records written."""
    path = Path(path)
    count = 0
    with _open_text(path, "w") as handle:
        for record in trace:
            handle.write(format_record(record))
            handle.write("\n")
            count += 1
    return count


def iter_trace(path: PathLike) -> Iterator[TraceRecord]:
    """Stream records from a trace file (constant memory)."""
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                yield parse_record(line)
            except ValueError as exc:
                raise ValueError("%s:%d: %s" % (path, line_number, exc)) from None


def load_trace(path: PathLike, name: str = "") -> Trace:
    """Load a whole trace file into memory."""
    path = Path(path)
    return Trace(iter_trace(path), name=name or path.stem)
