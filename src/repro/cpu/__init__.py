"""Trace-driven processor models (USIMM-style cores).

* :mod:`repro.cpu.trace` — trace records: instruction gaps + memory ops.
* :mod:`repro.cpu.rob` — a 192-entry-ROB core model with fetch/retire
  width 4 (Table III); reads block retirement, writes are posted.
* :mod:`repro.cpu.multicore` — four cores in rate mode driving a shared
  memory system through blocking-point epochs.
"""

from repro.cpu.rob import CoreModel, CoreParams
from repro.cpu.trace import MemoryOp, TraceRecord

__all__ = ["CoreModel", "CoreParams", "MemoryOp", "TraceRecord"]
