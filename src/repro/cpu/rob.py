"""Trace-driven ROB core model (USIMM-style, Table III parameters).

The model captures exactly what matters for memory-system studies:

* the frontend fetches ``width`` instructions per CPU cycle;
* a reorder buffer of ``rob_size`` entries lets the core run ahead of
  outstanding reads — memory latency is invisible until the ROB fills;
* retirement is in-order at ``width`` per cycle; an incomplete read at the
  ROB head blocks it;
* writes are posted (retire immediately; the memory system absorbs them).

The core cooperates with the rest of the system through a blocking-point
protocol: :meth:`CoreModel.advance` runs until it needs the completion time
of a read the memory system has not resolved yet, then returns that handle.
The driver resolves completions (by running the memory controller) and calls
``advance`` again. Times are CPU cycles, carried as floats (width-4 retire
steps are quarter cycles).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.cpu.trace import Trace


@dataclass(frozen=True)
class CoreParams:
    """Core microarchitecture parameters (Table III)."""

    rob_size: int = 192
    width: int = 4  #: fetch and retire width, instructions per CPU cycle


class AccessHandle:
    """Future completion time (CPU cycles) of one read access.

    The memory side sets :attr:`completion_cpu` once the underlying DRAM
    requests are scheduled; ``None`` means still unresolved.
    """

    __slots__ = ("completion_cpu",)

    def __init__(self, completion_cpu: Optional[float] = None):
        self.completion_cpu = completion_cpu


#: Memory-system interface the core drives: read(line, cpu_time, core) ->
#: AccessHandle; write(line, cpu_time, core) -> None.
ReadFn = Callable[[int, float, int], AccessHandle]
WriteFn = Callable[[int, float, int], None]


class CoreModel:
    """One trace-driven core."""

    __slots__ = (
        "core_id",
        "params",
        "_read_fn",
        "_write_fn",
        "_ops",
        "_lines",
        "_terms",
        "_mem_pos",
        "_cursor",
        "_count",
        "fetch_time",
        "retire_time",
        "fetched_count",
        "retired_count",
        "done",
        "_pending_reads",
        "stall_cycles",
    )

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        read_fn: ReadFn,
        write_fn: WriteFn,
        params: CoreParams = CoreParams(),
    ):
        self.core_id = core_id
        self.params = params
        self._read_fn = read_fn
        self._write_fn = write_fn
        # Columnar batch precomputation: everything :meth:`advance` would
        # derive per record comes out of one vectorised pass over the
        # trace columns. ``terms[i]`` is the fetch-clock increment
        # ``(gap + 1) / width`` — float64 division, the identical IEEE op
        # the scalar expression performs, so the sequential adds in
        # ``advance`` produce bit-identical fetch times. ``mem_pos[i]``
        # is the instruction position of record i's memory op
        # (``cumsum(gap + 1) - 1``, matching the running fetched_count).
        gaps = np.asarray(trace.gaps, dtype=np.int64)
        instructions = gaps + 1
        self._terms: List[float] = (instructions / params.width).tolist()
        self._mem_pos: List[int] = (np.cumsum(instructions) - 1).tolist()
        self._ops: List[int] = (
            trace.ops.tolist() if hasattr(trace.ops, "tolist")
            else list(trace.ops)
        )
        self._lines: List[int] = (
            trace.lines.tolist() if hasattr(trace.lines, "tolist")
            else list(trace.lines)
        )
        self._cursor = 0
        self._count = len(self._ops)

        self.fetch_time = 0.0
        self.retire_time = 0.0
        self.fetched_count = 0  #: instructions fetched so far
        self.retired_count = 0  #: instructions retired so far
        self.done = False

        #: in-flight reads: (instruction position, handle), FIFO order.
        self._pending_reads: Deque[Tuple[int, AccessHandle]] = deque()
        self.stall_cycles = 0.0

    # ------------------------------------------------------------------

    def advance(self) -> Optional[AccessHandle]:
        """Run until blocked on an unresolved read or the trace ends.

        Returns the blocking handle, or None when the core has fully
        retired its trace.

        Hot-path note: this is the batch-advance stepper — per-record
        work is three list indexings (precomputed term, memory position,
        op) plus the memory callback. Fetch state lives in locals and is
        written back to the instance only at blocking points; the memory
        callbacks never read ``fetch_time``/``fetched_count``, and the
        precomputed columns make the stepper branch-free between ROB
        stalls. The arithmetic (one float add per record, ``max`` with
        the retire clock at stalls) is the scalar model's, op for op.
        """
        rob = self.params.rob_size
        core_id = self.core_id
        read_fn = self._read_fn
        write_fn = self._write_fn
        terms = self._terms
        mem_pos = self._mem_pos
        ops = self._ops
        lines = self._lines
        count = self._count
        retire_until = self._retire_until
        pending_append = self._pending_reads.append
        fetch_time = self.fetch_time
        retired = self.retired_count
        cursor = self._cursor
        while cursor < count:
            mem_position = mem_pos[cursor]
            needed_retired = mem_position + 1 - rob
            if needed_retired > retired:
                self.fetch_time = fetch_time
                self.fetched_count = mem_pos[cursor - 1] + 1 if cursor else 0
                blocked = retire_until(needed_retired)
                if blocked is not None:
                    self._cursor = cursor
                    return blocked
                retired = self.retired_count
                # ROB was full: fetch resumes no earlier than the freeing
                # retirement.
                retire_time = self.retire_time
                if retire_time > fetch_time:
                    self.stall_cycles += retire_time - fetch_time
                    fetch_time = retire_time

            fetch_time += terms[cursor]
            if ops[cursor]:
                write_fn(lines[cursor], fetch_time, core_id)
            else:
                handle = read_fn(lines[cursor], fetch_time, core_id)
                pending_append((mem_position, handle))
            cursor += 1
        # Trace exhausted: retire everything still in flight.
        self._cursor = cursor
        self.fetch_time = fetch_time
        self.fetched_count = mem_pos[count - 1] + 1 if count else 0
        blocked = retire_until(self.fetched_count)
        if blocked is not None:
            return blocked
        self.done = True
        return None

    # ------------------------------------------------------------------

    def _retire_until(self, count: int) -> Optional[AccessHandle]:
        """Retire instructions [retired_count, count); None on success.

        Returns the handle of the first unresolved read encountered, leaving
        state consistent for resumption.
        """
        width = self.params.width
        pending = self._pending_reads
        retired = self.retired_count
        retire_time = self.retire_time
        while retired < count:
            if pending and pending[0][0] < count:
                position, handle = pending[0]
                completion = handle.completion_cpu
                if completion is None:
                    self.retired_count = retired
                    self.retire_time = retire_time
                    return handle
                retire_time += (position - retired) / width
                if completion > retire_time:
                    retire_time = completion
                retire_time += 1.0 / width
                retired = position + 1
                pending.popleft()
            else:
                retire_time += (count - retired) / width
                retired = count
        self.retired_count = retired
        self.retire_time = retire_time
        return None

    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Retired instructions per CPU cycle so far."""
        if self.retire_time <= 0:
            return 0.0
        return self.retired_count / self.retire_time
