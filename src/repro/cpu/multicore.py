"""Multicore driver: cores + memory system, blocking-point co-simulation.

The loop alternates two phases until all traces retire:

1. every core runs until blocked on an unresolved read (or done);
2. the memory system schedules everything enqueued so far and resolves the
   outstanding handles.

Because a core only blocks on its *own* oldest incomplete read, every
request that could contend with a blocked read has been enqueued by the time
phase 2 runs — scheduling is causally complete per epoch.
"""

from __future__ import annotations

from typing import Callable, List

from repro.cpu.rob import CoreModel


class MulticoreDriver:
    """Runs a set of cores against a memory system."""

    __slots__ = (
        "cores",
        "_resolve_fn",
        "epochs",
    )

    def __init__(
        self,
        cores: List[CoreModel],
        resolve_fn: Callable[[], None],
    ):
        """``resolve_fn`` must schedule pending memory work and fill in
        every outstanding handle's completion."""
        self.cores = cores
        self._resolve_fn = resolve_fn
        self.epochs = 0

    def run(self, max_epochs: int = 10_000_000) -> None:
        """Drive all cores to completion."""
        while True:
            all_done = True
            for core in self.cores:
                if not core.done:
                    core.advance()
                    if not core.done:
                        all_done = False
            if all_done:
                return
            self._resolve_fn()
            self.epochs += 1
            if self.epochs > max_epochs:
                raise RuntimeError("multicore driver did not converge")

    @property
    def total_instructions(self) -> int:
        """Instructions retired across cores."""
        return sum(core.retired_count for core in self.cores)

    @property
    def finish_time_cpu(self) -> float:
        """CPU cycle when the slowest core retired its last instruction."""
        return max(core.retire_time for core in self.cores)
