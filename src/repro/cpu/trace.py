"""Trace format for the trace-driven cores.

A trace is a sequence of :class:`TraceRecord`: "execute ``gap`` non-memory
instructions, then perform one memory operation at ``line_address``".
Addresses are cacheline-granular (the caches and DRAM all speak lines).
This is the same shape as USIMM input traces; here they come from the
synthetic workload generator rather than Pin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List


class MemoryOp(enum.Enum):
    """Type of the memory operation ending a trace record."""

    READ = "R"
    WRITE = "W"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """``gap`` non-memory instructions followed by one memory op.

    ``slots=True`` matters at scale: traces hold tens of thousands of
    records per core, and the ROB reads ``gap``/``op``/``line_address``
    once per retired access — slot storage is both smaller and faster
    than a per-record ``__dict__``.
    """

    gap: int
    op: MemoryOp
    line_address: int

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.line_address < 0:
            raise ValueError("line_address must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (gap + the memory op)."""
        return self.gap + 1


class Trace:
    """An in-memory trace with summary statistics."""

    __slots__ = (
        "records",
        "name",
    )

    def __init__(self, records: Iterable[TraceRecord], name: str = "trace"):
        self.records: List[TraceRecord] = list(records)
        self.name = name

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_instructions(self) -> int:
        """Total instructions represented by the trace."""
        return sum(record.instructions for record in self.records)

    @property
    def accesses_per_kilo_instruction(self) -> float:
        """Memory accesses per 1000 instructions (the paper's APKI)."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self.records) / instructions

    @property
    def write_fraction(self) -> float:
        """Fraction of memory ops that are writes."""
        if not self.records:
            return 0.0
        writes = sum(1 for r in self.records if r.op is MemoryOp.WRITE)
        return writes / len(self.records)

    def footprint_lines(self) -> int:
        """Distinct cachelines touched."""
        return len({record.line_address for record in self.records})
