"""Trace format for the trace-driven cores.

A trace is a sequence of :class:`TraceRecord`: "execute ``gap`` non-memory
instructions, then perform one memory operation at ``line_address``".
Addresses are cacheline-granular (the caches and DRAM all speak lines).
This is the same shape as USIMM input traces; here they come from the
synthetic workload generator rather than Pin.

Storage is columnar: a :class:`Trace` holds three compact parallel arrays
(``gaps``/``ops``/``lines``) instead of one Python object per record —
roughly 17 bytes per access instead of ~100 — and hands hot consumers the
raw columns via :meth:`Trace.iter_accesses`. :class:`TraceRecord` remains
the one-record view for file I/O, tests, and ad-hoc construction;
iterating a trace yields records, so existing callers are unchanged.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


class MemoryOp(enum.Enum):
    """Type of the memory operation ending a trace record."""

    READ = "R"
    WRITE = "W"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """``gap`` non-memory instructions followed by one memory op.

    ``slots=True`` matters at scale: traces hold tens of thousands of
    records per core, and the ROB reads ``gap``/``op``/``line_address``
    once per retired access — slot storage is both smaller and faster
    than a per-record ``__dict__``.
    """

    gap: int
    op: MemoryOp
    line_address: int

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.line_address < 0:
            raise ValueError("line_address must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (gap + the memory op)."""
        return self.gap + 1


class Trace:
    """An in-memory trace: compact parallel columns plus summary stats.

    ``gaps``/``lines`` are signed-64 arrays, ``ops`` is a byte/bool array
    (truthy = write). Columns are either numpy arrays (the vectorised
    generator's output) or stdlib ``array`` objects (the record-compat
    constructor); both expose ``tolist`` and ``len``, which is all the
    consumers use.
    """

    __slots__ = (
        "gaps",
        "ops",
        "lines",
        "name",
    )

    def __init__(self, records: Iterable[TraceRecord] = (), name: str = "trace"):
        gaps = array("q")
        ops = array("b")
        lines = array("q")
        for record in records:
            gaps.append(record.gap)
            ops.append(1 if record.op is MemoryOp.WRITE else 0)
            lines.append(record.line_address)
        self.gaps = gaps
        self.ops = ops
        self.lines = lines
        self.name = name

    @classmethod
    def from_arrays(cls, gaps, ops, lines, name: str = "trace") -> "Trace":
        """Build a trace directly from parallel columns (no validation).

        Columns must be equal length and support ``tolist``/``len``;
        ``ops`` entries are truthy for writes. The arrays are adopted,
        not copied.
        """
        trace = cls.__new__(cls)
        trace.gaps = gaps
        trace.ops = ops
        trace.lines = lines
        trace.name = name
        return trace

    def __iter__(self) -> Iterator[TraceRecord]:
        write = MemoryOp.WRITE
        read = MemoryOp.READ
        for gap, op, line in zip(
            self.gaps.tolist(), self.ops.tolist(), self.lines.tolist()
        ):
            yield TraceRecord(gap, write if op else read, line)

    def iter_accesses(self) -> Iterator[Tuple[int, int, int]]:
        """Raw column iterator: ``(gap, is_write, line_address)`` tuples.

        The hot-path view: plain ints (``is_write`` truthy for writes),
        no per-record object construction. One ``tolist`` per column up
        front, then a C-speed zip.
        """
        return zip(self.gaps.tolist(), self.ops.tolist(), self.lines.tolist())

    def __len__(self) -> int:
        return len(self.gaps)

    @property
    def total_instructions(self) -> int:
        """Total instructions represented by the trace."""
        return int(sum(self.gaps.tolist())) + len(self.gaps)

    @property
    def accesses_per_kilo_instruction(self) -> float:
        """Memory accesses per 1000 instructions (the paper's APKI)."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self.gaps) / instructions

    @property
    def write_fraction(self) -> float:
        """Fraction of memory ops that are writes."""
        if not len(self.gaps):
            return 0.0
        return sum(1 for op in self.ops.tolist() if op) / len(self.gaps)

    def footprint_lines(self) -> int:
        """Distinct cachelines touched."""
        return len(set(self.lines.tolist()))
