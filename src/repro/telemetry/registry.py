"""The metrics registry, snapshots, and per-cell scoping.

One :class:`MetricsRegistry` is active per *execution context* at any
moment (see :mod:`repro.simcontext`; threads that never enter a context
share the process-default one, preserving the historical single-registry
behaviour). Simulator
components fetch metric handles by name at construction time (`counter`,
`gauge`, `histogram`, `timer`); handles with the same name resolve to the
same object, so any number of components can share a counter.

``run_workload`` / Monte-Carlo shard tasks push a *fresh* registry for the
duration of one cell (:func:`cell_scope`), so the snapshot taken at the end
contains exactly that cell's events — this is what makes snapshots safely
attachable to cached cell results and mergeable across worker processes.

Collection is on by default; set ``REPRO_METRICS=0`` (or call
:func:`configure`) to disable it, in which case every registry hands out
the shared null metrics and instrumented code paths become no-ops.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.simcontext import current_context
from repro.telemetry.metrics import (
    Counter,
    DEFAULT_EDGES,
    Gauge,
    Histogram,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
    Number,
    Timer,
    merge_payloads,
)

_FALSEY = ("0", "false", "no", "off")


def _env_enabled() -> bool:
    """Collection default: on, unless ``REPRO_METRICS`` is falsey."""
    return os.environ.get("REPRO_METRICS", "").lower() not in _FALSEY


def metrics_out_from_env() -> Optional[str]:
    """An output path carried in ``REPRO_METRICS``, if any.

    ``REPRO_METRICS`` is tri-state: falsey disables collection, ``1``/
    ``true``/empty enables it with no file, anything else is a path the
    CLI writes the metrics snapshot to (the ``--metrics-out`` default).
    """
    value = os.environ.get("REPRO_METRICS", "")
    if not value or value.lower() in _FALSEY + ("1", "true", "yes", "on"):
        return None
    return value


class MetricsSnapshot:
    """An immutable-by-convention bag of serialised metrics.

    The payload is a plain ``{name: metric-payload}`` dict — JSON-able,
    picklable, and exactly what worker processes return attached to their
    cell results. ``merge`` is commutative and associative, so aggregates
    are independent of completion order.
    """

    __slots__ = (
        "metrics",
    )

    def __init__(self, metrics: Optional[Dict[str, Dict[str, object]]] = None):
        self.metrics: Dict[str, Dict[str, object]] = metrics or {}

    def __bool__(self) -> bool:
        return bool(self.metrics)

    def __contains__(self, name: str) -> bool:
        return name in self.metrics

    def get(self, name: str) -> Optional[Dict[str, object]]:
        """One metric's payload, or None."""
        return self.metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar view of a metric (counter value / gauge mean / histo mean)."""
        payload = self.metrics.get(name)
        if payload is None:
            return default
        kind = payload.get("kind")
        if kind == "counter":
            return float(payload["value"])
        if kind == "timer":
            return float(payload["total_seconds"])
        count = payload.get("count") or 0
        if not count:
            return default
        return float(payload["sum"]) / count

    def merge(self, *others: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine snapshots into a new one (order-independent)."""
        merged: Dict[str, Dict[str, object]] = {
            name: dict(payload) for name, payload in self.metrics.items()
        }
        for other in others:
            for name, payload in other.metrics.items():
                if name in merged:
                    merged[name] = merge_payloads(merged[name], payload)
                else:
                    merged[name] = dict(payload)
        return MetricsSnapshot(merged)

    def deterministic(self) -> "MetricsSnapshot":
        """The snapshot minus host wall-clock timers.

        Counters/gauges/histograms record simulated quantities and are
        bit-identical across ``--jobs`` settings; timers are not.
        """
        return MetricsSnapshot(
            {
                name: payload
                for name, payload in self.metrics.items()
                if payload.get("kind") != "timer"
            }
        )

    def ratio(self, numerator: str, denominator_extra: str) -> Optional[float]:
        """``a / (a + b)`` over two counters, None when both absent/zero."""
        a = self.value(numerator)
        b = self.value(denominator_extra)
        total = a + b
        if total <= 0:
            return None
        return a / total

    def headline(self) -> Dict[str, float]:
        """The report-card scalars derived from well-known metric names.

        Only quantities whose inputs are present appear; consumers treat
        this as a sparse dict.
        """
        out: Dict[str, float] = {}
        for label, hit, miss in (
            ("row_buffer_hit_rate", "dram.row_hits", "dram.row_misses"),
            ("llc_hit_rate", "cache.llc.hits", "cache.llc.misses"),
            (
                "metadata_cache_hit_rate",
                "cache.metadata.hits",
                "cache.metadata.misses",
            ),
        ):
            rate = self.ratio(hit, miss)
            if rate is not None:
                out[label] = rate
        for label, name in (
            ("tree_walk_depth_mean", "secure.tree_walk_depth"),
            ("queue_depth_mean", "dram.queue_depth"),
            ("read_miss_latency_mean_cpu", "system.read_miss_latency_cpu"),
            ("reconstruction_attempts_mean", "core.reconstruction_attempts"),
        ):
            payload = self.metrics.get(name)
            if payload and payload.get("count"):
                out[label] = float(payload["sum"]) / payload["count"]
        for label, name in (
            ("metadata_accesses", "secure.metadata_accesses"),
            ("mac_computations", "secure.mac_computations"),
            ("mc_devices", "mc.devices"),
            ("mc_failures", "mc.failures"),
            ("scrub_corrections", "core.scrub_corrections"),
        ):
            if name in self.metrics:
                out[label] = self.value(name)
        return out

    def to_payload(self) -> Dict[str, Dict[str, object]]:
        """The JSON-ready dict form (shared with the run cache)."""
        return {name: dict(payload) for name, payload in self.metrics.items()}

    @classmethod
    def from_payload(cls, payload: Optional[Dict[str, object]]) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_payload` output (None -> empty)."""
        if not payload:
            return cls()
        return cls({str(name): dict(value) for name, value in payload.items()})


class MetricsRegistry:
    """A named collection of live metrics.

    ``enabled=False`` makes every factory return the shared null metric, so
    a disabled registry costs nothing at record sites and snapshots empty.
    """

    __slots__ = (
        "enabled",
        "_metrics",
    )

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}

    # -- factories ----------------------------------------------------------

    def counter(self, name: str, description: str = "") -> Counter:
        """Create (or fetch) the counter ``name``."""
        if not self.enabled:
            return NULL_COUNTER
        return self._get_or_create(name, Counter, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Create (or fetch) the gauge ``name``."""
        if not self.enabled:
            return NULL_GAUGE
        return self._get_or_create(name, Gauge, description)

    def histogram(
        self,
        name: str,
        edges: Sequence[Number] = DEFAULT_EDGES,
        description: str = "",
    ) -> Histogram:
        """Create (or fetch) the fixed-edge histogram ``name``."""
        if not self.enabled:
            return NULL_HISTOGRAM
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    "metric %s already registered as %s"
                    % (name, type(existing).__name__)
                )
            return existing
        metric = Histogram(name, edges, description)
        self._metrics[name] = metric
        return metric

    def timer(self, name: str, description: str = "") -> Timer:
        """Create (or fetch) the timer ``name``."""
        if not self.enabled:
            return NULL_TIMER
        return self._get_or_create(name, Timer, description)

    def _get_or_create(self, name: str, factory, description: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, factory):
                raise TypeError(
                    "metric %s already registered as %s"
                    % (name, type(existing).__name__)
                )
            return existing
        metric = factory(name, description)
        self._metrics[name] = metric
        return metric

    # -- introspection ------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(sorted(self._metrics.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def reset(self) -> None:
        """Reset every registered metric in place (handles stay valid)."""
        for metric in self._metrics.values():
            metric.reset()  # type: ignore[attr-defined]

    def snapshot(self) -> MetricsSnapshot:
        """Serialise the current state (empty for a disabled registry)."""
        return MetricsSnapshot(
            {
                name: metric.to_payload()  # type: ignore[attr-defined]
                for name, metric in self._metrics.items()
            }
        )


# ---------------------------------------------------------------------------
# Context-scoped registry stack
# ---------------------------------------------------------------------------
#
# The registry stack lives on the active SimContext: code that never enters
# a context resolves the shared process-default stack (the exact pre-context
# behaviour), while the service's worker scopes each get a private stack so
# concurrent simulations cannot interleave registries. The collection
# *enable* flag stays process-wide — it is configuration, not run state.

_COLLECTION_ENABLED: Optional[bool] = None


def collection_enabled() -> bool:
    """Whether telemetry collection is on in this process."""
    global _COLLECTION_ENABLED
    if _COLLECTION_ENABLED is None:  # lint-ok: C405 idempotent lazy env read
        _COLLECTION_ENABLED = _env_enabled()  # lint-ok: C402 process-wide flag
    return _COLLECTION_ENABLED


def configure(enabled: bool) -> None:
    """Turn collection on/off process-wide (CLI / tests).

    Only affects registries created afterwards (including every subsequent
    :func:`cell_scope`); the currently active registry is untouched.
    """
    global _COLLECTION_ENABLED
    _COLLECTION_ENABLED = bool(enabled)  # lint-ok: C402 config, not run state


def get_registry() -> MetricsRegistry:
    """The active registry (context default, or the innermost scope)."""
    stack = current_context().registry_stack
    if not stack:
        stack.append(MetricsRegistry(enabled=collection_enabled()))
    return stack[-1]


@contextlib.contextmanager
def scoped_registry(
    enabled: Optional[bool] = None,
) -> Iterator[MetricsRegistry]:
    """Push a fresh registry for the duration of the block.

    Components constructed inside the block register into it; the caller
    snapshots it before (or after) the block exits. Scopes nest, and the
    push/pop lands on whichever :class:`~repro.simcontext.SimContext` is
    active at entry — concurrent workers each scope their own stack.
    """
    if enabled is None:
        enabled = collection_enabled()
    stack = current_context().registry_stack
    if not stack:
        stack.append(MetricsRegistry(enabled=collection_enabled()))
    registry = MetricsRegistry(enabled=enabled)
    from repro.analysis.sanitizer import get_sanitizer

    sanitizer = get_sanitizer()
    if sanitizer is not None:
        sanitizer.check_context_owner(stack, "registry stack")
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()
