"""Metric primitives: counters, gauges, fixed-edge histograms, timers.

Design constraints (see DESIGN.md, "Telemetry"):

* zero dependencies — plain Python, importable from worker processes;
* the disabled path must be a no-op cheap enough for simulator inner loops
  (the null singletons at the bottom of this module are what a disabled
  registry hands out — one attribute call, no branches, no allocation);
* every metric must serialise to a JSON-able payload and *merge*
  commutatively, so per-cell snapshots taken in worker processes combine
  into the same aggregate no matter the completion order (the guarantee
  ``ResultTable.merge()`` already gives simulation results).

Determinism convention: counters, gauges and histograms record *simulated*
quantities (cycles, depths, occupancies) and are bit-identical across
``--jobs`` settings; timers record host wall-clock and are therefore
excluded from determinism comparisons (``MetricsSnapshot.deterministic``).
"""

from __future__ import annotations

import contextlib
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing event counter (ints or floats)."""

    kind = "counter"

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def to_payload(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return "Counter(%s=%s)" % (self.name, self.value)


class Gauge:
    """A sampled value tracked as count/sum/min/max observations.

    There is deliberately no "last value" in the payload: last-writer-wins
    is completion-order dependent, which would break order-independent
    snapshot merging. Consumers read ``mean``/``minimum``/``maximum``.
    """

    kind = "gauge"

    __slots__ = ("name", "description", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.reset()

    def set(self, value: Number) -> None:
        """Record one observation of the gauge's value."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean observation, 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Drop all observations."""
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None

    def to_payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return "Gauge(%s mean=%.3f n=%d)" % (self.name, self.mean, self.count)


#: Default bucket edges for histograms created without explicit edges:
#: powers of two cover both small depths and long latencies.
DEFAULT_EDGES: Tuple[Number, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Histogram:
    """Fixed-bucket-edge histogram.

    ``edges`` is a strictly increasing sequence; bucket ``i`` (for
    ``i < len(edges)``) counts values ``v`` with ``edges[i-1] < v <=
    edges[i]`` — a value exactly on an edge lands in that edge's bucket —
    and the final overflow bucket counts ``v > edges[-1]``. Fixed edges are
    what make two independently recorded histograms mergeable by
    element-wise bucket addition.
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "description",
        "edges",
        "buckets",
        "count",
        "total",
        "minimum",
        "maximum",
    )

    def __init__(
        self,
        name: str,
        edges: Sequence[Number] = DEFAULT_EDGES,
        description: str = "",
    ):
        edges = tuple(edges)
        if not edges:
            raise ValueError("histogram %s needs at least one edge" % name)
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                "histogram %s edges must be strictly increasing" % name
            )
        self.name = name
        self.description = description
        self.edges = edges
        self.buckets: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None

    def record(self, value: Number, weight: int = 1) -> None:
        """Add ``weight`` observations of ``value``."""
        self.buckets[bisect_left(self.edges, value)] += weight
        self.count += weight
        self.total += value * weight
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of observations, 0.0 when empty."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Clear all buckets and summary fields."""
        self.buckets = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def to_payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "edges": list(self.edges),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return "Histogram(%s mean=%.2f n=%d)" % (self.name, self.mean, self.count)


class Timer:
    """Host wall-clock accumulator (count + total seconds).

    Timers exist for profiling the harness itself (per-cell wall times,
    pool spans). They are intentionally *not* part of the deterministic
    snapshot view — wall clocks differ across runs and worker counts.
    """

    kind = "timer"

    __slots__ = ("name", "description", "count", "total_seconds")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Add one measured duration."""
        self.count += 1
        self.total_seconds += seconds

    @contextlib.contextmanager
    def time(self):
        """Context manager measuring the enclosed block."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - started)

    def reset(self) -> None:
        """Zero the accumulator."""
        self.count = 0
        self.total_seconds = 0.0

    def to_payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total_seconds": self.total_seconds,
        }

    def __repr__(self) -> str:
        return "Timer(%s total=%.3fs n=%d)" % (
            self.name,
            self.total_seconds,
            self.count,
        )


# ---------------------------------------------------------------------------
# Payload-level merge (what snapshots use — payloads, not live objects, are
# what worker processes ship back, so merging operates on payloads).
# ---------------------------------------------------------------------------


def _merge_extremum(left, right, pick):
    if left is None:
        return right
    if right is None:
        return left
    return pick(left, right)


def merge_payloads(
    left: Dict[str, object], right: Dict[str, object]
) -> Dict[str, object]:
    """Commutatively merge two single-metric payloads of the same kind."""
    kind = left.get("kind")
    if kind != right.get("kind"):
        raise ValueError(
            "cannot merge %r payload with %r payload" % (kind, right.get("kind"))
        )
    if kind == Counter.kind:
        return {"kind": kind, "value": left["value"] + right["value"]}
    if kind == Timer.kind:
        return {
            "kind": kind,
            "count": left["count"] + right["count"],
            "total_seconds": left["total_seconds"] + right["total_seconds"],
        }
    if kind == Gauge.kind:
        return {
            "kind": kind,
            "count": left["count"] + right["count"],
            "sum": left["sum"] + right["sum"],
            "min": _merge_extremum(left["min"], right["min"], min),
            "max": _merge_extremum(left["max"], right["max"], max),
        }
    if kind == Histogram.kind:
        if list(left["edges"]) != list(right["edges"]):
            raise ValueError(
                "cannot merge histograms with different edges: %r vs %r"
                % (left["edges"], right["edges"])
            )
        return {
            "kind": kind,
            "edges": list(left["edges"]),
            "buckets": [
                a + b for a, b in zip(left["buckets"], right["buckets"])
            ],
            "count": left["count"] + right["count"],
            "sum": left["sum"] + right["sum"],
            "min": _merge_extremum(left["min"], right["min"], min),
            "max": _merge_extremum(left["max"], right["max"], max),
        }
    raise ValueError("unknown metric kind %r" % (kind,))


# ---------------------------------------------------------------------------
# Null objects: what a disabled registry hands out. One shared instance per
# type; every method is a no-op so instrumented hot loops pay one attribute
# call and nothing else.
# ---------------------------------------------------------------------------


class _NullCounter:
    __slots__ = ()  # all state is class-level; instances are shared singletons
    kind = Counter.kind

    def inc(self, amount: Number = 1) -> None:
        pass

    def reset(self) -> None:
        pass

    value = 0


class _NullGauge:
    __slots__ = ()  # all state is class-level; instances are shared singletons
    kind = Gauge.kind

    def set(self, value: Number) -> None:
        pass

    def reset(self) -> None:
        pass

    count = 0
    mean = 0.0


class _NullHistogram:
    __slots__ = ()  # all state is class-level; instances are shared singletons
    kind = Histogram.kind

    def record(self, value: Number, weight: int = 1) -> None:
        pass

    def reset(self) -> None:
        pass

    count = 0
    mean = 0.0


class _NullTimer:
    __slots__ = ()  # all state is class-level; instances are shared singletons
    kind = Timer.kind

    def record(self, seconds: float) -> None:
        pass

    @contextlib.contextmanager
    def time(self):
        yield self

    def reset(self) -> None:
        pass

    count = 0
    total_seconds = 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_TIMER = _NullTimer()
