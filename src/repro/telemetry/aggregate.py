"""Cross-worker aggregation of telemetry snapshots, and the metrics dump.

Each experiment cell (a ``run_workload`` grid cell or a Monte-Carlo shard
batch) produces one :class:`MetricsSnapshot` in whatever process ran it —
or, on a run-cache hit, out of the cached payload. The harness feeds every
snapshot into the active context's aggregate (:func:`current_aggregate`;
:data:`TELEMETRY_AGGREGATE` for code outside any scope), grouped by
design/scheme, always iterating cells in *grid order*: combined with the
commutative snapshot merge this makes the aggregate a pure function of the
set of cells, independent of worker count or completion order (the same
guarantee ``ResultTable.merge()`` gives the simulation results).

``write_metrics`` is the one serialisation point shared by the CLI
``--metrics-out``, ``tools/run_experiments.py`` and
``tools/bench_snapshot.py``.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Dict, Iterator, Optional

from repro.simcontext import current_context, default_context
from repro.telemetry.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    scoped_registry,
)
from repro.telemetry.trace import get_tracer


class TelemetryAggregate:
    """Merged snapshots, grouped by design/scheme plus one global merge."""

    __slots__ = (
        "_groups",
        "_overall",
    )

    def __init__(self) -> None:
        self._groups: Dict[str, MetricsSnapshot] = {}
        self._overall = MetricsSnapshot()

    def reset(self) -> None:
        """Drop everything (the CLI resets between runs)."""
        self._groups.clear()
        self._overall = MetricsSnapshot()

    def add(self, group: str, snapshot: object) -> None:
        """Merge one cell's snapshot into ``group`` and the global merge.

        ``snapshot`` may be a :class:`MetricsSnapshot` or its payload dict
        (what cached cells and worker processes carry). Empty snapshots —
        cells run with telemetry disabled — are ignored.
        """
        if not isinstance(snapshot, MetricsSnapshot):
            snapshot = MetricsSnapshot.from_payload(snapshot)  # type: ignore[arg-type]
        if not snapshot:
            return
        existing = self._groups.get(group)
        self._groups[group] = (
            snapshot if existing is None else existing.merge(snapshot)
        )
        self._overall = self._overall.merge(snapshot)

    # -- views --------------------------------------------------------------

    def groups(self) -> Dict[str, MetricsSnapshot]:
        """Per-group merged snapshots (sorted by group name)."""
        return {name: self._groups[name] for name in sorted(self._groups)}

    def overall(self) -> MetricsSnapshot:
        """Everything merged together."""
        return self._overall

    def __bool__(self) -> bool:
        return bool(self._groups)

    def headlines(self) -> Dict[str, Dict[str, float]]:
        """Per-group headline scalars (the bench-snapshot embed)."""
        return {
            name: snapshot.headline()
            for name, snapshot in self.groups().items()
        }

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready structure for ``--metrics-out`` files."""
        return {
            "groups": {
                name: {
                    "headline": snapshot.headline(),
                    "metrics": snapshot.to_payload(),
                }
                for name, snapshot in self.groups().items()
            },
            "global": {
                "headline": self._overall.headline(),
                "metrics": self._overall.to_payload(),
            },
        }


#: The process-default aggregate: what :func:`current_aggregate` resolves
#: for code running outside any :mod:`repro.simcontext` scope (the CLI, the
#: report layer and the tests all reference this object directly).
TELEMETRY_AGGREGATE = TelemetryAggregate()  # lint-ok: C401 default-context identity; worker scopes get their own


def current_aggregate() -> TelemetryAggregate:
    """The active context's aggregate (the default context binds
    :data:`TELEMETRY_AGGREGATE` itself, keeping existing direct references
    to the module global coherent)."""
    context = current_context()
    aggregate = context.aggregate
    if aggregate is None:
        aggregate = (
            TELEMETRY_AGGREGATE
            if context is default_context()
            else TelemetryAggregate()
        )
        context.aggregate = aggregate
    return aggregate  # type: ignore[no-any-return]


@contextlib.contextmanager
def cell_scope(
    cell: str = "", shard: Optional[int] = None
) -> Iterator[MetricsRegistry]:
    """Fresh metrics registry + trace context for one experiment cell.

    Everything instrumented that is *constructed* inside the block records
    into the yielded registry; the caller snapshots it to get exactly this
    cell's metrics. Trace events emitted inside carry the cell/shard ids.
    """
    tracer = get_tracer()
    with scoped_registry() as registry:
        with tracer.context(cell=cell, shard=shard):
            yield registry


def write_metrics(
    path: str,
    run: Optional[Dict[str, object]] = None,
    aggregate: Optional[TelemetryAggregate] = None,
) -> str:
    """Write the aggregate (plus run provenance) as JSON; returns the path."""
    aggregate = aggregate if aggregate is not None else current_aggregate()
    payload = {"run": run or {}, "telemetry": aggregate.as_dict()}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
    return path
