"""Cross-layer observability: metrics registry, event tracer, aggregation.

The three pieces (see DESIGN.md, "Telemetry"):

* :class:`MetricsRegistry` — counters, gauges, fixed-edge histograms and
  timers, fetched by name at component construction; a disabled registry
  hands out shared null metrics so instrumented inner loops cost one
  no-op attribute call. ``REPRO_METRICS=0`` disables collection.
* :class:`EventTracer` — bounded ring buffer of structured events with
  run/cell/shard ids, exported as JSONL via ``--trace-out`` /
  ``REPRO_TRACE``.
* :data:`TELEMETRY_AGGREGATE` — order-independent merge of per-cell
  snapshots (including snapshots revived from the run cache), grouped by
  design/scheme, dumped by ``--metrics-out``.

Instrumented layers: ``dram.controller``/``scheduler``/``bank`` (row-buffer
hits, queue depth, latencies, activations), ``cache.setassoc``/``hierarchy``
(per-level hit/miss, occupancy), ``secure.timing_engine``/``mac`` (tree-walk
depth, metadata accesses, MAC computations), ``core.reconstruction``/
``scrubber`` (candidate-chip attempts, scrub passes),
``reliability.montecarlo`` (per-shard progress) and ``sim.system``
(read-miss service latency).
"""

from repro.telemetry.aggregate import (
    TELEMETRY_AGGREGATE,
    TelemetryAggregate,
    cell_scope,
    current_aggregate,
    write_metrics,
)
from repro.telemetry.metrics import (
    Counter,
    DEFAULT_EDGES,
    Gauge,
    Histogram,
    Timer,
    merge_payloads,
)
from repro.telemetry.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    collection_enabled,
    configure,
    get_registry,
    metrics_out_from_env,
    scoped_registry,
)
from repro.telemetry.trace import (
    EventTracer,
    TraceEvent,
    configure_tracer,
    get_tracer,
    read_jsonl,
    trace_out_from_env,
)

__all__ = [
    "Counter",
    "DEFAULT_EDGES",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TELEMETRY_AGGREGATE",
    "TelemetryAggregate",
    "Timer",
    "TraceEvent",
    "cell_scope",
    "collection_enabled",
    "configure",
    "configure_tracer",
    "current_aggregate",
    "get_registry",
    "get_tracer",
    "merge_payloads",
    "metrics_out_from_env",
    "read_jsonl",
    "scoped_registry",
    "trace_out_from_env",
    "write_metrics",
]
