"""Structured event tracing: bounded ring buffer + JSONL export.

The tracer records coarse-grained, schema-light events — cell start/finish,
cache hits, reconstruction corrections, scrub passes, Monte-Carlo shard
completions — each stamped with the ids needed to line events up across a
run: a ``run`` id, the current ``cell`` (design/workload or scheme/shard
label) and ``shard`` where applicable.

The buffer is a ``deque(maxlen=capacity)``: emission never blocks and never
grows memory; old events fall off the front and are counted in ``dropped``.
Export is JSON Lines (one event per line), the format ``--trace-out`` /
``REPRO_TRACE`` write and :func:`read_jsonl` round-trips.

Tracing is *off* by default (``emit`` is a single boolean check); it turns
on when a trace sink is requested. Events are per-process: with
``--jobs > 1`` worker-side simulation events stay in the workers, so run
with ``--jobs 1`` when a complete simulation trace matters.
"""

from __future__ import annotations

import contextlib
import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.simcontext import current_context

_FALSEY = ("0", "false", "no", "off")


def trace_out_from_env() -> Optional[str]:
    """The trace output path carried in ``REPRO_TRACE``, if any."""
    value = os.environ.get("REPRO_TRACE", "")
    if not value or value.lower() in _FALSEY:
        return None
    return value


@dataclass
class TraceEvent:
    """One structured event."""

    seq: int
    kind: str
    run: str = ""
    cell: str = ""
    shard: Optional[int] = None
    data: Dict[str, object] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready dict (stable key order for diffable traces)."""
        payload: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "run": self.run,
            "cell": self.cell,
        }
        if self.shard is not None:
            payload["shard"] = self.shard
        payload["data"] = self.data
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_payload` output."""
        return cls(
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            run=str(payload.get("run", "")),
            cell=str(payload.get("cell", "")),
            shard=payload.get("shard"),  # type: ignore[arg-type]
            data=dict(payload.get("data", {})),  # type: ignore[arg-type]
        )


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    __slots__ = (
        "capacity",
        "enabled",
        "run_id",
        "dropped",
        "_seq",
        "_events",
        "_cell",
        "_shard",
    )

    def __init__(
        self, capacity: int = 4096, enabled: bool = False, run_id: str = ""
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.run_id = run_id
        self.dropped = 0
        self._seq = 0
        self._events: deque = deque(maxlen=capacity)
        self._cell = ""
        self._shard: Optional[int] = None

    # -- recording ----------------------------------------------------------

    def emit(self, kind: str, **data: object) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(
                seq=self._seq,
                kind=kind,
                run=self.run_id,
                cell=self._cell,
                shard=self._shard,
                data=data,
            )
        )

    @contextlib.contextmanager
    def context(
        self, cell: Optional[str] = None, shard: Optional[int] = None
    ) -> Iterator["EventTracer"]:
        """Stamp events emitted inside the block with cell/shard ids."""
        saved = (self._cell, self._shard)
        if cell is not None:
            self._cell = cell
        if shard is not None:
            self._shard = shard
        try:
            yield self
        finally:
            self._cell, self._shard = saved

    def reset(self) -> None:
        """Drop all buffered events and counters."""
        self._events.clear()
        self.dropped = 0
        self._seq = 0

    # -- reading ------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- JSONL export -------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write buffered events as JSON Lines; returns how many."""
        events = self.events()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            for event in events:
                handle.write(
                    json.dumps(event.to_payload(), sort_keys=False) + "\n"
                )
        return len(events)


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL trace back into events (the round-trip of write_jsonl)."""
    events: List[TraceEvent] = []
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_payload(json.loads(line)))
    return events


# ---------------------------------------------------------------------------
# Context-scoped tracer
# ---------------------------------------------------------------------------
#
# The tracer lives on the active SimContext (repro.simcontext): code outside
# any context gets the shared process-default tracer (the historical
# behaviour), while each service worker scope traces into its own ring.


def get_tracer() -> EventTracer:
    """The active context's tracer (enabled iff ``REPRO_TRACE`` is set)."""
    context = current_context()
    tracer = context.tracer
    if tracer is None:
        tracer = EventTracer(enabled=trace_out_from_env() is not None)
        context.tracer = tracer
    return tracer  # type: ignore[no-any-return]


def configure_tracer(
    enabled: Optional[bool] = None,
    capacity: Optional[int] = None,
    run_id: Optional[str] = None,
) -> EventTracer:
    """Reconfigure the active context's tracer (CLI entry points, tests)."""
    context = current_context()
    tracer = get_tracer()
    if capacity is not None and capacity != tracer.capacity:
        tracer = EventTracer(
            capacity=capacity, enabled=tracer.enabled, run_id=tracer.run_id
        )
        context.tracer = tracer
    if enabled is not None:
        tracer.enabled = enabled
    if run_id is not None:
        tracer.run_id = run_id
    return tracer
