"""The cache hierarchy of Table III: shared LLC + dedicated metadata cache.

The LLC (8MB, 8-way) holds program data and — in designs that allow it
(SGX_O, Synergy: counters; IVEC: MACs and tree nodes) — security metadata,
which then *competes with data for capacity*. The dedicated metadata cache
(128KB, 8-way) holds metadata only. Both are tag-only timing models.

The hierarchy tracks data-vs-metadata occupancy pressure so experiments can
observe the contention mechanism directly (the pr-web/cc-web/bc-web
anomaly in Fig. 8, where SGX_O loses to SGX because counters evict data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.setassoc import (
    ABSENT as _ABSENT_DIRTY,
    HIT,
    MISS_CLEAN,
    CacheAccessResult,
    SetAssociativeCache,
)
from repro.telemetry import get_registry
from repro.util.units import CACHELINE_BYTES, KIB, MIB


@dataclass(frozen=True)
class CacheConfig:
    """Sizes/associativities of the two caches (Table III defaults)."""

    llc_bytes: int = 8 * MIB
    llc_associativity: int = 8
    metadata_bytes: int = 128 * KIB
    metadata_associativity: int = 8
    llc_hit_latency_cpu_cycles: int = 30
    metadata_hit_latency_cpu_cycles: int = 10


class CacheHierarchy:
    """Shared LLC plus dedicated metadata cache."""

    __slots__ = (
        "config",
        "llc",
        "metadata_cache",
        "metadata_llc_fills",
        "data_llc_fills",
        "_t_metadata_llc_fills",
        "_t_data_llc_fills",
        "_synced_fills",
    )

    def __init__(self, config: CacheConfig = CacheConfig()):
        self.config = config
        self.llc = SetAssociativeCache(
            config.llc_bytes // CACHELINE_BYTES, config.llc_associativity, "llc"
        )
        self.metadata_cache = SetAssociativeCache(
            config.metadata_bytes // CACHELINE_BYTES,
            config.metadata_associativity,
            "metadata",
        )
        self.metadata_llc_fills = 0
        self.data_llc_fills = 0
        registry = get_registry()
        self._t_metadata_llc_fills = registry.counter("cache.metadata_llc_fills")
        self._t_data_llc_fills = registry.counter("cache.data_llc_fills")
        # Deferred-telemetry watermarks (see SetAssociativeCache.sync_telemetry).
        self._synced_fills = [0, 0]

    # -- program data ----------------------------------------------------

    def access_data(self, line_address: int, is_write: bool) -> CacheAccessResult:
        """LLC access for program data (allocate on miss)."""
        result = self.llc.access(line_address, is_write)
        if not result.hit:
            self.data_llc_fills += 1
        return result

    # -- metadata ----------------------------------------------------------

    def access_metadata(
        self, line_address: int, is_write: bool, use_llc: bool
    ) -> CacheAccessResult:
        """Metadata access: dedicated cache first, optionally backed by LLC.

        A dedicated-cache hit never touches the LLC. On a dedicated miss,
        designs that cache this metadata type in the LLC look there next
        (counting an LLC fill on miss — the contention mechanism); other
        designs go straight to memory. The line is always (re)filled into
        the dedicated cache; victims spill to the LLC when ``use_llc``.
        """
        dedicated = self.metadata_cache.access(line_address, is_write)
        if dedicated.hit:
            return HIT
        if not use_llc:
            # Victim of the dedicated fill writes back to memory if dirty.
            if dedicated.writeback_address is None:
                return MISS_CLEAN
            return CacheAccessResult(
                hit=False, writeback_address=dedicated.writeback_address
            )
        # Dedicated miss: try the LLC.
        llc_result = self.llc.access(line_address, is_write)
        if not llc_result.hit:
            self.metadata_llc_fills += 1
        # Spill the dedicated victim into the LLC instead of memory.
        spill_writeback: Optional[int] = None
        if dedicated.writeback_address is not None:
            spill_writeback = self.llc.fill(dedicated.writeback_address, dirty=True)
        if llc_result.hit:
            if spill_writeback is None:
                return HIT
            return CacheAccessResult(hit=True, writeback_address=spill_writeback)
        # Miss in both: memory access needed; LLC eviction may add another.
        writeback = llc_result.writeback_address or spill_writeback
        if writeback is None:
            return MISS_CLEAN
        return CacheAccessResult(hit=False, writeback_address=writeback)

    def access_metadata_many(
        self, line_addresses, is_write: bool, use_llc: bool
    ) -> "list":
        """Batched :meth:`access_metadata` over a column of line addresses.

        The dedicated-hit majority is handled with the dict probe inlined
        (pop + MRU reinsert + hit count — bit-identical to the scalar
        path); misses fall through to the scalar method, whose dedicated
        probe re-runs from the unchanged state the failed pop left behind.
        Results are positionally parallel to ``line_addresses``.
        """
        cache = self.metadata_cache
        sets = cache._sets
        mask = cache._set_mask
        shift = cache._set_shift
        absent = _ABSENT_DIRTY
        scalar = self.access_metadata
        results = []
        append = results.append
        for line in line_addresses:
            ways = sets[line & mask]
            tag = line >> shift
            prev = ways.pop(tag, absent)
            if prev is not absent:
                cache.hits += 1
                ways[tag] = True if is_write else prev
                append(HIT)
            else:
                append(scalar(line, is_write, use_llc))
        return results

    # -- introspection ----------------------------------------------------

    def reset_fill_stats(self) -> None:
        """Zero the LLC-fill counters (the post-warmup reset)."""
        self.metadata_llc_fills = 0
        self.data_llc_fills = 0
        self._synced_fills = [0, 0]
        self._t_metadata_llc_fills.reset()
        self._t_data_llc_fills.reset()

    def record_telemetry(self) -> None:
        """End-of-run occupancy gauges for both caches.

        The metadata-cache occupancy here is the direct observable behind
        the paper's SGX-vs-Synergy metadata-pressure argument (Figs. 9/10).
        Hit/miss/fill telemetry is recorded deferred (plain ints on the hot
        path); this is where it reconciles into the registry counters.
        """
        self.llc.sync_telemetry()
        self.metadata_cache.sync_telemetry()
        synced = self._synced_fills
        self._t_data_llc_fills.inc(self.data_llc_fills - synced[0])
        self._t_metadata_llc_fills.inc(self.metadata_llc_fills - synced[1])
        synced[0] = self.data_llc_fills
        synced[1] = self.metadata_llc_fills
        registry = get_registry()
        registry.gauge("cache.llc.occupancy").set(self.llc.occupancy)
        registry.gauge("cache.metadata.occupancy").set(
            self.metadata_cache.occupancy
        )

    def llc_data_hit_rate(self) -> float:
        """Overall LLC hit rate (data + any metadata routed through it)."""
        return self.llc.hit_rate

    def metadata_hit_rate(self) -> float:
        """Dedicated metadata-cache hit rate."""
        return self.metadata_cache.hit_rate
