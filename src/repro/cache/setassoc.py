"""A set-associative write-back cache with true-LRU replacement.

Tag-only model (the timing plane never moves payload bytes): each set is a
small list of (tag, dirty) pairs ordered most- to least-recently used.
Python lists beat OrderedDicts at the 8-way associativities used here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.telemetry import get_registry
from repro.util.units import is_power_of_two, log2_int


@dataclass
class CacheAccessResult:
    """Outcome of a cache access."""

    hit: bool
    writeback_address: Optional[int] = None  #: dirty victim evicted, if any


class SetAssociativeCache:
    """LRU set-associative cache addressed by cacheline index."""

    def __init__(self, num_lines: int, associativity: int, name: str = "cache"):
        if num_lines <= 0 or associativity <= 0:
            raise ValueError("sizes must be positive")
        if num_lines % associativity:
            raise ValueError("num_lines must be a multiple of associativity")
        num_sets = num_lines // associativity
        if not is_power_of_two(num_sets):
            raise ValueError("number of sets must be a power of two")
        self.name = name
        self.num_lines = num_lines
        self.associativity = associativity
        self.num_sets = num_sets
        self._set_shift = 0
        self._set_mask = num_sets - 1
        # sets[i] is MRU-first list of [tag, dirty].
        self._sets: List[List[List]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        registry = get_registry()
        prefix = "cache.%s" % name
        self._t_hits = registry.counter(prefix + ".hits")
        self._t_misses = registry.counter(prefix + ".misses")
        self._t_dirty_evictions = registry.counter(prefix + ".dirty_evictions")

    def _locate(self, line_address: int) -> Tuple[int, int]:
        set_index = line_address & self._set_mask
        tag = line_address >> log2_int(self.num_sets) if self.num_sets > 1 else line_address
        return set_index, tag

    # ------------------------------------------------------------------

    def access(self, line_address: int, is_write: bool = False) -> CacheAccessResult:
        """Look up and allocate-on-miss; returns hit status and any writeback."""
        set_index, tag = self._locate(line_address)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[0] == tag:
                self.hits += 1
                self._t_hits.inc()
                if position:
                    ways.insert(0, ways.pop(position))
                if is_write:
                    entry[1] = True
                return CacheAccessResult(hit=True)
        self.misses += 1
        self._t_misses.inc()
        writeback = self._insert(set_index, tag, is_write)
        return CacheAccessResult(hit=False, writeback_address=writeback)

    def probe(self, line_address: int) -> bool:
        """Presence check without allocation or LRU update."""
        set_index, tag = self._locate(line_address)
        return any(entry[0] == tag for entry in self._sets[set_index])

    def fill(self, line_address: int, dirty: bool = False) -> Optional[int]:
        """Insert a line without counting an access; returns any writeback."""
        set_index, tag = self._locate(line_address)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[0] == tag:
                if position:
                    ways.insert(0, ways.pop(position))
                if dirty:
                    entry[1] = True
                return None
        return self._insert(set_index, tag, dirty)

    def invalidate(self, line_address: int) -> bool:
        """Remove a line if present (no writeback even if dirty)."""
        set_index, tag = self._locate(line_address)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[0] == tag:
                ways.pop(position)
                return True
        return False

    def _insert(self, set_index: int, tag: int, dirty: bool) -> Optional[int]:
        ways = self._sets[set_index]
        writeback = None
        if len(ways) >= self.associativity:
            victim_tag, victim_dirty = ways.pop()
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
                self._t_dirty_evictions.inc()
                writeback = self._reconstruct(set_index, victim_tag)
        ways.insert(0, [tag, dirty])
        return writeback

    def _reconstruct(self, set_index: int, tag: int) -> int:
        if self.num_sets == 1:
            return tag
        return (tag << log2_int(self.num_sets)) | set_index

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits over total accesses."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def reset_stats(self) -> None:
        """Zero hit/miss/eviction counters (contents untouched).

        Telemetry counters reset with them so the post-warmup metrics
        describe the measured phase only, matching ``hit_rate``.
        """
        self.hits = self.misses = self.evictions = self.dirty_evictions = 0
        self._t_hits.reset()
        self._t_misses.reset()
        self._t_dirty_evictions.reset()
