"""A set-associative write-back cache with true-LRU replacement.

Tag-only model (the timing plane never moves payload bytes): each set is
an insertion-ordered dict mapping tag -> dirty, least- to most-recently
used. Python dicts preserve insertion order, so "touch" is pop+reinsert
(moves the tag to the MRU end) and the LRU victim is the first key —
every set operation is O(1) instead of the O(associativity) Python-level
scan a list of ways needs (misses scan all ways; at 30-40% LLC miss
rates that scan dominated the profile).

Hot-path notes: the set shift is computed once in ``__init__`` (not per
access), and hit/clean-miss results are shared singletons — callers only
ever read ``CacheAccessResult``, so allocation is reserved for the
dirty-eviction case that actually carries a writeback address.
Telemetry is deferred: the hot path bumps plain ints and
``sync_telemetry`` reconciles the registry counters before snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry import get_registry
from repro.util.units import is_power_of_two, log2_int


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of a cache access."""

    hit: bool
    writeback_address: Optional[int] = None  #: dirty victim evicted, if any


#: Shared results for the two allocation-free outcomes. ``CacheAccessResult``
#: is frozen, so handing every caller the same instance is safe.
HIT = CacheAccessResult(hit=True)
MISS_CLEAN = CacheAccessResult(hit=False)

#: Sentinel distinguishing "tag absent" from a clean (False) dirty bit.
#: Public under ``ABSENT`` for fused hot paths that inline the dict probe
#: (the secure engine's columnar expansion, the system's warmup replay).
_ABSENT = object()
ABSENT = _ABSENT


class SetAssociativeCache:
    """LRU set-associative cache addressed by cacheline index."""

    __slots__ = (
        "name",
        "num_lines",
        "associativity",
        "num_sets",
        "_set_shift",
        "_set_mask",
        "_sets",
        "hits",
        "misses",
        "evictions",
        "dirty_evictions",
        "_t_hits",
        "_t_misses",
        "_t_dirty_evictions",
        "_synced",
    )

    def __init__(self, num_lines: int, associativity: int, name: str = "cache"):
        if num_lines <= 0 or associativity <= 0:
            raise ValueError("sizes must be positive")
        if num_lines % associativity:
            raise ValueError("num_lines must be a multiple of associativity")
        num_sets = num_lines // associativity
        if not is_power_of_two(num_sets):
            raise ValueError("number of sets must be a power of two")
        self.name = name
        self.num_lines = num_lines
        self.associativity = associativity
        self.num_sets = num_sets
        self._set_shift = log2_int(num_sets)
        self._set_mask = num_sets - 1
        # sets[i] maps tag -> dirty in LRU-to-MRU insertion order.
        self._sets: List[Dict[int, bool]] = [{} for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        registry = get_registry()
        prefix = "cache.%s" % name
        self._t_hits = registry.counter(prefix + ".hits")
        self._t_misses = registry.counter(prefix + ".misses")
        self._t_dirty_evictions = registry.counter(prefix + ".dirty_evictions")
        # Deferred-telemetry watermarks: what this instance has already
        # published (registry counters may be shared across instances).
        self._synced = [0, 0, 0]

    def _locate(self, line_address: int) -> Tuple[int, int]:
        return line_address & self._set_mask, line_address >> self._set_shift

    # ------------------------------------------------------------------

    def access(self, line_address: int, is_write: bool = False) -> CacheAccessResult:
        """Look up and allocate-on-miss; returns hit status and any writeback."""
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_shift
        ways = self._sets[set_index]
        dirty = ways.pop(tag, _ABSENT)
        if dirty is not _ABSENT:
            # Hit: reinsert at the MRU end (pop+insert is the LRU touch).
            self.hits += 1
            ways[tag] = True if is_write else dirty
            return HIT
        self.misses += 1
        if len(ways) >= self.associativity:
            victim_tag = next(iter(ways))
            victim_dirty = ways.pop(victim_tag)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
                ways[tag] = is_write
                return CacheAccessResult(
                    hit=False,
                    writeback_address=(victim_tag << self._set_shift) | set_index,
                )
        ways[tag] = is_write
        return MISS_CLEAN

    def probe(self, line_address: int) -> bool:
        """Presence check without allocation or LRU update."""
        tag = line_address >> self._set_shift
        return tag in self._sets[line_address & self._set_mask]

    def fill(self, line_address: int, dirty: bool = False) -> Optional[int]:
        """Insert a line without counting an access; returns any writeback."""
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_shift
        ways = self._sets[set_index]
        prev = ways.pop(tag, _ABSENT)
        if prev is not _ABSENT:
            ways[tag] = prev or dirty
            return None
        return self._insert(set_index, tag, dirty)

    def invalidate(self, line_address: int) -> bool:
        """Remove a line if present (no writeback even if dirty)."""
        tag = line_address >> self._set_shift
        ways = self._sets[line_address & self._set_mask]
        return ways.pop(tag, _ABSENT) is not _ABSENT

    def _insert(self, set_index: int, tag: int, dirty: bool) -> Optional[int]:
        ways = self._sets[set_index]
        writeback = None
        if len(ways) >= self.associativity:
            victim_tag = next(iter(ways))
            victim_dirty = ways.pop(victim_tag)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
                writeback = (victim_tag << self._set_shift) | set_index
        ways[tag] = dirty
        return writeback

    def _reconstruct(self, set_index: int, tag: int) -> int:
        return (tag << self._set_shift) | set_index

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits over total accesses."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        """Lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def sync_telemetry(self) -> None:
        """Publish the plain counters into the registry counters.

        Hit/miss/eviction telemetry is recorded *deferred* — the hot path
        bumps plain ints and this method publishes the delta since the
        last sync (idempotent; safe when instances share a registry
        counter). Callers that snapshot a registry must sync first;
        ``CacheHierarchy.record_telemetry`` does.
        """
        synced = self._synced
        self._t_hits.inc(self.hits - synced[0])
        self._t_misses.inc(self.misses - synced[1])
        self._t_dirty_evictions.inc(self.dirty_evictions - synced[2])
        synced[0] = self.hits
        synced[1] = self.misses
        synced[2] = self.dirty_evictions

    def reset_stats(self) -> None:
        """Zero hit/miss/eviction counters (contents untouched).

        Telemetry counters reset with them so the post-warmup metrics
        describe the measured phase only, matching ``hit_rate``.
        """
        self.hits = self.misses = self.evictions = self.dirty_evictions = 0
        self._synced = [0, 0, 0]
        self._t_hits.reset()
        self._t_misses.reset()
        self._t_dirty_evictions.reset()
