"""Cache models for the timing plane.

* :mod:`repro.cache.setassoc` — generic set-associative write-back cache
  with LRU replacement.
* :mod:`repro.cache.hierarchy` — the shared LLC (8MB/8-way) and the
  dedicated metadata cache (128KB/8-way) of Table III, with the line-type
  partitioning hooks the secure designs need (counters competing with data
  in the LLC is the mechanism behind the pr-web/cc-web anomaly of Fig. 8).
"""

from repro.cache.setassoc import CacheAccessResult, SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy

__all__ = ["CacheAccessResult", "SetAssociativeCache", "CacheHierarchy"]
