"""Deterministic synthetic trace generation from workload profiles.

Address streams come from a three-way locality mixture:

* **sequential** — a handful of stride-1 stream pointers walking the
  footprint (models the streaming loops of lbm/libquantum/bwaves; produces
  DRAM row-buffer hits and LLC misses);
* **hot** — uniform draws from a small reuse set (models LLC-resident
  structures; produces LLC hits);
* **random** — uniform draws over the whole footprint (models
  pointer-chasing of mcf/omnetpp/graph kernels; produces LLC *and*
  row-buffer misses).

Instruction gaps between accesses are geometric with mean set by the
profile's APKI, so the generated trace hits the target intensity in
expectation and the per-record variance resembles bursty real traces.

Two implementations produce **bit-identical** traces:

* :func:`generate_trace_reference` — the original per-record loop calling
  ``DeterministicRng`` methods; the readable specification and the oracle
  for the batched path.
* :func:`generate_trace` — batched: peeks a block of raw Mersenne-Twister
  words (``DeterministicRng.peek_raw_words``), precomputes every float
  draw / threshold compare / bit draw over the whole block with numpy,
  walks the stream with a control-only Python loop that mirrors exactly
  how ``random.Random`` consumes words (2 words per ``random()``, one
  word per bounded ``getrandbits`` with rejection above the bound), then
  gathers gaps/ops vectorised by record offset. Finally the RNG is
  advanced by the exact number of words consumed, so any interleaved
  scalar use continues identically.

The only non-exact vector op is ``np.log`` (1-ulp differences vs
``math.log``); gap values whose truncation could straddle an integer are
detected by a wide tolerance band and recomputed with ``math.log``.
"""

from __future__ import annotations

import math
from typing import List

from repro.cpu.trace import MemoryOp, Trace, TraceRecord
from repro.simcontext import current_context
from repro.util.rng import DeterministicRng, derive_seed, mt_unit_floats
from repro.util.units import CACHELINE_BYTES, KIB, MIB
from repro.workloads.profiles import WorkloadProfile

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

#: Number of concurrent stride-1 streams for the sequential component.
_NUM_STREAMS = 4
#: 4KB pages for the random component's page-locality window.
_LINES_PER_PAGE = 64
#: Recently-touched pages the random component may revisit.
_PAGE_WINDOW = 64
#: Probability the sequential component stays on its current stream.
_STREAM_STICKINESS = 0.85


def _check_args(num_accesses: int, scale_divisor: int) -> None:
    if num_accesses <= 0:
        raise ValueError("num_accesses must be positive")
    if scale_divisor < 1:
        raise ValueError("scale_divisor must be >= 1")


def _geometry(profile: WorkloadProfile, scale_divisor: int):
    """Footprint/hot-set/page geometry shared by both generators."""
    footprint_lines = max(
        64, int(profile.footprint_mib * MIB) // CACHELINE_BYTES // scale_divisor
    )
    hot_lines = max(
        16, int(profile.hot_set_kib * KIB) // CACHELINE_BYTES // scale_divisor
    )
    hot_lines = min(hot_lines, footprint_lines)
    num_pages = max(1, footprint_lines // _LINES_PER_PAGE)
    return footprint_lines, hot_lines, num_pages


def generate_trace_reference(
    profile: WorkloadProfile,
    num_accesses: int,
    core_id: int = 0,
    base_line: int = 0,
    seed_salt: object = "trace",
    scale_divisor: int = 1,
) -> Trace:
    """Generate ``num_accesses`` memory operations for one core (scalar).

    ``base_line`` offsets the whole footprint, letting rate-mode cores run
    disjoint copies (the paper's rate mode gives each core its own address
    space). ``scale_divisor`` shrinks footprint and hot set for scaled
    simulation (must match the cache scale so capacity ratios hold).
    Deterministic given (profile.name, core_id, seed_salt).

    This is the reference implementation :func:`generate_trace` must match
    record-for-record; keep the draw sequence frozen.
    """
    _check_args(num_accesses, scale_divisor)
    rng = DeterministicRng(derive_seed(profile.name, core_id, seed_salt))

    footprint_lines, hot_lines, num_pages = _geometry(profile, scale_divisor)
    # The hot set occupies the start of the footprint; streams and random
    # draws roam everywhere (overlap with the hot set is harmless).
    stream_positions = [
        rng.randint(0, footprint_lines - 1) for _ in range(_NUM_STREAMS)
    ]
    # Recently-touched-page window for the random component's page locality.
    page_window: List[int] = [rng.randint(0, num_pages - 1) for _ in range(_PAGE_WINDOW)]
    window_cursor = 0
    burst_page = page_window[0]
    burst_left = 0
    burst_offset = 0
    active_stream = 0

    mean_gap = max(0.0, 1000.0 / profile.apki - 1.0)
    # Exponential inter-access gaps match the target APKI in expectation.
    records: List[TraceRecord] = []
    for _ in range(num_accesses):
        gap = int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 0 else 0
        op = (
            MemoryOp.WRITE
            if rng.uniform() < profile.write_fraction
            else MemoryOp.READ
        )
        draw = rng.uniform()
        if draw < profile.sequential:
            # Sticky stream selection: real streaming loops issue long runs
            # from one stream before switching (row-buffer locality).
            if rng.uniform() > _STREAM_STICKINESS:
                current_stream = rng.randint(0, _NUM_STREAMS - 1)
            else:
                current_stream = active_stream
            active_stream = current_stream
            stream_positions[current_stream] = (
                stream_positions[current_stream] + 1
            ) % footprint_lines
            line = stream_positions[current_stream]
        elif draw < profile.sequential + profile.hot:
            line = rng.randint(0, hot_lines - 1)
        else:
            if burst_left <= 0:
                # Pick the next page to burst into: usually a recently
                # touched one, occasionally a fresh uniform page.
                if rng.uniform() < profile.page_locality:
                    burst_page = page_window[rng.randint(0, _PAGE_WINDOW - 1)]
                else:
                    burst_page = rng.randint(0, num_pages - 1)
                    page_window[window_cursor] = burst_page
                    window_cursor = (window_cursor + 1) % _PAGE_WINDOW
                burst_left = 1 + int(rng.expovariate(1.0 / profile.burst_length))
                burst_offset = rng.randint(0, _LINES_PER_PAGE - 1)
            burst_left -= 1
            # Bursts walk the page sequentially: real miss streams are
            # spatially clustered, which is what lets one counter line
            # (covering 8 adjacent data lines) serve a run of misses.
            line = min(
                footprint_lines - 1,
                burst_page * _LINES_PER_PAGE + burst_offset % _LINES_PER_PAGE,
            )
            burst_offset += 1
        records.append(TraceRecord(gap, op, base_line + line))
    return Trace(records, name="%s.c%d" % (profile.name, core_id))


def generate_trace(
    profile: WorkloadProfile,
    num_accesses: int,
    core_id: int = 0,
    base_line: int = 0,
    seed_salt: object = "trace",
    scale_divisor: int = 1,
) -> Trace:
    """Batched trace generation, bit-identical to the reference.

    See :func:`generate_trace_reference` for semantics. Falls back to the
    reference loop when numpy is unavailable.
    """
    if _np is None:
        return generate_trace_reference(
            profile, num_accesses, core_id, base_line, seed_salt, scale_divisor
        )
    _check_args(num_accesses, scale_divisor)
    rng = DeterministicRng(derive_seed(profile.name, core_id, seed_salt))

    footprint_lines, hot_lines, num_pages = _geometry(profile, scale_divisor)
    # Setup draws stay scalar (tiny, and they fix the peek base state).
    stream_positions0 = [
        rng.randint(0, footprint_lines - 1) for _ in range(_NUM_STREAMS)
    ]
    page_window0 = [rng.randint(0, num_pages - 1) for _ in range(_PAGE_WINDOW)]

    mean_gap = max(0.0, 1000.0 / profile.apki - 1.0)
    has_gap = mean_gap > 0
    # random.Random consumes 2 words per random() and 1 word per bounded
    # getrandbits(k<=32) draw (with ~geometric rejection retries), so the
    # expected words/record is ~6-9; budget generously and retry on
    # exhaustion (rejection runs have unbounded tails). Consumption is
    # deterministic per call signature, so remember it and peek exactly
    # next time (the grid re-generates identical traces constantly).
    hints = current_context().words_hint
    hint_key = (
        profile.name, num_accesses, core_id, repr(seed_salt), scale_divisor
    )
    hinted = hints.get(hint_key)
    budget = hinted + 1 if hinted is not None else num_accesses * 10 + 256
    while True:
        words, block = rng.begin_raw_block(budget)
        try:
            columns, consumed = _decode_block(
                words, profile, num_accesses,
                footprint_lines, hot_lines, num_pages,
                list(stream_positions0), list(page_window0),
                mean_gap, has_gap,
            )
            break
        except IndexError:
            budget *= 2
    from repro.analysis.sanitizer import get_sanitizer

    sanitizer = get_sanitizer()
    if sanitizer is not None:
        # The hint table was resolved before the decode loop; prove it still
        # belongs to the active context before writing into it.
        sanitizer.check_context_owner(hints, "words-hint table")
    if len(hints) >= _WORDS_HINT_MAX:
        hints.clear()
    hints[hint_key] = consumed
    rng.commit_raw_block(block, budget, consumed)
    gaps, ops, lines = columns
    if base_line:
        lines += base_line
    return Trace.from_arrays(
        gaps, ops, lines, name="%s.c%d" % (profile.name, core_id)
    )


#: Exact raw-word consumption per call signature, learned on first use, so
#: repeat generations peek precisely instead of over-budgeting. Perf-only
#: state: a miss merely costs a larger peek, never changes the trace. The
#: hints live on the active :class:`~repro.simcontext.SimContext`
#: (``words_hint``) — per-scope rather than shared-mutable across
#: concurrent workers — and are bounded by wholesale clearing (the working
#: set per experiment is tiny; an overflow only means re-learning budgets).
_WORDS_HINT_MAX = 4096

#: 2**-53 — scales a 53-bit draw integer to random.Random.random()'s float.
_INV53 = float(2.0 ** -53)


def _run_table(fast, stride):
    """Byte table of maximal consecutive-``True`` runs at ``stride`` steps.

    ``table[t]`` is how many offsets ``t, t + stride, t + 2*stride, ...``
    are ``True`` starting at ``t`` (capped at 255; a longer run is simply
    consumed in 255-record bites). Every stride-residue chain is one
    *column* of the padded array reshaped to ``stride`` columns, so a
    single axis-0 reversed-cumsum pass handles all residues at once.
    """
    n = len(fast)
    rows = -(-n // stride)
    padded = _np.zeros(rows * stride, dtype=bool)
    padded[:n] = fast
    chain = padded.reshape(rows, stride)[::-1]
    csum = _np.cumsum(chain, axis=0, dtype=_np.int32)
    reset = _np.maximum.accumulate(_np.where(chain, 0, csum), axis=0)
    runlen = (csum - reset)[::-1].reshape(-1)[:n]
    return _np.minimum(runlen, 255).astype(_np.uint8).tobytes()


def _decode_block(
    words, profile, num_accesses,
    footprint_lines, hot_lines, num_pages,
    stream_positions, page_window,
    mean_gap, has_gap,
):
    """One decode attempt over a peeked block of raw words.

    Raises IndexError if the stream walk runs past the budget (caller
    retries with a doubled budget from the same base state).

    Structure: a *control-only* Python walk first establishes the one
    truly serial quantity — where each record's words start (rejection
    runs and burst lengths make offsets data-dependent) — while noting
    per-branch accepted-draw offsets. Every record's *value* (gap, op,
    line) is then reconstructed vectorially:

    * sequential lines: forward-fill the active stream over switch
      events, then a per-stream cumulative count gives each position;
    * hot lines: gather the bounded draw at each accepted offset;
    * burst lines: each burst is an arithmetic run within one page, so
      ``repeat``/``arange`` materialises all runs at once; the
      page-window ring resolves in closed form (slot ownership of the
      m-th fresh pick is ``(m - 1) % window``);
    * gaps/ops: threshold compares and an exact-scaled ``-log`` on the
      53-bit draw integers gathered at record heads.

    Float compares happen in the integer domain: ``u < p`` for a 53-bit
    draw ``u = i/2**53`` is ``i < ceil(p * 2**53)`` (the scaling by a
    power of two is exact), which keeps the whole-stream precompute in
    uint64 and defers float conversion to the few gathered values.
    """
    # i53[t] is the 53-bit integer behind the random() float a scalar
    # consumer would build from words[t], words[t+1].
    u64 = _np.uint64
    head = words[:-1]
    i53 = (head >> u64(5)) << u64(26)
    i53 += words[1:] >> u64(6)
    # Per-offset control flags, one uint8 each (tolist of uint8 rides the
    # small-int cache — the walk reads only this one list):
    #   bits 0-1: locality branch for a draw starting here (0/1/2)
    #   bit 2:    stream switch (uniform > stickiness)
    #   bit 3:    page-locality hit (uniform < page_locality)
    #   bit 4:    hot-line getrandbits draw accepted here
    #   bit 5:    fresh-page getrandbits draw accepted here
    #   bit 6:    top bit of the word clear — acceptance for every
    #             power-of-two bound (stream pick, window index, burst
    #             offset), letting the walk spell rejection as `< 64`
    t_seq = math.ceil(profile.sequential * 9007199254740992.0)
    t_seq_hot = math.ceil(
        (profile.sequential + profile.hot) * 9007199254740992.0
    )
    t_stick = math.floor(_STREAM_STICKINESS * 9007199254740992.0) + 1
    t_page_loc = math.ceil(profile.page_locality * 9007199254740992.0)
    # Bool temporaries are reinterpreted as uint8 (``view`` — zero copy)
    # and shifted in place before accumulating into the code bytes. Flags
    # for branches a profile can never take are skipped entirely.
    u8 = _np.uint8
    codes_np = (i53 >= t_seq).view(u8)
    codes_np = codes_np + (i53 >= t_seq_hot).view(u8)
    has_random = profile.sequential + profile.hot < 1.0
    flags = []
    if profile.sequential > 0:
        flags.append((i53 >= t_stick, u8(2)))
    if profile.hot > 0:
        hot_np = head >> u64(32 - hot_lines.bit_length())
        hot_ok = hot_np < hot_lines
        # bit 7 at a record head caches "the hot draw two words ahead
        # accepts immediately", so the hot arm's common case is a pure
        # dispatch-byte decision. The spilled bit means rejection scans
        # must test bit 6 explicitly rather than compare `< 64`.
        codes_np[:-2] += hot_ok[2:].view(u8) << u8(7)
        flags.append((hot_ok, u8(4)))
    else:
        hot_np = None
    if has_random:
        page_np = head >> u64(32 - num_pages.bit_length())
        flags.append((i53 < t_page_loc, u8(3)))
        flags.append((page_np < num_pages, u8(5)))
    else:
        page_np = None
    if has_random or profile.sequential > 0:
        flags.append((head < 2147483648, u8(6)))
    for flag, shift in flags:
        flag = flag.view(u8)
        _np.left_shift(flag, shift, out=flag)
        codes_np += flag
    # bytes, not tolist: tobytes is a memcpy and byte indexing returns
    # small ints — the walk touches ~3 of each ~8 offsets, so paying per
    # *read* beats paying per *element converted*.
    codes = codes_np.tobytes()

    lambd_burst = 1.0 / profile.burst_length
    burst_left = 0
    item53 = i53.item

    rec_offs: List[int] = []
    rec_append = rec_offs.append
    hot_offs: List[int] = []
    hot_append = hot_offs.append
    sw_offs: List[int] = []
    sw_append = sw_offs.append
    widx_offs: List[int] = []
    widx_append = widx_offs.append
    fresh_offs: List[int] = []
    fresh_append = fresh_offs.append
    boff_offs: List[int] = []
    boff_append = boff_offs.append
    burst_lens: List[int] = []
    blen_append = burst_lens.append
    pre = 6 if has_gap else 4  # words before each record's branch tail
    draw_rel = pre - 2  # offset of the locality draw within the record
    # The cursor rides at the record's *draw* offset (record start +
    # draw_rel): the dispatch byte is then a single list index, and the
    # true record offsets are recovered by one vector subtract at the end.
    d = draw_rel
    if profile.sequential >= 0.5 and num_accesses >= 2048:
        # Run acceleration: a no-switch sequential record consumes a
        # fixed word count, so maximal runs of them sit at arithmetic
        # offsets. Precompute a run-length byte table (:func:`_run_table`)
        # and let the walk swallow a whole run with one
        # ``extend(range(...))`` instead of one Python iteration per
        # record. Only worth the vector setup when sticky-sequential
        # records dominate. (The analogous trick for bit-7 hot records
        # was measured and rejected: ~50% hot-draw acceptance keeps those
        # runs near length 1, so the table build outweighs the loop
        # savings — the plain bit-7 arm below is already one append.)
        seq_stride = pre + 2
        fast = (codes_np & u8(3)) == 0
        fast[-2:] = False
        fast[:-2] &= (codes_np[2:] & u8(4)) == 0
        seq_run_codes = _run_table(fast, seq_stride)
        rec_extend = rec_offs.extend
        remaining = num_accesses
        while remaining:
            k = seq_run_codes[d]
            if k:
                # k fast-seq records in a row: no side state to update.
                if k > remaining:
                    k = remaining
                end = d + k * seq_stride
                rec_extend(range(d, end, seq_stride))
                d = end
                remaining -= k
                continue
            remaining -= 1
            rec_append(d)
            code = codes[d]
            branch = code & 3
            if branch == 2:
                if burst_left:
                    burst_left -= 1
                    d += pre
                else:
                    t = d + 2
                    if codes[t] & 8:
                        t += 2
                        while not codes[t] & 64:
                            t += 1
                        widx_append(t)
                    else:
                        t += 2
                        while not codes[t] & 32:
                            t += 1
                        fresh_append(t)
                    t += 1
                    burst_left = int(
                        -math.log(1.0 - item53(t) * _INV53) / lambd_burst
                    )
                    blen_append(burst_left + 1)
                    t += 2
                    while not codes[t] & 64:
                        t += 1
                    boff_append(t)
                    d = t + 1 + draw_rel
            elif branch == 1:
                if code & 128:
                    hot_append(d + 2)
                    d += 3 + draw_rel
                else:
                    t = d + 3
                    while not codes[t] & 16:
                        t += 1
                    hot_append(t)
                    d = t + 1 + draw_rel
            else:
                # Reaching the sequential arm here means a stream switch
                # (the no-switch case was consumed as a run of length >= 1).
                t = d + 4
                while not codes[t] & 64:
                    t += 1
                sw_append(t)
                d = t + 1 + draw_rel
    else:
        for _ in range(num_accesses):
            rec_append(d)
            code = codes[d]
            branch = code & 3
            if branch == 2:
                # random: page-locality bursts. In-burst records consume
                # no tail words; boundaries do window/length/offset draws.
                if burst_left:
                    burst_left -= 1
                    d += pre
                else:
                    t = d + 2
                    if codes[t] & 8:
                        t += 2
                        while not codes[t] & 64:
                            t += 1
                        widx_append(t)
                    else:
                        t += 2
                        while not codes[t] & 32:
                            t += 1
                        fresh_append(t)
                    t += 1
                    # Burst length feeds the walk itself (it gates how
                    # many later records consume words), so it must be
                    # resolved here — exact scalar expovariate from the
                    # draw integer.
                    burst_left = int(
                        -math.log(1.0 - item53(t) * _INV53) / lambd_burst
                    )
                    blen_append(burst_left + 1)
                    t += 2
                    while not codes[t] & 64:
                        t += 1
                    boff_append(t)
                    d = t + 1 + draw_rel
            elif branch == 1:
                # hot set: one bounded draw with rejection; bit 7 already
                # answers whether the first word accepts.
                if code & 128:
                    hot_append(d + 2)
                    d += 3 + draw_rel
                else:
                    t = d + 3
                    while not codes[t] & 16:
                        t += 1
                    hot_append(t)
                    d = t + 1 + draw_rel
            else:
                # sequential: sticky stream selection.
                t = d + 2
                if codes[t] & 4:
                    t += 2
                    while not codes[t] & 64:
                        t += 1
                    sw_append(t)
                    d = t + 1 + draw_rel
                else:
                    d = t + 2 + draw_rel
    consumed = d - draw_rel

    # rec_offs holds draw offsets; the op draw sits 2 words before it and
    # the gap draw (when present) 4 words before.
    draw_offs = _np.fromiter(rec_offs, _np.intp, count=num_accesses)
    if has_gap:
        # Vectorised gaps: truncate -log(1 - u)/lambd at each record head.
        # np.log can differ from math.log by an ulp, which only matters if
        # truncation straddles an integer — recompute those exactly.
        lambd_gap = 1.0 / mean_gap
        u_gap = i53[draw_offs - 4].astype(_np.float64) * _INV53
        gap_f = -_np.log(1.0 - u_gap) / lambd_gap
        gaps = gap_f.astype(_np.int64)
        suspect = _np.nonzero(
            _np.abs(gap_f - _np.rint(gap_f)) <= 1e-6 * (1.0 + _np.abs(gap_f))
        )[0]
        for i, u in zip(suspect.tolist(), u_gap[suspect].tolist()):
            gaps[i] = int(-math.log(1.0 - u) / lambd_gap)
    else:
        gaps = _np.zeros(num_accesses, dtype=_np.int64)
    t_write = math.ceil(profile.write_fraction * 9007199254740992.0)
    ops = i53[draw_offs - 2] < t_write

    lines = _np.empty(num_accesses, dtype=_np.int64)
    branch_np = codes_np[draw_offs] & _np.uint8(3)
    max_line = footprint_lines - 1

    seq_rows = _np.nonzero(branch_np == 0)[0]
    if len(seq_rows):
        # Active stream per sequential record: forward-fill the last
        # switch value (initially stream 0); then each record's line is
        # its stream's start position advanced by its occurrence count.
        switched = (codes_np[draw_offs[seq_rows] + 2] & _np.uint8(4)) != 0
        stream = _np.zeros(len(seq_rows), dtype=_np.int64)
        if sw_offs:
            stream[switched] = (
                head[_np.array(sw_offs, dtype=_np.intp)] >> u64(29)
            ).astype(_np.int64)
        marker = _np.where(switched, _np.arange(len(seq_rows)), -1)
        last_switch = _np.maximum.accumulate(marker)
        stream = _np.where(
            last_switch >= 0, stream[_np.maximum(last_switch, 0)], 0
        )
        seq_lines = _np.empty(len(seq_rows), dtype=_np.int64)
        for s in range(_NUM_STREAMS):
            mask = stream == s
            counts = _np.cumsum(mask)
            seq_lines[mask] = (stream_positions[s] + counts[mask]) % (
                footprint_lines
            )
        lines[seq_rows] = seq_lines

    hot_rows = _np.nonzero(branch_np == 1)[0]
    if len(hot_rows):
        lines[hot_rows] = hot_np[
            _np.array(hot_offs, dtype=_np.intp)
        ].astype(_np.int64)

    rand_rows = _np.nonzero(branch_np == 2)[0]
    if len(rand_rows):
        # Resolve burst pages without replaying the page-window ring:
        # slot ownership is closed-form. The m-th fresh pick (1-based)
        # writes slot ``(m - 1) % window``, so a hit on slot ``i`` after
        # ``kf`` fresh picks reads the latest pick congruent to ``i`` —
        # ``m = kf - ((kf - 1 - i) % window)`` — or the warm-up window
        # when no such pick exists (``m < 1``). Boundary order is offset
        # order (hit and fresh draw offsets are disjoint and increasing),
        # recovered by cross-``searchsorted`` ranks.
        n_hits = len(widx_offs)
        n_fresh = len(fresh_offs)
        fresh_np = page_np[_np.array(fresh_offs, dtype=_np.intp)].astype(
            _np.int64
        )
        if n_hits:
            w_off = _np.array(widx_offs, dtype=_np.int64)
            widx_arr = (head[w_off] >> u64(25)).astype(_np.int64)
            pw0 = _np.array(page_window, dtype=_np.int64)
            pages_arr = _np.empty(n_hits + n_fresh, dtype=_np.int64)
            if n_fresh:
                f_off = _np.array(fresh_offs, dtype=_np.int64)
                kf = _np.searchsorted(f_off, w_off)
                m = kf - ((kf - 1 - widx_arr) % _PAGE_WINDOW)
                hit_pages = _np.where(
                    m >= 1, fresh_np[_np.maximum(m - 1, 0)], pw0[widx_arr]
                )
                arange_f = _np.arange(n_fresh, dtype=_np.int64)
                pages_arr[_np.searchsorted(w_off, f_off) + arange_f] = (
                    fresh_np
                )
            else:
                kf = _np.zeros(n_hits, dtype=_np.int64)
                hit_pages = pw0[widx_arr]
            pages_arr[kf + _np.arange(n_hits, dtype=_np.int64)] = hit_pages
        else:
            pages_arr = fresh_np
        lens = _np.fromiter(burst_lens, _np.int64, count=len(burst_lens))
        bases = _np.repeat(pages_arr * _LINES_PER_PAGE, lens)[
            : len(rand_rows)
        ]
        off0 = _np.repeat(
            head[_np.array(boff_offs, dtype=_np.intp)] >> u64(25), lens
        )[: len(rand_rows)].astype(_np.int64)
        starts = _np.repeat(_np.cumsum(lens) - lens, lens)[: len(rand_rows)]
        within = _np.arange(len(rand_rows), dtype=_np.int64) - starts
        burst_lines = bases + ((off0 + within) & (_LINES_PER_PAGE - 1))
        lines[rand_rows] = _np.minimum(burst_lines, max_line)

    return (gaps, ops, lines), consumed


def rate_mode_traces(
    profile: WorkloadProfile,
    num_accesses: int,
    num_cores: int = 4,
    lines_per_core: int = 1 << 22,
) -> List[Trace]:
    """Per-core traces for rate mode: same workload, disjoint footprints."""
    return [
        generate_trace(
            profile,
            num_accesses,
            core_id=core,
            base_line=core * lines_per_core,
        )
        for core in range(num_cores)
    ]
