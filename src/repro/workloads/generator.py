"""Deterministic synthetic trace generation from workload profiles.

Address streams come from a three-way locality mixture:

* **sequential** — a handful of stride-1 stream pointers walking the
  footprint (models the streaming loops of lbm/libquantum/bwaves; produces
  DRAM row-buffer hits and LLC misses);
* **hot** — uniform draws from a small reuse set (models LLC-resident
  structures; produces LLC hits);
* **random** — uniform draws over the whole footprint (models
  pointer-chasing of mcf/omnetpp/graph kernels; produces LLC *and*
  row-buffer misses).

Instruction gaps between accesses are geometric with mean set by the
profile's APKI, so the generated trace hits the target intensity in
expectation and the per-record variance resembles bursty real traces.
"""

from __future__ import annotations

from typing import List

from repro.cpu.trace import MemoryOp, Trace, TraceRecord
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.units import CACHELINE_BYTES, KIB, MIB
from repro.workloads.profiles import WorkloadProfile

#: Number of concurrent stride-1 streams for the sequential component.
_NUM_STREAMS = 4
#: 4KB pages for the random component's page-locality window.
_LINES_PER_PAGE = 64
#: Recently-touched pages the random component may revisit.
_PAGE_WINDOW = 64
#: Probability the sequential component stays on its current stream.
_STREAM_STICKINESS = 0.85


def generate_trace(
    profile: WorkloadProfile,
    num_accesses: int,
    core_id: int = 0,
    base_line: int = 0,
    seed_salt: object = "trace",
    scale_divisor: int = 1,
) -> Trace:
    """Generate ``num_accesses`` memory operations for one core.

    ``base_line`` offsets the whole footprint, letting rate-mode cores run
    disjoint copies (the paper's rate mode gives each core its own address
    space). ``scale_divisor`` shrinks footprint and hot set for scaled
    simulation (must match the cache scale so capacity ratios hold).
    Deterministic given (profile.name, core_id, seed_salt).
    """
    if num_accesses <= 0:
        raise ValueError("num_accesses must be positive")
    if scale_divisor < 1:
        raise ValueError("scale_divisor must be >= 1")
    rng = DeterministicRng(derive_seed(profile.name, core_id, seed_salt))

    footprint_lines = max(
        64, int(profile.footprint_mib * MIB) // CACHELINE_BYTES // scale_divisor
    )
    hot_lines = max(
        16, int(profile.hot_set_kib * KIB) // CACHELINE_BYTES // scale_divisor
    )
    hot_lines = min(hot_lines, footprint_lines)
    # The hot set occupies the start of the footprint; streams and random
    # draws roam everywhere (overlap with the hot set is harmless).
    stream_positions = [
        rng.randint(0, footprint_lines - 1) for _ in range(_NUM_STREAMS)
    ]
    # Recently-touched-page window for the random component's page locality.
    num_pages = max(1, footprint_lines // _LINES_PER_PAGE)
    page_window: List[int] = [rng.randint(0, num_pages - 1) for _ in range(_PAGE_WINDOW)]
    window_cursor = 0
    burst_page = page_window[0]
    burst_left = 0
    burst_offset = 0
    active_stream = 0

    mean_gap = max(0.0, 1000.0 / profile.apki - 1.0)
    # Exponential inter-access gaps match the target APKI in expectation.
    records: List[TraceRecord] = []
    for _ in range(num_accesses):
        gap = int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 0 else 0
        op = (
            MemoryOp.WRITE
            if rng.uniform() < profile.write_fraction
            else MemoryOp.READ
        )
        draw = rng.uniform()
        if draw < profile.sequential:
            # Sticky stream selection: real streaming loops issue long runs
            # from one stream before switching (row-buffer locality).
            if rng.uniform() > _STREAM_STICKINESS:
                current_stream = rng.randint(0, _NUM_STREAMS - 1)
            else:
                current_stream = active_stream
            active_stream = current_stream
            stream_positions[current_stream] = (
                stream_positions[current_stream] + 1
            ) % footprint_lines
            line = stream_positions[current_stream]
        elif draw < profile.sequential + profile.hot:
            line = rng.randint(0, hot_lines - 1)
        else:
            if burst_left <= 0:
                # Pick the next page to burst into: usually a recently
                # touched one, occasionally a fresh uniform page.
                if rng.uniform() < profile.page_locality:
                    burst_page = page_window[rng.randint(0, _PAGE_WINDOW - 1)]
                else:
                    burst_page = rng.randint(0, num_pages - 1)
                    page_window[window_cursor] = burst_page
                    window_cursor = (window_cursor + 1) % _PAGE_WINDOW
                burst_left = 1 + int(rng.expovariate(1.0 / profile.burst_length))
                burst_offset = rng.randint(0, _LINES_PER_PAGE - 1)
            burst_left -= 1
            # Bursts walk the page sequentially: real miss streams are
            # spatially clustered, which is what lets one counter line
            # (covering 8 adjacent data lines) serve a run of misses.
            line = min(
                footprint_lines - 1,
                burst_page * _LINES_PER_PAGE + burst_offset % _LINES_PER_PAGE,
            )
            burst_offset += 1
        records.append(TraceRecord(gap, op, base_line + line))
    return Trace(records, name="%s.c%d" % (profile.name, core_id))


def rate_mode_traces(
    profile: WorkloadProfile,
    num_accesses: int,
    num_cores: int = 4,
    lines_per_core: int = 1 << 22,
) -> List[Trace]:
    """Per-core traces for rate mode: same workload, disjoint footprints."""
    return [
        generate_trace(
            profile,
            num_accesses,
            core_id=core,
            base_line=core * lines_per_core,
        )
        for core in range(num_cores)
    ]
