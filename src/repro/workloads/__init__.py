"""Synthetic workloads standing in for the paper's SPEC2006 + GAP traces.

The paper evaluates 23 memory-intensive SPEC2006 workloads, 6 GAP graph
kernels (PageRank / Connected Components / Betweenness Centrality on the
Twitter and Web datasets), and 6 four-way mixes, each as a 1B-instruction
PinPoint slice run in rate mode on 4 cores.

We cannot ship those traces, so :mod:`repro.workloads.generator` synthesises
traces from per-workload *profiles* (:mod:`repro.workloads.profiles`) that
encode the statistics the performance results actually depend on: memory
intensity (accesses per kilo-instruction), read/write mix, footprint, and a
locality mixture (sequential streams / hot reuse set / uniform random).
Generation is deterministic given (workload, core, scale).
"""

from repro.workloads.generator import generate_trace
from repro.workloads.profiles import (
    WorkloadProfile,
    ALL_WORKLOADS,
    GAP_WORKLOADS,
    SPEC_WORKLOADS,
    profile_by_name,
)
from repro.workloads.mixes import MIXES
from repro.workloads.suites import workload_suite

__all__ = [
    "generate_trace",
    "WorkloadProfile",
    "ALL_WORKLOADS",
    "GAP_WORKLOADS",
    "SPEC_WORKLOADS",
    "MIXES",
    "profile_by_name",
    "workload_suite",
]
