"""The six mixed workloads (paper Section V).

Each mix runs four *different* benchmarks, one per core, chosen as "random
combinations" in the paper. We fix six deterministic combinations spanning
intensity classes so mixes stress asymmetric contention.
"""

from __future__ import annotations

from typing import Dict, List

MIXES: Dict[str, List[str]] = {
    "mix1": ["mcf", "lbm", "gcc", "hmmer"],
    "mix2": ["libquantum", "omnetpp", "sphinx3", "astar"],
    "mix3": ["milc", "soplex", "bzip2", "gobmk"],
    "mix4": ["GemsFDTD", "leslie3d", "xalancbmk", "dealII"],
    "mix5": ["pr-twi", "cc-web", "bwaves", "perlbench"],
    "mix6": ["bc-twi", "pr-web", "cactusADM", "h264ref"],
}
