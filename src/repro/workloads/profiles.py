"""Per-workload statistical profiles.

Each profile describes a workload's memory behaviour at the LLC boundary:

* ``apki`` — LLC accesses (L2 misses) per 1000 instructions;
* ``write_fraction`` — fraction of those that are stores/writebacks;
* ``footprint_mib`` — working-set size (per core, rate mode);
* ``sequential`` / ``hot`` — locality mixture weights: ``sequential``
  accesses follow stride-1 streams (row-buffer friendly, LLC-miss heavy for
  large footprints), ``hot`` accesses reuse a small LLC-resident set, and
  the remainder are uniform over the footprint;
* ``hot_set_kib`` — size of the reuse set.

Numbers are calibrated from published characterisations of SPEC2006 and GAP
memory behaviour (MPKI orderings, streaming-vs-pointer-chasing nature);
exact values matter less than the ordering and spread, which drive the
figures' shapes. The web-dataset graph kernels get moderate footprints with
strong reuse — that is the regime where SGX_O's counters fight data for LLC
capacity (the Fig. 8 anomaly) — while the twitter-dataset kernels get huge,
reuse-poor footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one workload's LLC-boundary behaviour."""

    name: str
    suite: str  #: 'specint' | 'specfp' | 'gap'
    apki: float  #: LLC accesses per kilo-instruction
    write_fraction: float
    footprint_mib: float  #: per-core working set
    sequential: float  #: fraction of stride-1 stream accesses
    hot: float  #: fraction of accesses to the hot reuse set
    hot_set_kib: int = 512
    #: Fraction of *random* accesses drawn from a recently-touched-page
    #: window rather than uniformly. Models the page-level temporal
    #: locality of real pointer-chasing code; it is what makes counter
    #: lines (1 per 8 adjacent data lines) cacheable, as in the paper.
    page_locality: float = 0.7
    #: Mean spatial burst length of the random component: consecutive
    #: accesses walk a page sequentially before moving on (real miss
    #: streams are spatially clustered; this is what lets one counter line,
    #: covering 8 adjacent data lines, serve a run of misses as in Fig. 9).
    burst_length: float = 10.0

    def __post_init__(self) -> None:
        if self.apki <= 0:
            raise ValueError("apki must be positive")
        if not 0 <= self.write_fraction <= 1:
            raise ValueError("write_fraction in [0,1]")
        if self.sequential + self.hot > 1.0 + 1e-9:
            raise ValueError("locality fractions exceed 1")

    @property
    def random_fraction(self) -> float:
        """Uniform-random remainder of the locality mixture."""
        return max(0.0, 1.0 - self.sequential - self.hot)


def _spec(name, suite, apki, wf, fp, seq, hot, hot_kib=512, pl=0.7, burst=10.0):
    return WorkloadProfile(
        name, suite, apki, wf, fp, seq, hot, hot_kib,
        page_locality=pl, burst_length=burst,
    )


#: 23 memory-intensive SPEC2006 workloads (paper Section V: >1 access/1000
#: instructions), ordered roughly as Fig. 8's x-axis groups them.
SPEC_WORKLOADS: List[WorkloadProfile] = [
    # SPECint
    _spec("astar", "specint", 6.0, 0.25, 48, 0.10, 0.45, pl=0.7, burst=3.0),
    _spec("bzip2", "specint", 3.5, 0.35, 28, 0.25, 0.45),
    _spec("gcc", "specint", 4.0, 0.30, 32, 0.15, 0.50),
    _spec("gobmk", "specint", 1.6, 0.30, 12, 0.10, 0.60),
    _spec("h264ref", "specint", 1.8, 0.30, 16, 0.40, 0.40),
    _spec("hmmer", "specint", 2.2, 0.40, 12, 0.45, 0.40),
    _spec("mcf", "specint", 38.0, 0.20, 420, 0.05, 0.10, pl=0.55, burst=2.5),
    _spec("omnetpp", "specint", 12.0, 0.30, 90, 0.05, 0.25, pl=0.6, burst=2.0),
    _spec("perlbench", "specint", 1.4, 0.35, 14, 0.15, 0.60),
    _spec("xalancbmk", "specint", 4.5, 0.25, 60, 0.10, 0.40, pl=0.7, burst=3.0),
    # SPECfp
    _spec("bwaves", "specfp", 16.0, 0.25, 380, 0.75, 0.05),
    _spec("cactusADM", "specfp", 5.5, 0.35, 140, 0.55, 0.15),
    _spec("dealII", "specfp", 2.4, 0.30, 24, 0.30, 0.50),
    _spec("GemsFDTD", "specfp", 18.0, 0.30, 460, 0.70, 0.05),
    _spec("gromacs", "specfp", 1.5, 0.30, 10, 0.40, 0.45),
    _spec("lbm", "specfp", 28.0, 0.40, 380, 0.85, 0.02),
    _spec("leslie3d", "specfp", 14.0, 0.30, 130, 0.70, 0.08),
    _spec("milc", "specfp", 22.0, 0.30, 560, 0.35, 0.05, pl=0.6, burst=5.0),
    _spec("libquantum", "specfp", 24.0, 0.25, 32, 0.95, 0.00),
    _spec("soplex", "specfp", 20.0, 0.25, 220, 0.30, 0.15, pl=0.65, burst=4.0),
    _spec("sphinx3", "specfp", 11.0, 0.15, 140, 0.35, 0.25),
    _spec("wrf", "specfp", 5.0, 0.30, 110, 0.60, 0.20),
    _spec("zeusmp", "specfp", 4.8, 0.35, 120, 0.55, 0.20),
]

#: 6 GAP kernels: {pr, cc, bc} x {twitter, web} (paper Section V).
GAP_WORKLOADS: List[WorkloadProfile] = [
    _spec("pr-twi", "gap", 34.0, 0.25, 900, 0.12, 0.06, 1024, pl=0.35, burst=1.5),
    _spec("pr-web", "gap", 26.0, 0.25, 60, 0.15, 0.55, 4096, pl=0.75, burst=1.5),
    _spec("cc-twi", "gap", 30.0, 0.20, 850, 0.10, 0.06, 1024, pl=0.35, burst=1.5),
    _spec("cc-web", "gap", 22.0, 0.20, 52, 0.12, 0.58, 4096, pl=0.75, burst=1.5),
    _spec("bc-twi", "gap", 38.0, 0.30, 950, 0.08, 0.06, 1024, pl=0.35, burst=1.5),
    _spec("bc-web", "gap", 28.0, 0.30, 64, 0.10, 0.55, 4096, pl=0.75, burst=1.5),
]

ALL_WORKLOADS: List[WorkloadProfile] = SPEC_WORKLOADS + GAP_WORKLOADS

_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in ALL_WORKLOADS}


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up a profile; raises KeyError with the known names on miss."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            "unknown workload %r; known: %s" % (name, ", ".join(sorted(_BY_NAME)))
        ) from None


def memory_intensive(threshold_apki: float = 1.0) -> List[WorkloadProfile]:
    """Profiles above an intensity threshold (paper: >1 per 1000 instr)."""
    return [p for p in ALL_WORKLOADS if p.apki > threshold_apki]
