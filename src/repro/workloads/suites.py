"""Workload suite selection helpers for the experiment harness.

The paper's headline numbers average 29 workloads (23 SPEC + 6 GAP);
benches at reduced scale can run representative subsets without changing
harness code.
"""

from __future__ import annotations

from typing import List

from repro.workloads.profiles import (
    ALL_WORKLOADS,
    GAP_WORKLOADS,
    SPEC_WORKLOADS,
    WorkloadProfile,
    profile_by_name,
)

#: A spread of intensities + the anomaly-exhibiting web kernels; used by
#: quick-scale benches where running all 29 would be too slow.
REPRESENTATIVE = [
    "mcf",
    "lbm",
    "libquantum",
    "omnetpp",
    "soplex",
    "gcc",
    "pr-twi",
    "pr-web",
    "cc-web",
]


def workload_suite(scope: str = "all") -> List[WorkloadProfile]:
    """Resolve a suite name to profiles.

    ``all`` = the paper's 29; ``spec`` / ``gap`` = subsets;
    ``representative`` = 9 workloads for quick benches;
    ``smoke`` = 3 workloads for tests.
    """
    if scope == "all":
        return list(ALL_WORKLOADS)
    if scope == "spec":
        return list(SPEC_WORKLOADS)
    if scope == "gap":
        return list(GAP_WORKLOADS)
    if scope == "representative":
        return [profile_by_name(name) for name in REPRESENTATIVE]
    if scope == "smoke":
        return [profile_by_name(name) for name in ("mcf", "libquantum", "pr-web")]
    raise ValueError("unknown suite scope %r" % scope)
