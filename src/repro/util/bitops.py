"""Bit- and byte-level manipulation helpers.

The functional secure-memory plane works on real bytes (cachelines, MACs,
parities); these helpers centralise the fiddly bit arithmetic so the domain
modules read cleanly.
"""

from __future__ import annotations


def bit_count(value: int) -> int:
    """Return the number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("bit_count requires a non-negative integer")
    return bin(value).count("1")


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` bits within a ``width``-bit word."""
    if width <= 0:
        raise ValueError("width must be positive")
    amount %= width
    mask = (1 << width) - 1
    value &= mask
    return ((value << amount) | (value >> (width - amount))) & mask


def extract_bits(value: int, offset: int, length: int) -> int:
    """Extract ``length`` bits of ``value`` starting at bit ``offset`` (LSB=0)."""
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    return (value >> offset) & ((1 << length) - 1)


def insert_bits(value: int, field: int, offset: int, length: int) -> int:
    """Return ``value`` with ``length`` bits at ``offset`` replaced by ``field``."""
    if field >= (1 << length):
        raise ValueError("field does not fit in %d bits" % length)
    mask = ((1 << length) - 1) << offset
    return (value & ~mask) | ((field << offset) & mask)


def bytes_xor(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(left) != len(right):
        raise ValueError(
            "bytes_xor length mismatch: %d vs %d" % (len(left), len(right))
        )
    return bytes(a ^ b for a, b in zip(left, right))


def int_to_bytes_be(value: int, length: int) -> bytes:
    """Encode a non-negative integer as big-endian bytes of fixed length."""
    return value.to_bytes(length, "big")


def int_from_bytes_be(data: bytes) -> int:
    """Decode big-endian bytes into a non-negative integer."""
    return int.from_bytes(data, "big")
