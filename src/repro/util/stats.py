"""Lightweight statistics infrastructure for the simulators.

Simulator components register named counters and histograms in a
:class:`StatGroup`; the harness then renders them uniformly. This mirrors the
stat dump machinery of USIMM/gem5 at a much smaller scale.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("Counter %s cannot decrease" % self.name)
        self.value += amount

    def reset(self) -> None:
        """Reset to zero."""
        self.value = 0

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class RatioStat:
    """A numerator/denominator pair reported as a ratio (e.g. hit rate)."""

    __slots__ = ("name", "description", "numerator", "denominator")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.numerator = 0
        self.denominator = 0

    def record(self, hit: bool) -> None:
        """Record one trial; ``hit`` increments the numerator."""
        self.denominator += 1
        if hit:
            self.numerator += 1

    @property
    def ratio(self) -> float:
        """Numerator over denominator, 0.0 when empty."""
        if self.denominator == 0:
            return 0.0
        return self.numerator / self.denominator

    def reset(self) -> None:
        """Reset both fields."""
        self.numerator = 0
        self.denominator = 0

    def __repr__(self) -> str:
        return "RatioStat(%s=%.4f)" % (self.name, self.ratio)


class Histogram:
    """A sparse integer-keyed histogram (e.g. queue depths, latencies)."""

    __slots__ = ("name", "description", "_bins", "_count", "_total")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._bins: Dict[int, int] = {}
        self._count = 0
        self._total = 0

    def record(self, value: int, weight: int = 1) -> None:
        """Add ``weight`` observations of ``value``."""
        bins = self._bins
        try:
            bins[value] += weight
        except KeyError:
            bins[value] = weight
        self._count += weight
        self._total += value * weight

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean of observations, 0.0 when empty."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    @property
    def maximum(self) -> int:
        """Largest observed value, 0 when empty."""
        if not self._bins:
            return 0
        return max(self._bins)

    def percentile(self, fraction: float) -> int:
        """Value at the given cumulative fraction (0 < fraction <= 1)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self._count == 0:
            return 0
        threshold = fraction * self._count
        running = 0
        for value in sorted(self._bins):
            running += self._bins[value]
            if running >= threshold:
                return value
        return max(self._bins)

    def items(self) -> List[Tuple[int, int]]:
        """Sorted (value, count) pairs."""
        return sorted(self._bins.items())

    def reset(self) -> None:
        """Clear all bins."""
        self._bins.clear()
        self._count = 0
        self._total = 0


class StatGroup:
    """A named collection of counters/ratios/histograms.

    Components create one group each; groups nest by name prefix only (flat
    storage keeps rendering trivial).
    """

    __slots__ = ("name", "_stats")

    def __init__(self, name: str):
        self.name = name
        self._stats: Dict[str, object] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        """Create (or fetch) a counter."""
        return self._get_or_create(name, Counter, description)

    def ratio(self, name: str, description: str = "") -> RatioStat:
        """Create (or fetch) a ratio stat."""
        return self._get_or_create(name, RatioStat, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        """Create (or fetch) a histogram."""
        return self._get_or_create(name, Histogram, description)

    def _get_or_create(self, name: str, factory, description: str):
        existing = self._stats.get(name)
        if existing is not None:
            if not isinstance(existing, factory):
                raise TypeError(
                    "stat %s already registered with a different type" % name
                )
            return existing
        stat = factory(name, description)
        self._stats[name] = stat
        return stat

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(sorted(self._stats.items()))

    def __getitem__(self, name: str):
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def reset(self) -> None:
        """Reset every stat in the group."""
        for stat in self._stats.values():
            stat.reset()  # type: ignore[attr-defined]

    def as_dict(self) -> Dict[str, float]:
        """Flatten to name -> scalar (counters: value; ratios: ratio; histos: mean)."""
        flat: Dict[str, float] = {}
        for name, stat in self:
            if isinstance(stat, Counter):
                flat[name] = float(stat.value)
            elif isinstance(stat, RatioStat):
                flat[name] = stat.ratio
            elif isinstance(stat, Histogram):
                flat[name] = stat.mean
        return flat
