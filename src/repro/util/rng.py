"""Deterministic random number generation.

Every stochastic component in the reproduction (trace generation, Monte-Carlo
fault injection, mixed-workload selection) draws from a ``DeterministicRng``
seeded through ``derive_seed`` so that runs are bit-reproducible across
machines and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

try:  # numpy is optional at the API level; vectorised callers gate on it.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

_T = TypeVar("_T")


def mt_unit_floats(words):
    """Sliding-pair unit floats over a raw Mersenne-Twister word stream.

    ``result[i]`` is exactly the float ``random.Random.random()`` would
    produce from consecutive 32-bit words ``words[i], words[i+1]``:
    ``((w0 >> 5) * 2**26 + (w1 >> 6)) / 2**53``. Computing every sliding
    pair (length ``len(words) - 1``) lets a decoder that interleaves
    float draws with single-word draws look up the float at any offset.
    """
    high = (words >> 5).astype(_np.float64)
    low = (words >> 6).astype(_np.float64)
    return (high[:-1] * 67108864.0 + low[1:]) / 9007199254740992.0


def derive_seed(*components: object) -> int:
    """Derive a stable 64-bit seed from arbitrary printable components.

    Uses SHA-256 over the ``repr`` of each component, so the same logical
    inputs always produce the same seed while distinct experiments get
    independent streams.
    """
    digest = hashlib.sha256()
    for component in components:
        digest.update(repr(component).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRng:
    """A seeded RNG wrapper with the handful of draws the simulators need.

    Wraps :class:`random.Random` (Mersenne twister), whose sequence is
    guaranteed stable across Python versions for the methods used here.
    """

    def __init__(self, seed: int):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, *components: object) -> "DeterministicRng":
        """Create an independent child stream labelled by ``components``."""
        return DeterministicRng(derive_seed(self._seed, *components))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return low + (high - low) * self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def randbits(self, width: int) -> int:
        """Draw ``width`` uniformly random bits."""
        return self._random.getrandbits(width)

    def randbytes(self, length: int) -> bytes:
        """Draw ``length`` uniformly random bytes."""
        return self._random.getrandbits(8 * length).to_bytes(length, "big") if length else b""

    def choice(self, options: Sequence[_T]) -> _T:
        """Pick one element uniformly."""
        return self._random.choice(options)

    def sample(self, options: Sequence[_T], count: int) -> List[_T]:
        """Sample ``count`` distinct elements."""
        return self._random.sample(options, count)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Draw from an exponential distribution with the given rate."""
        return self._random.expovariate(rate)

    def poisson(self, mean: float) -> int:
        """Draw from a Poisson distribution (Knuth/inversion hybrid).

        Used by the reference (non-vectorised) Monte-Carlo fault simulator;
        the fast path uses numpy instead.
        """
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if mean == 0:
            return 0
        if mean < 30:
            # Knuth's product-of-uniforms method.
            import math

            limit = math.exp(-mean)
            count = 0
            product = self._random.random()
            while product > limit:
                count += 1
                product *= self._random.random()
            return count
        # Normal approximation with continuity correction for large means.
        import math

        draw = self._random.gauss(mean, math.sqrt(mean))
        return max(0, int(round(draw)))

    def weighted_choice(self, options: Sequence[_T], weights: Iterable[float]) -> _T:
        """Pick one element with the given (unnormalised) weights."""
        return self._random.choices(list(options), weights=list(weights), k=1)[0]

    # -- raw word-stream access (vectorised consumers) -------------------

    def _transplant(self):
        """numpy MT19937 generator cloned from the current CPython state.

        ``random.Random`` and ``numpy.random.MT19937`` implement the same
        Mersenne Twister; copying the 624-word key plus position makes the
        numpy side emit exactly the 32-bit words the CPython side would,
        across twist boundaries.
        """
        state = self._random.getstate()
        mt = _np.random.MT19937()
        mt.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": _np.array(state[1][:624], dtype=_np.uint32),
                "pos": state[1][624],
            },
        }
        return mt

    def peek_raw_words(self, count: int):
        """The next ``count`` raw 32-bit words, without consuming them.

        Requires numpy (returns None when unavailable). Vectorised
        decoders peek a budget of words, decode, then commit the exact
        number consumed via :meth:`advance_raw_words`.
        """
        if _np is None:
            return None
        return self._transplant().random_raw(count)

    def begin_raw_block(self, budget: int):
        """Peek ``budget`` raw words plus a handle for exact commit.

        Returns ``(words, handle)`` where ``words`` are the next
        ``budget`` 32-bit outputs (uint64 array) and ``handle`` is the
        generator that produced them, positioned ``budget`` words ahead.
        Pass the handle to :meth:`commit_raw_block` to consume the exact
        prefix that was actually decoded. Requires numpy (returns
        ``(None, None)`` when unavailable).
        """
        if _np is None:
            return None, None
        mt = self._transplant()
        return mt.random_raw(budget), mt

    def commit_raw_block(self, handle, budget: int, consumed: int) -> None:
        """Consume ``consumed`` <= ``budget`` words of a peeked block.

        Rewinds the handle's end-of-block state by the surplus when the
        surplus stays within the current 624-word key block (always true
        for an exact-budget peek), avoiding a second pass over the word
        stream; otherwise falls back to :meth:`advance_raw_words`.
        """
        surplus = budget - consumed
        inner = handle.state["state"]
        position = int(inner["pos"]) - surplus
        if position >= 0:
            state = self._random.getstate()
            self._random.setstate(
                (
                    state[0],
                    tuple(int(word) for word in inner["key"]) + (position,),
                    state[2],
                )
            )
        else:
            self.advance_raw_words(consumed)

    def advance_raw_words(self, count: int) -> None:
        """Consume exactly ``count`` raw words from the underlying stream.

        Leaves this generator in the state the scalar path would reach
        after drawing the same words, so scalar and vectorised consumers
        interleave reproducibly.
        """
        if count <= 0:
            return
        state = self._random.getstate()
        mt = self._transplant()
        mt.random_raw(count)
        inner = mt.state["state"]
        self._random.setstate(
            (
                state[0],
                tuple(int(word) for word in inner["key"]) + (int(inner["pos"]),),
                state[2],
            )
        )
