"""Deterministic random number generation.

Every stochastic component in the reproduction (trace generation, Monte-Carlo
fault injection, mixed-workload selection) draws from a ``DeterministicRng``
seeded through ``derive_seed`` so that runs are bit-reproducible across
machines and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

_T = TypeVar("_T")


def derive_seed(*components: object) -> int:
    """Derive a stable 64-bit seed from arbitrary printable components.

    Uses SHA-256 over the ``repr`` of each component, so the same logical
    inputs always produce the same seed while distinct experiments get
    independent streams.
    """
    digest = hashlib.sha256()
    for component in components:
        digest.update(repr(component).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRng:
    """A seeded RNG wrapper with the handful of draws the simulators need.

    Wraps :class:`random.Random` (Mersenne twister), whose sequence is
    guaranteed stable across Python versions for the methods used here.
    """

    def __init__(self, seed: int):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, *components: object) -> "DeterministicRng":
        """Create an independent child stream labelled by ``components``."""
        return DeterministicRng(derive_seed(self._seed, *components))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return low + (high - low) * self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def randbits(self, width: int) -> int:
        """Draw ``width`` uniformly random bits."""
        return self._random.getrandbits(width)

    def randbytes(self, length: int) -> bytes:
        """Draw ``length`` uniformly random bytes."""
        return self._random.getrandbits(8 * length).to_bytes(length, "big") if length else b""

    def choice(self, options: Sequence[_T]) -> _T:
        """Pick one element uniformly."""
        return self._random.choice(options)

    def sample(self, options: Sequence[_T], count: int) -> List[_T]:
        """Sample ``count`` distinct elements."""
        return self._random.sample(options, count)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def expovariate(self, rate: float) -> float:
        """Draw from an exponential distribution with the given rate."""
        return self._random.expovariate(rate)

    def poisson(self, mean: float) -> int:
        """Draw from a Poisson distribution (Knuth/inversion hybrid).

        Used by the reference (non-vectorised) Monte-Carlo fault simulator;
        the fast path uses numpy instead.
        """
        if mean < 0:
            raise ValueError("mean must be non-negative")
        if mean == 0:
            return 0
        if mean < 30:
            # Knuth's product-of-uniforms method.
            import math

            limit = math.exp(-mean)
            count = 0
            product = self._random.random()
            while product > limit:
                count += 1
                product *= self._random.random()
            return count
        # Normal approximation with continuity correction for large means.
        import math

        draw = self._random.gauss(mean, math.sqrt(mean))
        return max(0, int(round(draw)))

    def weighted_choice(self, options: Sequence[_T], weights: Iterable[float]) -> _T:
        """Pick one element with the given (unnormalised) weights."""
        return self._random.choices(list(options), weights=list(weights), k=1)[0]
