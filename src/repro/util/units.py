"""Common unit constants and small numeric helpers."""

from __future__ import annotations

import math
from typing import Iterable

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Cacheline size used throughout the paper and this reproduction.
CACHELINE_BYTES = 64

#: Hours in a (365-day) year; FIT arithmetic in the reliability model.
HOURS_PER_YEAR = 24 * 365

#: Failures-In-Time are failures per billion device-hours.
FIT_HOURS = 1e9


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Integer log2 of an exact power of two; raises otherwise."""
    if not is_power_of_two(value):
        raise ValueError("%r is not a power of two" % (value,))
    return value.bit_length() - 1


def gmean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper reports gmean speedups)."""
    values = list(values)
    if not values:
        raise ValueError("gmean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
