"""Shared utilities: bit manipulation, deterministic RNG, units, statistics.

These helpers are deliberately dependency-free (stdlib only) so every other
subsystem can import them without cycles.
"""

from repro.util.bitops import (
    bit_count,
    bytes_xor,
    extract_bits,
    insert_bits,
    int_from_bytes_be,
    int_to_bytes_be,
    rotate_left,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.stats import Counter, Histogram, RatioStat, StatGroup
from repro.util.units import (
    GIB,
    KIB,
    MIB,
    CACHELINE_BYTES,
    HOURS_PER_YEAR,
    gmean,
    is_power_of_two,
    log2_int,
)

__all__ = [
    "bit_count",
    "bytes_xor",
    "extract_bits",
    "insert_bits",
    "int_from_bytes_be",
    "int_to_bytes_be",
    "rotate_left",
    "DeterministicRng",
    "derive_seed",
    "Counter",
    "Histogram",
    "RatioStat",
    "StatGroup",
    "KIB",
    "MIB",
    "GIB",
    "CACHELINE_BYTES",
    "HOURS_PER_YEAR",
    "gmean",
    "is_power_of_two",
    "log2_int",
]
