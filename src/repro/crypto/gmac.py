"""64-bit GMAC over (address, counter, payload) tuples.

The paper's designs authenticate each cacheline with a 64-bit AES-GCM-based
GMAC computed over the cacheline contents *and* its encryption counter and
address (Section II-A3): binding the address prevents relocation attacks and
binding the counter prevents replay of stale data with a stale MAC.

The tag is the first 8 bytes of ``GHASH_H(message) XOR AES_K(nonce)`` where
the nonce encodes the (address, counter) pair — the standard GMAC
construction truncated to 64 bits.
"""

from __future__ import annotations

from repro.crypto.aes import Aes128
from repro.crypto.ghash import GHash
from repro.util.bitops import bytes_xor

MAC_BYTES = 8
MAC_BITS = 64


class Gmac64:
    """Keyed 64-bit GMAC for cachelines and metadata lines."""

    def __init__(self, key: bytes):
        self._cipher = Aes128(key)
        hash_key = self._cipher.encrypt_block(b"\x00" * 16)
        self._ghash = GHash(hash_key)

    def tag(self, address: int, counter: int, payload: bytes) -> bytes:
        """Compute the 8-byte MAC binding payload to (address, counter)."""
        message = (
            (address & (1 << 64) - 1).to_bytes(8, "big")
            + (counter & (1 << 64) - 1).to_bytes(8, "big")
            + payload
        )
        digest = self._ghash.digest(message)
        nonce = (
            b"GMACnonc"  # domain separator
            + (address & 0xFFFFFFFF).to_bytes(4, "big")
            + (counter & 0xFFFFFFFF).to_bytes(4, "big")
        )
        mask = self._cipher.encrypt_block(nonce)
        return bytes_xor(digest, mask)[:MAC_BYTES]

    def verify(self, address: int, counter: int, payload: bytes, tag: bytes) -> bool:
        """Check a stored MAC; constant content, not constant time (simulation)."""
        return self.tag(address, counter, payload) == bytes(tag)
