"""Processor key material for the secure-memory engine.

The trusted computing base is the processor (Section II-A1); it holds two
secret keys: one for counter-mode encryption and one for MAC generation.
Keys never leave the package — consumers receive cipher/MAC objects.
"""

from __future__ import annotations

import hashlib

from repro.crypto.ctr import CounterModeCipher
from repro.crypto.gmac import Gmac64


class ProcessorKeys:
    """Derives independent encryption and MAC keys from one master secret."""

    def __init__(self, master_secret: bytes = b"synergy-reproduction-master"):
        if not master_secret:
            raise ValueError("master secret must be non-empty")
        self._encryption_key = self._derive(master_secret, b"encrypt")
        self._mac_key = self._derive(master_secret, b"mac")

    @staticmethod
    def _derive(master: bytes, label: bytes) -> bytes:
        return hashlib.sha256(label + b"\x00" + master).digest()[:16]

    def make_cipher(self) -> CounterModeCipher:
        """Counter-mode cipher keyed with the encryption key."""
        return CounterModeCipher(self._encryption_key)

    def make_mac(self) -> Gmac64:
        """64-bit GMAC keyed with the MAC key."""
        return Gmac64(self._mac_key)
