"""GF(2^128) arithmetic for GHASH (the universal hash inside AES-GCM).

GHASH uses the field GF(2^128) with the reduction polynomial
x^128 + x^7 + x^2 + x + 1, and — a notorious quirk of the GCM spec — a
*bit-reflected* representation: the most significant bit of the first byte is
the coefficient of x^0. We follow NIST SP 800-38D exactly so the GMAC built
on top matches hardware behaviour.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

_R = 0xE1000000000000000000000000000000  # reduction constant, reflected form


def block_to_int(block: bytes) -> int:
    """Interpret a 16-byte block as a GHASH field element."""
    if len(block) != 16:
        raise ValueError("GF(2^128) elements are 16 bytes")
    return int.from_bytes(block, "big")


def int_to_block(value: int) -> bytes:
    """Encode a field element back to its 16-byte representation."""
    return value.to_bytes(16, "big")


def gf128_mul(x: int, y: int) -> int:
    """Multiply two GHASH field elements (bit-reflected convention).

    Direct transcription of the shift-and-reduce algorithm from
    SP 800-38D §6.3: iterate over the bits of ``x`` from the MSB down,
    conditionally accumulating ``v`` (which tracks y * x^i) and reducing.
    """
    z = 0
    v = y
    for bit_index in range(127, -1, -1):
        if (x >> bit_index) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def gf128_pow(base: int, exponent: int) -> int:
    """Exponentiation by squaring in the GHASH field."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1 << 127  # the multiplicative identity in reflected form
    accumulator = base
    while exponent:
        if exponent & 1:
            result = gf128_mul(result, accumulator)
        accumulator = gf128_mul(accumulator, accumulator)
        exponent >>= 1
    return result


#: Multiplicative identity of the reflected GHASH field ("1" = x^0).
GF128_ONE = 1 << 127


class Gf128Multiplier:
    """Table-driven multiplication by a fixed field element ``h``.

    GHASH multiplies every message block by the same subkey ``H``; because
    the field map ``x -> x * H`` is linear over GF(2), it decomposes into
    16 per-byte-position lookup tables of 256 entries each. One multiply
    becomes 16 table reads + XORs instead of 128 shift-and-reduce steps —
    the standard software-GCM technique (e.g. Shoup's 8-bit tables).
    """

    def __init__(self, h: int):
        # basis[j] = h * x^j: repeated multiply-by-x, which in the
        # reflected representation is a right shift plus conditional _R.
        basis: List[int] = []
        value = h
        for _ in range(128):
            basis.append(value)
            value = (value >> 1) ^ _R if value & 1 else value >> 1
        # Int bit k of the multiplicand contributes basis[127 - k]; byte
        # position p (p=0 most significant) spans bits 120-8p .. 127-8p,
        # so in-byte bit i maps to exponent 7 + 8p - i.
        tables: List[Tuple[int, ...]] = []
        for position in range(16):
            table = [0] * 256
            for bit in range(8):
                table[1 << bit] = basis[7 + 8 * position - bit]
            for byte in range(1, 256):
                if byte & (byte - 1):
                    table[byte] = table[byte & (byte - 1)] ^ table[byte & -byte]
            tables.append(tuple(table))
        self._tables = tuple(tables)

    def mul(self, x: int) -> int:
        """``x * h`` in the reflected GHASH field."""
        tables = self._tables
        z = 0
        shift = 120
        for position in range(16):
            z ^= tables[position][(x >> shift) & 0xFF]
            shift -= 8
        return z


@lru_cache(maxsize=64)
def multiplier_for(h: int) -> Gf128Multiplier:
    """Per-subkey multiplier cache: tables are built once per key."""
    return Gf128Multiplier(h)
