"""GF(2^128) arithmetic for GHASH (the universal hash inside AES-GCM).

GHASH uses the field GF(2^128) with the reduction polynomial
x^128 + x^7 + x^2 + x + 1, and — a notorious quirk of the GCM spec — a
*bit-reflected* representation: the most significant bit of the first byte is
the coefficient of x^0. We follow NIST SP 800-38D exactly so the GMAC built
on top matches hardware behaviour.
"""

from __future__ import annotations

_R = 0xE1000000000000000000000000000000  # reduction constant, reflected form


def block_to_int(block: bytes) -> int:
    """Interpret a 16-byte block as a GHASH field element."""
    if len(block) != 16:
        raise ValueError("GF(2^128) elements are 16 bytes")
    return int.from_bytes(block, "big")


def int_to_block(value: int) -> bytes:
    """Encode a field element back to its 16-byte representation."""
    return value.to_bytes(16, "big")


def gf128_mul(x: int, y: int) -> int:
    """Multiply two GHASH field elements (bit-reflected convention).

    Direct transcription of the shift-and-reduce algorithm from
    SP 800-38D §6.3: iterate over the bits of ``x`` from the MSB down,
    conditionally accumulating ``v`` (which tracks y * x^i) and reducing.
    """
    z = 0
    v = y
    for bit_index in range(127, -1, -1):
        if (x >> bit_index) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def gf128_pow(base: int, exponent: int) -> int:
    """Exponentiation by squaring in the GHASH field."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1 << 127  # the multiplicative identity in reflected form
    accumulator = base
    while exponent:
        if exponent & 1:
            result = gf128_mul(result, accumulator)
        accumulator = gf128_mul(accumulator, accumulator)
        exponent >>= 1
    return result


#: Multiplicative identity of the reflected GHASH field ("1" = x^0).
GF128_ONE = 1 << 127
