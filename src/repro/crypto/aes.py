"""AES-128 block cipher, implemented from the FIPS-197 specification.

Only encryption is required by the secure-memory designs (counter mode uses
the forward cipher for both directions, and GMAC only ever encrypts), but the
inverse cipher is provided for completeness and round-trip testing.

The implementation favours clarity over raw speed: tables are derived at
import time from first principles (GF(2^8) arithmetic) rather than pasted as
magic constants, which both documents the math and keeps the file honest.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

_BLOCK_BYTES = 16
_ROUNDS = 10
_KEY_BYTES = 16


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(left: int, right: int) -> int:
    """Multiply two GF(2^8) elements (AES polynomial)."""
    product = 0
    while right:
        if right & 1:
            product ^= left
        left = _xtime(left)
        right >>= 1
    return product


def _build_sbox() -> List[int]:
    """Derive the AES S-box: multiplicative inverse then affine transform."""
    # Build inverses via exponentiation tables on the generator 3.
    exp = [0] * 256
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value = _gf_mul(value, 3)
    exp[255] = exp[0]

    def inverse(element: int) -> int:
        if element == 0:
            return 0
        return exp[255 - log[element]]

    sbox = [0] * 256
    for element in range(256):
        inv = inverse(element)
        transformed = 0
        for bit in range(8):
            parity = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        sbox[element] = transformed
    return sbox


_SBOX = _build_sbox()
_INV_SBOX = [0] * 256
for _index, _substituted in enumerate(_SBOX):
    _INV_SBOX[_substituted] = _index

_RCON = [0x01]
while len(_RCON) < 10:
    _RCON.append(_xtime(_RCON[-1]))


def _expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != _KEY_BYTES:
        raise ValueError("AES-128 requires a 16-byte key")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for index in range(4, 4 * (_ROUNDS + 1)):
        temp = list(words[index - 1])
        if index % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[index // 4 - 1]
        words.append([a ^ b for a, b in zip(words[index - 4], temp)])
    round_keys = []
    for round_index in range(_ROUNDS + 1):
        chunk = words[4 * round_index : 4 * round_index + 4]
        round_keys.append([byte for word in chunk for byte in word])
    return round_keys


@lru_cache(maxsize=256)
def _expanded_key(key: bytes) -> Tuple[Tuple[int, ...], ...]:
    """Memoised key schedule.

    The engine builds fresh cipher/MAC objects per design x workload cell
    (and per pool worker), always from the same handful of processor keys
    — expanding each key once per process removes that recurring cost.
    """
    return tuple(tuple(rk) for rk in _expand_key(key))


def _sub_bytes(state: List[int]) -> None:
    for index in range(16):
        state[index] = _SBOX[state[index]]


def _inv_sub_bytes(state: List[int]) -> None:
    for index in range(16):
        state[index] = _INV_SBOX[state[index]]


# State layout: state[4*col + row] per FIPS-197 column-major convention when
# loaded directly from bytes (byte i -> row i%4, column i//4).
_SHIFT_MAP = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT_MAP = [0] * 16
for _dst, _src in enumerate(_SHIFT_MAP):
    _INV_SHIFT_MAP[_src] = _dst


def _shift_rows(state: List[int]) -> List[int]:
    return [state[_SHIFT_MAP[i]] for i in range(16)]


def _inv_shift_rows(state: List[int]) -> List[int]:
    return [state[_INV_SHIFT_MAP[i]] for i in range(16)]


def _mix_single_column(column: List[int]) -> List[int]:
    c0, c1, c2, c3 = column
    return [
        _gf_mul(c0, 2) ^ _gf_mul(c1, 3) ^ c2 ^ c3,
        c0 ^ _gf_mul(c1, 2) ^ _gf_mul(c2, 3) ^ c3,
        c0 ^ c1 ^ _gf_mul(c2, 2) ^ _gf_mul(c3, 3),
        _gf_mul(c0, 3) ^ c1 ^ c2 ^ _gf_mul(c3, 2),
    ]


def _inv_mix_single_column(column: List[int]) -> List[int]:
    c0, c1, c2, c3 = column
    return [
        _gf_mul(c0, 14) ^ _gf_mul(c1, 11) ^ _gf_mul(c2, 13) ^ _gf_mul(c3, 9),
        _gf_mul(c0, 9) ^ _gf_mul(c1, 14) ^ _gf_mul(c2, 11) ^ _gf_mul(c3, 13),
        _gf_mul(c0, 13) ^ _gf_mul(c1, 9) ^ _gf_mul(c2, 14) ^ _gf_mul(c3, 11),
        _gf_mul(c0, 11) ^ _gf_mul(c1, 13) ^ _gf_mul(c2, 9) ^ _gf_mul(c3, 14),
    ]


def _mix_columns(state: List[int], inverse: bool = False) -> List[int]:
    mixer = _inv_mix_single_column if inverse else _mix_single_column
    output = []
    for column in range(4):
        output.extend(mixer(state[4 * column : 4 * column + 4]))
    return output


class Aes128:
    """AES-128 with a fixed key, exposing single-block encrypt/decrypt.

    The block cipher is the workhorse behind both counter-mode encryption
    (one-time-pad generation) and GMAC (hash-key and tag-mask derivation).
    """

    block_bytes = _BLOCK_BYTES

    def __init__(self, key: bytes):
        self._round_keys = _expanded_key(bytes(key))
        self._cache: dict = {}

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(plaintext) != _BLOCK_BYTES:
            raise ValueError("AES block must be 16 bytes")
        cached = self._cache.get(plaintext)
        if cached is not None:
            return cached
        state = list(plaintext)
        keys = self._round_keys
        state = [s ^ k for s, k in zip(state, keys[0])]
        for round_index in range(1, _ROUNDS):
            _sub_bytes(state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            state = [s ^ k for s, k in zip(state, keys[round_index])]
        _sub_bytes(state)
        state = _shift_rows(state)
        state = [s ^ k for s, k in zip(state, keys[_ROUNDS])]
        result = bytes(state)
        if len(self._cache) < 65536:
            self._cache[bytes(plaintext)] = result
        return result

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block (inverse cipher)."""
        if len(ciphertext) != _BLOCK_BYTES:
            raise ValueError("AES block must be 16 bytes")
        state = list(ciphertext)
        keys = self._round_keys
        state = [s ^ k for s, k in zip(state, keys[_ROUNDS])]
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        for round_index in range(_ROUNDS - 1, 0, -1):
            state = [s ^ k for s, k in zip(state, keys[round_index])]
            state = _mix_columns(state, inverse=True)
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
        state = [s ^ k for s, k in zip(state, keys[0])]
        return bytes(state)
