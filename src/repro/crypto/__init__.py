"""Cryptographic substrate for the functional secure-memory plane.

Everything is implemented from scratch in pure Python:

* :mod:`repro.crypto.aes` — AES-128 block cipher (FIPS-197).
* :mod:`repro.crypto.gf128` — carry-less GF(2^128) multiplication (GHASH field).
* :mod:`repro.crypto.ghash` — the GHASH universal hash of AES-GCM.
* :mod:`repro.crypto.gmac` — 64-bit truncated GMAC as used by the paper.
* :mod:`repro.crypto.ctr` — counter-mode (OTP) encryption of cachelines.
* :mod:`repro.crypto.keys` — processor key material.

The performance simulators never call into this package (hardware crypto is
off the critical path in the paper's designs too); it exists to make the
error-detection/correction flows of Figs. 5 and 7 real and testable.
"""

from repro.crypto.aes import Aes128
from repro.crypto.ctr import CounterModeCipher
from repro.crypto.gmac import Gmac64
from repro.crypto.keys import ProcessorKeys

__all__ = ["Aes128", "CounterModeCipher", "Gmac64", "ProcessorKeys"]
