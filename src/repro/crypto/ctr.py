"""Counter-mode (one-time-pad) encryption of 64-byte cachelines.

Per Section II-A2 of the paper: the OTP for a line is AES_K over a seed built
from the line address and the per-line write counter; encryption and
decryption are the same XOR. Using the address in the seed makes pads unique
across lines; using the counter makes them unique across writes to the same
line (temporal variation).
"""

from __future__ import annotations

from repro.crypto.aes import Aes128
from repro.util.bitops import bytes_xor
from repro.util.units import CACHELINE_BYTES

_PAD_BLOCKS = CACHELINE_BYTES // 16


class CounterModeCipher:
    """Counter-mode cipher for 64-byte lines keyed by the processor key."""

    def __init__(self, key: bytes):
        self._cipher = Aes128(key)

    def one_time_pad(self, address: int, counter: int) -> bytes:
        """Generate the 64-byte OTP for (address, counter)."""
        pad = bytearray()
        for block_index in range(_PAD_BLOCKS):
            seed = (
                address.to_bytes(8, "big")
                + counter.to_bytes(7, "big")
                + bytes([block_index])
            )
            pad.extend(self._cipher.encrypt_block(seed))
        return bytes(pad)

    def encrypt(self, address: int, counter: int, plaintext: bytes) -> bytes:
        """Encrypt a 64-byte line."""
        if len(plaintext) != CACHELINE_BYTES:
            raise ValueError("cachelines are %d bytes" % CACHELINE_BYTES)
        return bytes_xor(plaintext, self.one_time_pad(address, counter))

    def decrypt(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        """Decrypt a 64-byte line (same XOR as encryption)."""
        return self.encrypt(address, counter, ciphertext)
