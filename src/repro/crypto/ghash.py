"""GHASH: the polynomial universal hash used by AES-GCM / GMAC.

GHASH_H(X) processes 16-byte blocks X_1..X_n as
``Y_i = (Y_{i-1} XOR X_i) * H`` in GF(2^128), returning Y_n. Combined with an
AES-encrypted nonce mask this yields GMAC, a Carter-Wegman style MAC — the
construction the paper assumes for its 64-bit data MACs.
"""

from __future__ import annotations

from repro.crypto.gf128 import block_to_int, int_to_block, multiplier_for


class GHash:
    """GHASH keyed by the 16-byte hash subkey ``H`` (AES_K(0^128)).

    Multiplication by the fixed subkey uses per-key precomputed tables
    (:func:`repro.crypto.gf128.multiplier_for`), built once per process
    for each distinct key and shared by every GHash/GMAC instance.
    """

    def __init__(self, hash_key: bytes):
        if len(hash_key) != 16:
            raise ValueError("GHASH subkey must be 16 bytes")
        self._h = block_to_int(hash_key)
        self._mul = multiplier_for(self._h).mul

    def digest(self, data: bytes) -> bytes:
        """Hash ``data`` (length-prefixed per GCM: appends a length block)."""
        y = 0
        mul = self._mul
        padded = data + b"\x00" * ((16 - len(data) % 16) % 16)
        for offset in range(0, len(padded), 16):
            block = block_to_int(padded[offset : offset + 16])
            y = mul(y ^ block)
        # GCM length block: 64-bit AAD bit length || 64-bit data bit length.
        # We treat the whole input as "AAD" (GMAC usage: no ciphertext).
        length_block = (len(data) * 8).to_bytes(8, "big") + (0).to_bytes(8, "big")
        y = mul(y ^ block_to_int(length_block))
        return int_to_block(y)
