"""Parallel experiment execution: process-pool fan-out + run cache.

The three pieces every fan-out point composes:

* :func:`parallel_map` — deterministic (submission-ordered) process-pool
  map over grid cells / Monte-Carlo shards, dispatched through the shared
  persistent warm pool (:mod:`repro.parallel.pool`);
* :class:`RunCache` / :func:`cache_key` — content-addressed on-disk reuse
  of cell results across figures and sessions;
* :data:`EXECUTION_STATS` — per-cell wall times, cache hit/miss counters
  and worker utilisation, rendered by ``harness.report``.

Policy (worker count, cache on/off, cache location) lives in one
process-global :class:`ExecutionContext` steered by the CLI flags
``--jobs`` / ``--no-cache`` and the ``REPRO_JOBS`` / ``REPRO_CACHE`` /
``REPRO_CACHE_DIR`` environment variables.
"""

from repro.parallel.context import (
    ExecutionContext,
    applied,
    configure,
    default_jobs,
    get_context,
    overridden,
    resolve_jobs,
)
from repro.parallel.executor import parallel_map
from repro.parallel.instrument import EXECUTION_STATS, ExecutionStats, current_stats
from repro.parallel.pool import (
    PersistentPool,
    active_pool,
    get_pool,
    shutdown_pool,
)
from repro.parallel.runcache import (
    RunCache,
    cache_key,
    code_fingerprint,
    cost_key,
    default_cache_dir,
    resolve_cache,
)

__all__ = [
    "ExecutionContext",
    "ExecutionStats",
    "EXECUTION_STATS",
    "PersistentPool",
    "RunCache",
    "active_pool",
    "applied",
    "cache_key",
    "code_fingerprint",
    "configure",
    "cost_key",
    "current_stats",
    "default_cache_dir",
    "default_jobs",
    "get_context",
    "get_pool",
    "overridden",
    "parallel_map",
    "resolve_cache",
    "resolve_jobs",
    "shutdown_pool",
]
