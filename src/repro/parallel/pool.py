"""The persistent warm worker pool shared by every ``parallel_map`` call.

Before PR 10 each fan-out spawned and tore down its own
``ProcessPoolExecutor``: a whole-grid run (16 figure experiments, one or
more ``run_suite`` calls each) paid worker spawn plus a full module
re-import per call, and every batch started with cold per-process memos.
This module owns one long-lived pool instead:

* **lazy spawn** — nothing is created until the first ``jobs > 1`` map;
  serial runs never pay for a pool;
* **reuse** — subsequent maps dispatch into the same warm workers, whose
  imported module graph and context memos (trace/warm-state) survive
  across batches;
* **warm-worker initializer** — each worker preloads the simulation stack
  and the code fingerprint at spawn, off any map's critical path;
* **grow-by-respawn** — a later call asking for more workers than the
  pool has replaces it (never shrink: idle workers are free);
* **fork safety** — a forked child (the service's ``--worker-processes``
  mode) inherits the parent's handle but not its worker processes; an
  ``os.register_at_fork`` hook gives the child a fresh lock and a ``None``
  pool so it can never join — or double-drive — workers it does not own;
* **explicit shutdown** — :func:`shutdown_pool` (also registered with
  ``atexit``) joins the workers; tests and benchmarks call it between
  legs so spawn costs are attributed where they happen.

``ExecutionStats`` observes the lifecycle: ``exec.pool_spawns`` /
``exec.pool_spawn_seconds`` at spawn, ``exec.pool_maps`` per dispatched
batch — the reuse ratio ``pool_maps / pool_spawns`` is what
``tools/bench_plan.py`` reports as pool-reuse savings.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, Optional, TypeVar

from repro.parallel.instrument import ExecutionStats, current_stats

_T = TypeVar("_T")
_R = TypeVar("_R")


def _warm_worker() -> None:
    """Pool initializer: preload the simulation stack in each worker.

    Importing the world once at spawn moves the import cost off the first
    batch's critical path, and computing the code fingerprint here (it
    hashes every ``repro`` source file on first call) warms the worker's
    cache-key path. Runs in the *worker* process; keep it import-only.
    """
    import repro.reliability.montecarlo  # noqa: F401
    import repro.sim.runner  # noqa: F401

    from repro.parallel.runcache import code_fingerprint

    code_fingerprint()


class PersistentPool:
    """One long-lived ``ProcessPoolExecutor`` plus its identity metadata."""

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        #: Spawning pid: a forked child must never touch these workers.
        self.pid = os.getpid()
        started = time.perf_counter()
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_warm_worker
        )
        self.spawn_seconds = time.perf_counter() - started

    @property
    def broken(self) -> bool:
        """True once a worker died mid-batch; the pool must be respawned."""
        return bool(getattr(self._executor, "_broken", False))

    def map(
        self,
        fn: Callable[[_T], _R],
        tasks: Iterable[_T],
        chunksize: int = 1,
    ) -> Iterator[_R]:
        """Submission-ordered map (the ``Executor.map`` contract).

        ``chunksize=1`` keeps scheduling dynamic: each worker pulls the
        next task as it frees up, so a longest-first submission order
        (the planner's LPT schedule) becomes a balanced makespan.
        """
        return self._executor.map(fn, tasks, chunksize=chunksize)

    def shutdown(self) -> None:
        """Join the workers (idempotent)."""
        self._executor.shutdown(wait=True, cancel_futures=True)


#: The one shared pool; ``None`` until the first ``jobs > 1`` dispatch.
#: Deliberately process-wide (that is the point: every fan-out on every
#: thread reuses the same warm workers); all transitions happen under
#: ``_POOL_LOCK`` and the fork hook below resets both in children.
_POOL: Optional[PersistentPool] = None  # lint-ok: C401 process-wide by design; guarded by _POOL_LOCK, reset in forked children
_POOL_LOCK = threading.Lock()


def active_pool() -> Optional[PersistentPool]:
    """The live pool, or ``None`` — never spawns (tests, reporting)."""
    pool = _POOL
    if pool is not None and pool.pid != os.getpid():
        return None
    return pool


def get_pool(
    workers: int, stats: Optional[ExecutionStats] = None
) -> PersistentPool:
    """The shared pool, spawned lazily and grown by respawn.

    Returns a pool with *at least* ``workers`` workers: an existing
    larger pool is reused as-is, a smaller one is joined and replaced.
    A handle inherited across ``fork`` (stale pid) or broken by a worker
    death is abandoned/replaced, never joined. A spawn is recorded on
    ``stats`` (the dispatching map's collector) or the context's.
    """
    global _POOL
    workers = max(1, int(workers))
    with _POOL_LOCK:
        pool = _POOL
        if pool is not None and pool.pid != os.getpid():
            # Inherited across fork: the workers belong to the parent.
            pool = _POOL = None  # lint-ok: C402 under _POOL_LOCK; abandons a handle this process does not own
        if pool is not None and pool.broken:
            pool.shutdown()
            pool = _POOL = None  # lint-ok: C402 under _POOL_LOCK; replaces a dead pool
        if pool is not None and pool.workers < workers:
            pool.shutdown()
            pool = None
        if pool is None:
            pool = PersistentPool(workers)
            _POOL = pool  # lint-ok: C402 under _POOL_LOCK; the lazy-spawn rebind
            collector = stats if stats is not None else current_stats()
            collector.record_pool_spawn(pool.spawn_seconds)
        return pool


def shutdown_pool() -> int:
    """Shut the shared pool down (idempotent); returns workers released.

    Registered with ``atexit``; also called explicitly by benchmarks
    between legs and by the service bridge on stop.
    """
    global _POOL
    with _POOL_LOCK:
        pool = _POOL
        _POOL = None  # lint-ok: C402 under _POOL_LOCK; the shutdown rebind
    if pool is None:
        return 0
    if pool.pid == os.getpid():
        pool.shutdown()
    return pool.workers


def _reset_after_fork() -> None:
    """Give a forked child a fresh lock and no pool.

    The child's copy of ``_POOL_LOCK`` may be held by a thread that does
    not exist in the child, and the child's ``_POOL`` points at worker
    processes it does not own — both are unconditionally replaced.
    """
    global _POOL, _POOL_LOCK
    _POOL_LOCK = threading.Lock()  # lint-ok: C402 fork bookkeeping; runs single-threaded in the fresh child
    _POOL = None  # lint-ok: C402 fork bookkeeping; runs single-threaded in the fresh child


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)

atexit.register(shutdown_pool)
