"""Process-wide execution policy: worker count and run-cache settings.

Every fan-out point (``sim.runner.run_suite``, the Monte-Carlo shard loop)
resolves its ``jobs``/``cache`` arguments against one process-global
:class:`ExecutionContext`, so the CLI flags (``--jobs``, ``--no-cache``)
and environment overrides (``REPRO_JOBS``, ``REPRO_CACHE``,
``REPRO_CACHE_DIR``) steer every experiment without threading parameters
through each figure function.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, replace
from typing import Iterator, Optional


@dataclass(frozen=True)
class ExecutionContext:
    """How experiment cells execute in this process."""

    jobs: int = 1  #: worker processes for grid/shard fan-out
    cache_enabled: bool = True  #: consult/populate the on-disk run cache
    cache_dir: Optional[str] = None  #: None -> default location


def default_jobs() -> int:
    """All available CPUs (the ``--jobs $(nproc)`` value)."""
    return os.cpu_count() or 1


def _from_env() -> ExecutionContext:
    jobs = os.environ.get("REPRO_JOBS")
    cache = os.environ.get("REPRO_CACHE", "1")
    return ExecutionContext(
        jobs=max(1, int(jobs)) if jobs else 1,
        cache_enabled=cache.lower() not in ("0", "false", "no", "off"),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
    )


_CONTEXT: Optional[ExecutionContext] = None


def get_context() -> ExecutionContext:
    """The active context (built from the environment on first use)."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = _from_env()
    return _CONTEXT


def configure(**changes: object) -> ExecutionContext:
    """Permanently change fields of the active context (CLI entry points)."""
    global _CONTEXT
    _CONTEXT = replace(get_context(), **changes)
    return _CONTEXT


@contextlib.contextmanager
def overridden(**changes: object) -> Iterator[ExecutionContext]:
    """Temporarily override context fields (tests, benchmarks, helpers)."""
    global _CONTEXT
    saved = get_context()
    _CONTEXT = replace(saved, **changes)
    try:
        yield _CONTEXT
    finally:
        _CONTEXT = saved


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """An explicit ``jobs`` argument wins; otherwise the context's."""
    if jobs is None:
        return get_context().jobs
    return max(1, int(jobs))
