"""Process-wide execution policy: worker count and run-cache settings.

Every fan-out point (``sim.runner.run_suite``, the Monte-Carlo shard loop)
resolves its ``jobs``/``cache`` arguments against one process-global
:class:`ExecutionContext`, so the CLI flags (``--jobs``, ``--no-cache``)
and environment overrides (``REPRO_JOBS``, ``REPRO_CACHE``,
``REPRO_CACHE_DIR``, ``REPRO_POOL``) steer every experiment without
threading parameters through each figure function.
"""

from __future__ import annotations

import contextlib
import os
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Iterator, Optional


@dataclass(frozen=True)
class ExecutionContext:
    """How experiment cells execute in this process."""

    jobs: int = 1  #: worker processes for grid/shard fan-out
    cache_enabled: bool = True  #: consult/populate the on-disk run cache
    cache_dir: Optional[str] = None  #: None -> default location
    #: "persistent" routes jobs>1 maps through the shared warm pool
    #: (repro.parallel.pool); "ephemeral" keeps the legacy spawn-per-call
    #: executor — the benchmark baseline and an escape hatch.
    pool_policy: str = "persistent"


def default_jobs() -> int:
    """All available CPUs (the ``--jobs $(nproc)`` value)."""
    return os.cpu_count() or 1


def _pool_policy_from_env(raw: Optional[str]) -> str:
    if raw and raw.lower() in ("ephemeral", "0", "false", "no", "off"):
        return "ephemeral"
    return "persistent"


def _from_env() -> ExecutionContext:
    jobs = os.environ.get("REPRO_JOBS")
    cache = os.environ.get("REPRO_CACHE", "1")
    return ExecutionContext(
        jobs=max(1, int(jobs)) if jobs else 1,
        cache_enabled=cache.lower() not in ("0", "false", "no", "off"),
        cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        pool_policy=_pool_policy_from_env(os.environ.get("REPRO_POOL")),
    )


_CONTEXT: Optional[ExecutionContext] = None

#: Scoped override (tests, benchmarks, run_spec, the service's workers).
#: A ContextVar rather than a rebind of the global: overrides are visible
#: only to the thread (or asyncio task) that entered them, so concurrent
#: jobs with different jobs/cache settings cannot trample each other.
_OVERRIDE: "ContextVar[Optional[ExecutionContext]]" = ContextVar(
    "repro_exec_override", default=None
)


def get_context() -> ExecutionContext:
    """The active context: the innermost scoped override if any, else the
    process baseline (built from the environment on first use)."""
    override = _OVERRIDE.get()
    if override is not None:
        return override
    global _CONTEXT
    if _CONTEXT is None:  # lint-ok: C405 idempotent lazy init from the env
        _CONTEXT = _from_env()  # lint-ok: C402 process baseline, env-derived
    return _CONTEXT


def configure(**changes: object) -> ExecutionContext:
    """Permanently change fields of the process baseline (CLI entry points).

    Deliberately ignores any scoped override in effect: `configure` is for
    process-wide policy, `overridden`/`applied` for scoped policy.
    """
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = _from_env()  # lint-ok: C402 process-wide policy by design
    _CONTEXT = replace(_CONTEXT, **changes)  # lint-ok: C402 CLI-owned baseline
    return _CONTEXT


@contextlib.contextmanager
def overridden(**changes: object) -> Iterator[ExecutionContext]:
    """Temporarily override context fields (tests, benchmarks, helpers).

    Thread- and task-scoped: the override is invisible outside the entering
    thread, and restoration is exception-safe and re-entrant.
    """
    token = _OVERRIDE.set(replace(get_context(), **changes))
    try:
        yield get_context()
    finally:
        _OVERRIDE.reset(token)


@contextlib.contextmanager
def applied(context: ExecutionContext) -> Iterator[ExecutionContext]:
    """Make a previously captured ``ExecutionContext`` the active one.

    The service captures ``get_context()`` on the thread that constructed
    it (where any test/CLI override *is* visible) and re-applies it on each
    worker thread, which — overrides being thread-scoped — would otherwise
    see only the process baseline.
    """
    token = _OVERRIDE.set(context)
    try:
        yield context
    finally:
        _OVERRIDE.reset(token)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """An explicit ``jobs`` argument wins; otherwise the context's."""
    if jobs is None:
        return get_context().jobs
    return max(1, int(jobs))
