"""Deterministic fan-out of experiment cells over a process pool.

``parallel_map`` is the one primitive every grid/shard loop uses: it runs
``fn`` over ``items`` with ``jobs`` worker processes and returns results in
*submission* order, never completion order — so a parallel run merges into
exactly the table a serial run would build. Determinism of the values
themselves is the callee's job (every cell derives its RNG streams from
explicit seeds, not shared state).

``jobs > 1`` maps dispatch through the shared persistent pool
(``repro.parallel.pool``) so consecutive fan-outs reuse warm workers;
the context's ``pool_policy="ephemeral"`` restores the legacy
spawn-per-call executor (the benchmark baseline). Either way the merge
contract is identical — ``Executor.map`` yields in submission order.

``fn`` must be a module-level function and each item picklable (the
standard ``ProcessPoolExecutor`` contract).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.parallel.context import get_context
from repro.parallel.instrument import ExecutionStats, current_stats

_T = TypeVar("_T")
_R = TypeVar("_R")


def _timed_call(task: Tuple[Callable[[_T], _R], _T]) -> Tuple[_R, float]:
    """Worker-side wrapper: run one cell and report its wall time."""
    fn, item = task
    started = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - started


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: int = 1,
    labels: Optional[Sequence[str]] = None,
    stats: Optional[ExecutionStats] = None,
    progress: Optional[Callable[[int, str, _R, float], None]] = None,
) -> List[_R]:
    """Map ``fn`` over ``items`` with ``jobs`` processes, submission-ordered.

    ``jobs <= 1`` (or a single item) runs inline in this process — the
    serial path and the parallel path execute the identical per-item code,
    which is what makes the golden determinism tests meaningful.

    ``progress``, when given, is called in the *parent* process as each
    item's result lands — ``progress(index, label, result, seconds)`` — in
    submission order regardless of completion order, so progress feeds are
    deterministic at any worker count. A ``progress`` exception aborts the
    map (the streaming-cancellation hook).
    """
    items = list(items)
    if labels is None:
        labels = [str(index) for index in range(len(items))]
    stats = stats if stats is not None else current_stats()
    workers = min(max(1, int(jobs)), len(items)) if items else 1

    span_started = time.perf_counter()
    outputs: List[_R] = []
    try:
        if workers <= 1:
            for index, (item, label) in enumerate(zip(items, labels)):
                result, elapsed = _timed_call((fn, item))
                stats.record_cell(label, elapsed)
                outputs.append(result)
                if progress is not None:
                    progress(index, label, result, elapsed)
        else:
            tasks = [(fn, item) for item in items]

            def drain(batches) -> None:
                # Executor.map yields in submission order regardless of which
                # worker finishes first: the deterministic-merge guarantee.
                for index, (label, (result, elapsed)) in enumerate(
                    zip(labels, batches)
                ):
                    stats.record_cell(label, elapsed)
                    outputs.append(result)
                    if progress is not None:
                        progress(index, label, result, elapsed)

            if get_context().pool_policy == "ephemeral":
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(max_workers=workers) as pool:
                    drain(pool.map(_timed_call, tasks))
            else:
                from repro.parallel.pool import get_pool

                pool = get_pool(workers, stats=stats)
                stats.record_pool_map()
                drain(pool.map(_timed_call, tasks))
    finally:
        if items:
            stats.record_map(workers, time.perf_counter() - span_started)
    return outputs
