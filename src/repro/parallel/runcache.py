"""Content-addressed on-disk cache of experiment cell results.

Cells recur across figures — the SGX_O baseline appears in Figs. 8, 9, 10,
13 and 14, and the reliability curves of Fig. 11 recur in the scrub sweep —
so each distinct cell is computed once and reused. A cell's identity is the
SHA-256 of everything that determines its output:

* the cell kind (``run_workload`` / ``montecarlo``);
* every field of its inputs, canonicalised recursively (dataclasses, enums,
  dicts, sequences, primitives — ``repr`` for scalars, so floats keep full
  precision);
* a *code-version fingerprint*: the hash of every ``repro`` source file.
  Any change to the simulator invalidates the whole cache, which is the
  only safe rule for a model whose outputs depend on all of its code.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json``, written
atomically; the default root is ``~/.cache/synergy-repro`` (override with
``REPRO_CACHE_DIR`` or ``--no-cache`` / ``REPRO_CACHE=0`` to disable).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from typing import Optional, Union

from repro.parallel.context import get_context
from repro.parallel.instrument import ExecutionStats, current_stats

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of all ``repro`` package sources (computed once per process)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:  # lint-ok: C405 idempotent: every racer computes
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, _dirs, files in sorted(os.walk(package_root)):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                digest.update(os.path.relpath(path, package_root).encode())
                digest.update(b"\x00")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\x00")
        _FINGERPRINT = digest.hexdigest()[:16]  # lint-ok: C402 pure-function cache
    return _FINGERPRINT


def _canonical(value: object) -> object:
    """JSON-able canonical form of any experiment parameter."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "name": value.name}
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    # Floats and anything exotic: repr keeps full precision and type info.
    return repr(value)


def cache_key(kind: str, **components: object) -> str:
    """Content address of one cell: kind + canonical inputs + code version."""
    payload = {
        "kind": kind,
        "fingerprint": code_fingerprint(),
        "components": _canonical(components),
    }
    serialised = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(serialised.encode("utf-8")).hexdigest()


def cost_key(kind: str, **components: object) -> str:
    """Fingerprint-*free* content address: the cost model's cell identity.

    Identical to :func:`cache_key` minus the code version. Cache entries
    die with every source edit (the only safe rule for results), but a
    cell's *wall time* is a property of its shape, not of the exact code
    revision — so recorded timings are keyed without the fingerprint and
    keep seeding the planner's LPT schedule across code changes.
    """
    payload = {"kind": kind, "components": _canonical(components)}
    serialised = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(serialised.encode("utf-8")).hexdigest()


def default_cache_dir() -> str:
    """Cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/synergy-repro``."""
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "synergy-repro"
    )


class RunCache:
    """Directory of content-addressed JSON cell results."""

    def __init__(
        self,
        root: Optional[str] = None,
        stats: Optional[ExecutionStats] = None,
    ):
        self.root = root or default_cache_dir()
        # With no explicit collector, resolve per call: one RunCache may be
        # shared across service worker scopes with per-scope stats.
        self._pinned_stats = stats

    @property
    def _stats(self) -> ExecutionStats:
        return (
            self._pinned_stats
            if self._pinned_stats is not None
            else current_stats()
        )

    def path_for(self, key: str) -> str:
        """On-disk location of one entry (two-level fan-out by prefix)."""
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str, label: str = "") -> Optional[object]:
        """The cached payload for ``key``, or ``None`` (counts hit/miss).

        A *corrupt* entry — the file exists but does not parse, or parses
        to something without a ``payload`` — is treated as a miss, counted
        separately (``exec.cache_corrupt``), and deleted so a writer killed
        mid-flight (or a bad disk) can never poison later runs. Hits are
        touched (mtime) so size-budgeted eviction is LRU, not FIFO.
        """
        path = self.path_for(key)
        try:
            with open(path, "r") as handle:
                raw = handle.read()
        except OSError:
            self._stats.record_cache_miss(label)
            return None
        try:
            entry = json.loads(raw)
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError):
            self._stats.record_cache_corrupt(label)
            self._stats.record_cache_miss(label)
            try:
                os.unlink(path)
            except OSError:
                pass  # lost a race with another process's cleanup
            return None
        self._stats.record_cache_hit(label)
        try:
            os.utime(path, None)
        except OSError:
            pass  # entry may have been evicted concurrently; hit still valid
        return payload

    def has(self, key: str) -> bool:
        """Whether an entry exists — a *silent* probe.

        The planner scans the whole unique-cell list before dispatch;
        counting those probes as hits/misses would double every counter
        the assembly phase later records, so existence checks touch
        neither the stats nor the entry's mtime.
        """
        return os.path.isfile(self.path_for(key))

    def put(self, key: str, payload: object, meta: Optional[dict] = None) -> None:
        """Store one cell result (atomic rename; concurrent-writer safe).

        ``meta`` rides alongside the payload (e.g. ``{"seconds": ...}``,
        the recorded wall time run_suite attaches) without perturbing it:
        ``get`` returns the payload only, so metadata can never leak into
        figure outputs.
        """
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"key": key, "fingerprint": code_fingerprint(), "payload": payload}
        if meta:
            entry["meta"] = meta
        descriptor, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(entry, handle)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def meta(self, key: str) -> Optional[dict]:
        """The entry's stored metadata, if any (silent, like :meth:`has`)."""
        try:
            with open(self.path_for(key), "r") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        found = entry.get("meta") if isinstance(entry, dict) else None
        return found if isinstance(found, dict) else None

    # -- cost-model timing sidecar ------------------------------------------
    #
    # Timings live under <root>/costs/, keyed by the fingerprint-free
    # cost_key(), in their own subtree so entries()/clear()/__len__ (and
    # therefore budget eviction) never mistake them for cell results.

    def _cost_path(self, key: str) -> str:
        return os.path.join(self.root, "costs", key[:2], key + ".json")

    def record_timing(self, key: str, seconds: float) -> None:
        """Record one cell's wall time under its cost key (last write wins)."""
        path = self._cost_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump({"seconds": float(seconds)}, handle)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def timing(self, key: str) -> Optional[float]:
        """The recorded wall seconds for a cost key, or ``None``."""
        try:
            with open(self._cost_path(key), "r") as handle:
                entry = json.load(handle)
            return float(entry["seconds"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def entries(self) -> list:
        """Every entry as ``(mtime, size_bytes, path)``, oldest first.

        Ties on mtime break on path, so the eviction order is stable across
        processes and filesystems with coarse timestamps.
        """
        found = []
        if not os.path.isdir(self.root):
            return found
        for directory, dirs, files in os.walk(self.root):
            if directory == self.root and "costs" in dirs:
                dirs.remove("costs")  # timing sidecar: not cache entries
            for name in files:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(directory, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue  # deleted under us: not an entry any more
                found.append((info.st_mtime, info.st_size, path))
        found.sort(key=lambda item: (item[0], item[2]))
        return found

    def size_bytes(self) -> int:
        """Total on-disk payload size across all entries."""
        return sum(size for _mtime, size, _path in self.entries())

    def enforce_budget(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the cache fits the budget.

        Returns how many entries were removed (each counted via
        ``exec.cache_evictions``). ``max_bytes <= 0`` means unlimited. Safe
        against concurrent writers: an entry that disappears mid-scan is
        simply skipped.
        """
        if max_bytes <= 0:
            return 0
        listing = self.entries()
        total = sum(size for _mtime, size, _path in listing)
        evicted = 0
        for _mtime, size, path in listing:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue  # another process evicted it first
            total -= size
            evicted += 1
            self._stats.record_cache_eviction()
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Timing sidecar files survive: they are fingerprint-free cost
        estimates, still valid after the results they came from are gone.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for directory, dirs, files in os.walk(self.root):
            if directory == self.root and "costs" in dirs:
                dirs.remove("costs")
            for name in files:
                if name.endswith(".json"):
                    os.unlink(os.path.join(directory, name))
                    removed += 1
        return removed

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return count
        for directory, dirs, files in os.walk(self.root):
            if directory == self.root and "costs" in dirs:
                dirs.remove("costs")
            count += sum(1 for name in files if name.endswith(".json"))
        return count


def resolve_cache(
    cache: Union[None, bool, str, RunCache] = None
) -> Optional[RunCache]:
    """Resolve a ``cache`` argument against the execution context.

    ``None`` -> the context's policy; ``False`` -> disabled; ``True`` ->
    enabled at the context/default location; a path or :class:`RunCache`
    -> that cache.
    """
    if isinstance(cache, RunCache):
        return cache
    if isinstance(cache, str):
        return RunCache(cache)
    context = get_context()
    if cache is None:
        cache = context.cache_enabled
    if not cache:
        return None
    return RunCache(context.cache_dir)
