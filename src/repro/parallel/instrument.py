"""Timing and cache instrumentation for the parallel execution layer.

One process-global :class:`ExecutionStats` accumulates per-cell wall times,
cache hit/miss counters and pool utilisation; the CLI renders a summary
after each experiment (``repro.harness.report.render_execution_stats``)
and ``tools/bench_snapshot.py`` persists it alongside wall-clock numbers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class ExecutionStats:
    """Counters for one experiment's worth of cell executions."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters (the CLI resets between experiments)."""
        self.cache_hits = 0
        self.cache_misses = 0
        #: (label, seconds) per executed cell, in submission order
        self.cell_times: List[Tuple[str, float]] = []
        #: wall-clock spans of the fan-out calls and the jobs they used
        self.map_spans: List[Tuple[int, float]] = []

    # -- recording (called by runcache / executor) --------------------------

    def record_cache_hit(self, label: str = "") -> None:
        self.cache_hits += 1

    def record_cache_miss(self, label: str = "") -> None:
        self.cache_misses += 1

    def record_cell(self, label: str, seconds: float) -> None:
        self.cell_times.append((label, seconds))

    def record_map(self, jobs: int, span_seconds: float) -> None:
        self.map_spans.append((jobs, span_seconds))

    # -- derived metrics ----------------------------------------------------

    @property
    def cells_executed(self) -> int:
        """Cells actually simulated (cache misses that ran)."""
        return len(self.cell_times)

    @property
    def busy_seconds(self) -> float:
        """Total worker-occupied time across all cells."""
        return sum(seconds for _, seconds in self.cell_times)

    @property
    def span_seconds(self) -> float:
        """Wall-clock time inside fan-out calls."""
        return sum(span for _, span in self.map_spans)

    @property
    def worker_utilisation(self) -> float:
        """busy / (workers x span): 1.0 means the pool never idled."""
        capacity = sum(jobs * span for jobs, span in self.map_spans)
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def slowest_cells(self, count: int = 5) -> List[Tuple[str, float]]:
        """The ``count`` longest-running cells (for hot-spot reports)."""
        return sorted(self.cell_times, key=lambda item: -item[1])[:count]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (bench snapshots, run_experiments dumps)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cells_executed": self.cells_executed,
            "busy_seconds": round(self.busy_seconds, 3),
            "span_seconds": round(self.span_seconds, 3),
            "worker_utilisation": round(self.worker_utilisation, 3),
            "slowest_cells": [
                {"cell": label, "seconds": round(seconds, 3)}
                for label, seconds in self.slowest_cells()
            ],
        }


#: Process-global collector used by default everywhere.
EXECUTION_STATS = ExecutionStats()
