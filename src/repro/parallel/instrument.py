"""Timing and cache instrumentation for the parallel execution layer.

One process-global :class:`ExecutionStats` accumulates per-cell wall times,
cache hit/miss counters and pool utilisation; the CLI renders a summary
after each experiment (``repro.harness.report.render_execution_stats``)
and ``tools/bench_snapshot.py`` persists it alongside wall-clock numbers.

The counters live in a private :class:`~repro.telemetry.MetricsRegistry`,
so the execution profile merges and serialises through the same snapshot
path as the simulator metrics (``snapshot()``). The registry is private —
not the cell-scoped one — because these numbers describe the *harness*
(wall clocks, pool spans), which must never leak into the deterministic
per-cell snapshots attached to cached results.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.simcontext import current_context, default_context
from repro.telemetry import MetricsRegistry, MetricsSnapshot


class ExecutionStats:
    """Counters for one experiment's worth of cell executions."""

    def __init__(self) -> None:
        self._registry = MetricsRegistry(enabled=True)
        self._hits = self._registry.counter("exec.cache_hits")
        self._misses = self._registry.counter("exec.cache_misses")
        self._corrupt = self._registry.counter("exec.cache_corrupt")
        self._evictions = self._registry.counter("exec.cache_evictions")
        self._memo_evictions = self._registry.counter("exec.memo_evictions")
        self._pool_spawns = self._registry.counter("exec.pool_spawns")
        self._pool_maps = self._registry.counter("exec.pool_maps")
        self._cell_timer = self._registry.timer("exec.cell_seconds")
        self._span_timer = self._registry.timer("exec.span_seconds")
        self._capacity_timer = self._registry.timer("exec.capacity_seconds")
        self._pool_spawn_timer = self._registry.timer("exec.pool_spawn_seconds")
        #: (label, seconds) per executed cell, in submission order
        self.cell_times: List[Tuple[str, float]] = []
        #: wall-clock spans of the fan-out calls and the jobs they used
        self.map_spans: List[Tuple[int, float]] = []

    def reset(self) -> None:
        """Zero all counters (the CLI resets between experiments)."""
        self._registry.reset()
        self.cell_times = []
        self.map_spans = []

    # -- recording (called by runcache / executor) --------------------------

    def record_cache_hit(self, label: str = "") -> None:
        self._hits.inc()

    def record_cache_miss(self, label: str = "") -> None:
        self._misses.inc()

    def record_cache_corrupt(self, label: str = "") -> None:
        self._corrupt.inc()

    def record_cache_eviction(self, label: str = "") -> None:
        self._evictions.inc()

    def record_memo_evictions(self, count: int = 1) -> None:
        if count:
            self._memo_evictions.inc(count)

    def record_cell(self, label: str, seconds: float) -> None:
        self.cell_times.append((label, seconds))
        self._cell_timer.record(seconds)

    def record_map(self, jobs: int, span_seconds: float) -> None:
        self.map_spans.append((jobs, span_seconds))
        self._span_timer.record(span_seconds)
        self._capacity_timer.record(jobs * span_seconds)

    def record_pool_spawn(self, seconds: float) -> None:
        """One persistent-pool spawn (repro.parallel.pool.get_pool)."""
        self._pool_spawns.inc()
        self._pool_spawn_timer.record(seconds)

    def record_pool_map(self) -> None:
        """One batch dispatched through the persistent pool."""
        self._pool_maps.inc()

    # -- derived metrics ----------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Cells served from the run cache."""
        return int(self._hits.value)

    @property
    def cache_misses(self) -> int:
        """Cells that missed the run cache."""
        return int(self._misses.value)

    @property
    def cache_corrupt(self) -> int:
        """Cache entries found unreadable and quarantined (counted as misses)."""
        return int(self._corrupt.value)

    @property
    def cache_evictions(self) -> int:
        """Cache entries evicted by size-budget enforcement."""
        return int(self._evictions.value)

    @property
    def memo_evictions(self) -> int:
        """In-memory cell-memo entries evicted by its byte budget."""
        return int(self._memo_evictions.value)

    @property
    def pool_spawns(self) -> int:
        """Persistent-pool spawns (1 per whole-grid run when reuse works)."""
        return int(self._pool_spawns.value)

    @property
    def pool_maps(self) -> int:
        """Batches dispatched through the persistent pool."""
        return int(self._pool_maps.value)

    @property
    def pool_spawn_seconds(self) -> float:
        """Wall clock spent constructing persistent pools."""
        return self._pool_spawn_timer.total_seconds

    @property
    def cells_executed(self) -> int:
        """Cells actually simulated (cache misses that ran)."""
        return self._cell_timer.count

    @property
    def busy_seconds(self) -> float:
        """Total worker-occupied time across all cells."""
        return self._cell_timer.total_seconds

    @property
    def span_seconds(self) -> float:
        """Wall-clock time inside fan-out calls."""
        return self._span_timer.total_seconds

    @property
    def worker_utilisation(self) -> float:
        """busy / (workers x span): 1.0 means the pool never idled."""
        capacity = self._capacity_timer.total_seconds
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def slowest_cells(self, count: int = 5) -> List[Tuple[str, float]]:
        """The ``count`` longest-running cells (for hot-spot reports)."""
        return sorted(self.cell_times, key=lambda item: -item[1])[:count]

    def snapshot(self) -> MetricsSnapshot:
        """The execution profile as a mergeable metrics snapshot."""
        return self._registry.snapshot()

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (bench snapshots, run_experiments dumps)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corrupt": self.cache_corrupt,
            "cache_evictions": self.cache_evictions,
            "memo_evictions": self.memo_evictions,
            "pool_spawns": self.pool_spawns,
            "pool_maps": self.pool_maps,
            "pool_spawn_seconds": round(self.pool_spawn_seconds, 3),
            "cells_executed": self.cells_executed,
            "busy_seconds": round(self.busy_seconds, 3),
            "span_seconds": round(self.span_seconds, 3),
            "worker_utilisation": round(self.worker_utilisation, 3),
            "slowest_cells": [
                {"cell": label, "seconds": round(seconds, 3)}
                for label, seconds in self.slowest_cells()
            ],
        }


#: Process-default collector: what :func:`current_stats` resolves outside
#: any :mod:`repro.simcontext` scope (the CLI and report layer reference
#: this object directly, so the default context binds this very instance).
EXECUTION_STATS = ExecutionStats()  # lint-ok: C401 default-context identity; worker scopes resolve their own stats


def current_stats() -> ExecutionStats:
    """The active context's execution stats."""
    context = current_context()
    stats = context.stats
    if stats is None:
        stats = (
            EXECUTION_STATS
            if context is default_context()
            else ExecutionStats()
        )
        context.stats = stats
    return stats  # type: ignore[no-any-return]
