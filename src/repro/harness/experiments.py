"""One entry point per table/figure of the paper's evaluation.

Every function prints paper-style rows and returns the raw numbers, so the
same code serves the CLI, the pytest benchmarks, and EXPERIMENTS.md. Paper
reference values appear in each docstring; the reproduction targets the
*shape* (orderings, ratios, crossovers), not absolute IPC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.parallel import overridden
from repro.harness.report import render_series, render_table
from repro.harness.scales import Scale, resolve_scale
from repro.harness.spec import GRID_EXPERIMENT, ExperimentSpec
from repro.reliability.analytical import (
    effective_mac_strength_bits,
    sdc_estimate,
)
from repro.reliability.fitrates import FAULT_MODES
from repro.reliability.montecarlo import (
    MonteCarloConfig,
    simulate_failure_probability,
)
from repro.reliability.schemes import (
    CHIPKILL_SCHEME,
    IVEC_SCHEME,
    SECDED_SCHEME,
    SYNERGY_SCHEME,
)
from repro.secure.designs import (
    ALL_DESIGNS,
    design_by_name,
    IVEC,
    LOTECC,
    LOTECC_COALESCED,
    NON_SECURE,
    SGX,
    SGX_O,
    SGX_O_SPLIT,
    SYNERGY,
    SYNERGY_DEDICATED,
    SYNERGY_SPLIT,
)
from repro.sim.config import SystemConfig
from repro.sim.results import ResultTable
from repro.sim.runner import run_suite
from repro.util.units import gmean
from repro.workloads.mixes import MIXES
from repro.workloads.suites import workload_suite


def _workloads(scale: Scale) -> List:
    workloads: List = list(workload_suite(scale.suite))
    if scale.include_mixes:
        workloads += list(MIXES)
    return workloads


def _config(scale: Scale, channels: int = 2) -> SystemConfig:
    config = SystemConfig(accesses_per_core=scale.accesses_per_core)
    if channels != config.memory.channels:
        config = config.with_channels(channels)
    return config


def _perf_table(scale: Scale, designs, channels: int = 2) -> ResultTable:
    return run_suite(designs, _workloads(scale), _config(scale, channels))


# ---------------------------------------------------------------------------
# Figure 6: motivation — SGX, SGX_O, Non-Secure (normalised to SGX_O)
# ---------------------------------------------------------------------------


def fig6(scale: object = None, quiet: bool = False) -> Dict[str, float]:
    """Fig. 6: Non-Secure is ~2.12x SGX_O; SGX is ~0.70x SGX_O (gmean)."""
    scale = resolve_scale(scale)
    table = _perf_table(scale, [SGX_O, SGX, NON_SECURE])
    series = {
        design: {
            w: table.speedup(design, "SGX_O", w) for w in table.workloads()
        }
        for design in ("SGX", "NonSecure")
    }
    summary = {
        "SGX": table.gmean_speedup("SGX", "SGX_O"),
        "NonSecure": table.gmean_speedup("NonSecure", "SGX_O"),
    }
    if not quiet:
        print(render_series(series, "Figure 6: IPC normalised to SGX_O"))
        print(
            "gmean:  SGX=%.3f (paper ~0.70)   NonSecure=%.3f (paper ~2.12)"
            % (summary["SGX"], summary["NonSecure"])
        )
    return summary


# ---------------------------------------------------------------------------
# Figure 8: headline — Synergy vs SGX vs SGX_O
# ---------------------------------------------------------------------------


def fig8(scale: object = None, quiet: bool = False) -> Dict[str, float]:
    """Fig. 8: Synergy +20% over SGX_O; SGX -30% (gmean over 29 workloads)."""
    scale = resolve_scale(scale)
    table = _perf_table(scale, [SGX_O, SGX, SYNERGY])
    series = {
        design: {w: table.speedup(design, "SGX_O", w) for w in table.workloads()}
        for design in ("SGX", "Synergy")
    }
    summary = {
        "SGX": table.gmean_speedup("SGX", "SGX_O"),
        "Synergy": table.gmean_speedup("Synergy", "SGX_O"),
    }
    if not quiet:
        print(render_series(series, "Figure 8: IPC normalised to SGX_O"))
        print(
            "gmean:  SGX=%.3f (paper ~0.70)   Synergy=%.3f (paper ~1.20)"
            % (summary["SGX"], summary["Synergy"])
        )
    return summary


# ---------------------------------------------------------------------------
# Figure 9: memory traffic by access type
# ---------------------------------------------------------------------------

_TRAFFIC_CATEGORIES = ("data", "counter", "mac", "parity")


def fig9(scale: object = None, quiet: bool = False) -> Dict[str, Dict[str, float]]:
    """Fig. 9: traffic split; Synergy cuts MACs, adds parity writes, -18% total.

    Traffic is attributed to what *triggered* it, matching the paper's
    presentation: the "reads" panel counts accesses serving demand reads,
    the "writes" panel counts accesses serving writebacks (including the
    read halves of metadata read-modify-writes).
    """
    scale = resolve_scale(scale)
    table = _perf_table(scale, [SGX_O, SGX, SYNERGY])
    workloads = table.workloads()

    breakdown: Dict[str, Dict[str, float]] = {}
    for design in ("SGX", "SGX_O", "Synergy"):
        sums: Dict[str, float] = {}
        for origin in ("demand", "writeback"):
            for category in _TRAFFIC_CATEGORIES:
                total = 0.0
                for workload in workloads:
                    result = table.get(design, workload)
                    apki = result.origin_traffic_per_kilo_instruction()
                    total += apki.get(
                        "%s_%s_read" % (origin, category), 0.0
                    ) + apki.get("%s_%s_write" % (origin, category), 0.0)
                panel = "read" if origin == "demand" else "write"
                sums["%s_%s" % (category, panel)] = total / len(workloads)
        breakdown[design] = sums

    baseline_total = sum(breakdown["SGX_O"].values())
    reduction = 1.0 - sum(breakdown["Synergy"].values()) / baseline_total
    if not quiet:
        rows = []
        for design, sums in breakdown.items():
            reads = {c: sums["%s_read" % c] for c in _TRAFFIC_CATEGORIES}
            writes = {c: sums["%s_write" % c] for c in _TRAFFIC_CATEGORIES}
            rows.append(
                [
                    design,
                    "%.1f" % sum(reads.values()),
                    "%.1f" % sum(writes.values()),
                    " ".join("%s=%.1f" % kv for kv in reads.items()),
                    " ".join("%s=%.1f" % kv for kv in writes.items()),
                ]
            )
        print(
            render_table(
                ["design", "reads/ki", "writes/ki", "read panel", "write panel"],
                rows,
                "Figure 9: traffic per kilo-instruction, by triggering access",
            )
        )
        print(
            "Synergy total traffic vs SGX_O: %.1f%% lower (paper ~18%%)"
            % (100 * reduction)
        )
    breakdown["synergy_reduction"] = {"total": reduction}
    return breakdown


# ---------------------------------------------------------------------------
# Figure 10: power / performance / energy / EDP
# ---------------------------------------------------------------------------


def fig10(scale: object = None, quiet: bool = False) -> Dict[str, Dict[str, float]]:
    """Fig. 10: power flat; Synergy EDP -31%; SGX EDP much worse."""
    scale = resolve_scale(scale)
    table = _perf_table(scale, [SGX_O, SGX, SYNERGY])
    workloads = table.workloads()
    out: Dict[str, Dict[str, float]] = {}
    for design in ("SGX", "SGX_O", "Synergy"):
        out[design] = {
            "power": gmean(
                table.get(design, w).power_w / table.get("SGX_O", w).power_w
                for w in workloads
            ),
            "performance": table.gmean_speedup(design, "SGX_O"),
            "energy": gmean(
                table.get(design, w).energy_j / table.get("SGX_O", w).energy_j
                for w in workloads
            ),
            "edp": table.gmean_edp_ratio(design, "SGX_O"),
        }
    if not quiet:
        rows = [
            [d, v["power"], v["performance"], v["energy"], v["edp"]]
            for d, v in out.items()
        ]
        print(
            render_table(
                ["design", "power", "perf", "energy", "EDP"],
                rows,
                "Figure 10: normalised to SGX_O (paper: Synergy EDP ~0.69)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 11: reliability
# ---------------------------------------------------------------------------


def fig11(scale: object = None, quiet: bool = False) -> Dict[str, float]:
    """Fig. 11: P(system failure, 7y): Chipkill 37x and Synergy 185x below SECDED."""
    scale = resolve_scale(scale)
    config = MonteCarloConfig(devices=scale.mc_devices)
    out: Dict[str, float] = {}
    for scheme in (SECDED_SCHEME, CHIPKILL_SCHEME, SYNERGY_SCHEME):
        out[scheme.name] = simulate_failure_probability(scheme, config)
    secded = out["SECDED"]
    ratios = {
        "Chipkill": secded / max(out["Chipkill"], 1e-12),
        "Synergy": secded / max(out["Synergy"], 1e-12),
    }
    if not quiet:
        rows = [
            [name, "%.3e" % prob, "%.0fx" % (secded / max(prob, 1e-12))]
            for name, prob in out.items()
        ]
        print(
            render_table(
                ["scheme", "P(fail, 7y)", "vs SECDED"],
                rows,
                "Figure 11 (paper: Chipkill 37x, Synergy 185x)",
            )
        )
    out.update({"ratio_" + k: v for k, v in ratios.items()})
    return out


# ---------------------------------------------------------------------------
# Figure 12: channel-count sensitivity
# ---------------------------------------------------------------------------


def fig12(scale: object = None, quiet: bool = False) -> Dict[int, Dict[str, float]]:
    """Fig. 12: Synergy gain shrinks 20%->6% as channels go 2->8."""
    scale = resolve_scale(scale)
    out: Dict[int, Dict[str, float]] = {}
    for channels in (2, 4, 8):
        table = _perf_table(scale, [SGX_O, SGX, SYNERGY], channels)
        out[channels] = {
            "SGX": table.gmean_speedup("SGX", "SGX_O"),
            "Synergy": table.gmean_speedup("Synergy", "SGX_O"),
        }
    if not quiet:
        rows = [
            [str(ch), v["SGX"], v["Synergy"]] for ch, v in out.items()
        ]
        print(
            render_table(
                ["channels", "SGX", "Synergy"],
                rows,
                "Figure 12: gmean IPC vs SGX_O (paper: Synergy 1.20 -> 1.06)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 13: split vs monolithic counters
# ---------------------------------------------------------------------------


def fig13(scale: object = None, quiet: bool = False) -> Dict[str, float]:
    """Fig. 13: Synergy speedup with split counters ~3% above monolithic."""
    scale = resolve_scale(scale)
    workloads = _workloads(scale)
    config = _config(scale)
    mono = run_suite([SGX_O, SYNERGY], workloads, config)
    split = run_suite([SGX_O_SPLIT, SYNERGY_SPLIT], workloads, config)
    out = {
        "monolithic": mono.gmean_speedup("Synergy", "SGX_O"),
        "split": split.gmean_speedup("Synergy_Split", "SGX_O_Split"),
    }
    if not quiet:
        print(
            render_table(
                ["counter mode", "Synergy speedup vs same-mode SGX_O"],
                [[k, v] for k, v in out.items()],
                "Figure 13 (paper: split ~3% higher than monolithic)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 14: counter caching policy
# ---------------------------------------------------------------------------


def fig14(scale: object = None, quiet: bool = False) -> Dict[str, float]:
    """Fig. 14: dedicated-only caching gives ~13% speedup vs 20% with LLC."""
    scale = resolve_scale(scale)
    workloads = _workloads(scale)
    config = _config(scale)
    llc = run_suite([SGX_O, SYNERGY], workloads, config)
    dedicated = run_suite([SGX, SYNERGY_DEDICATED], workloads, config)
    out = {
        "dedicated+LLC": llc.gmean_speedup("Synergy", "SGX_O"),
        "dedicated-only": dedicated.gmean_speedup("Synergy_Dedicated", "SGX"),
    }
    if not quiet:
        print(
            render_table(
                ["counter caching", "Synergy speedup vs same-policy baseline"],
                [[k, v] for k, v in out.items()],
                "Figure 14 (paper: 1.20 with LLC, 1.13 dedicated-only)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 16: IVEC comparison
# ---------------------------------------------------------------------------


def fig16(scale: object = None, quiet: bool = False) -> Dict[str, Dict[str, float]]:
    """Fig. 16: IVEC ~0.74x perf and ~1.9x EDP vs SGX_O; Synergy 1.20x / 0.69x."""
    scale = resolve_scale(scale)
    table = _perf_table(scale, [SGX_O, IVEC, SYNERGY])
    out = {
        design: {
            "performance": table.gmean_speedup(design, "SGX_O"),
            "edp": table.gmean_edp_ratio(design, "SGX_O"),
        }
        for design in ("IVEC", "Synergy")
    }
    if not quiet:
        rows = [[d, v["performance"], v["edp"]] for d, v in out.items()]
        print(
            render_table(
                ["design", "perf vs SGX_O", "EDP vs SGX_O"],
                rows,
                "Figure 16 (paper: IVEC 0.74 / 1.90; Synergy 1.20 / 0.69)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 17: LOT-ECC comparison
# ---------------------------------------------------------------------------


def fig17(scale: object = None, quiet: bool = False) -> Dict[str, Dict[str, float]]:
    """Fig. 17: LOT-ECC 15-20% slower than SGX_O; Synergy 20% faster."""
    scale = resolve_scale(scale)
    table = _perf_table(scale, [SGX_O, LOTECC, LOTECC_COALESCED, SYNERGY])
    out = {
        design: {
            "performance": table.gmean_speedup(design, "SGX_O"),
            "edp": table.gmean_edp_ratio(design, "SGX_O"),
        }
        for design in ("LOTECC", "LOTECC_WC", "Synergy")
    }
    if not quiet:
        rows = [[d, v["performance"], v["edp"]] for d, v in out.items()]
        print(
            render_table(
                ["design", "perf vs SGX_O", "EDP vs SGX_O"],
                rows,
                "Figure 17 (paper: LOT-ECC 0.80-0.85; Synergy 1.20)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1(quiet: bool = False) -> List[Dict[str, object]]:
    """Table I: the DRAM FIT-rate fault model (input, reproduced verbatim)."""
    rows = [
        {
            "failure mode": mode.granularity.value,
            "permanence": "transient" if mode.transient else "permanent",
            "FIT": mode.fit,
        }
        for mode in FAULT_MODES
    ]
    if not quiet:
        print(
            render_table(
                ["failure mode", "permanence", "FIT"],
                [[r["failure mode"], r["permanence"], r["FIT"]] for r in rows],
                "Table I: DRAM failures per billion hours (Sridharan et al.)",
            )
        )
    return rows


def table2(quiet: bool = False) -> List[Dict[str, str]]:
    """Table II: the design matrix, straight from the descriptors."""
    rows = []
    for design in ALL_DESIGNS:
        rows.append(
            {
                "design": design.name,
                "tree": design.tree_kind.value,
                "counters": design.counter_mode.value,
                "ctr cache": "ded+LLC" if design.counters_in_llc else "dedicated",
                "MAC": design.mac_location.value,
                "MAC cache": (
                    "LLC" if design.macs_cached and design.macs_in_llc
                    else ("yes" if design.macs_cached else "none")
                ),
                "reliability": design.reliability.value,
            }
        )
    if not quiet:
        print(
            render_table(
                list(rows[0]),
                [[r[k] for k in rows[0]] for r in rows],
                "Table II: secure memory designs evaluated",
            )
        )
    return rows


def table3(quiet: bool = False) -> Dict[str, object]:
    """Table III: the baseline system configuration."""
    from repro.sim.config import SystemConfig

    config = SystemConfig()
    rows = {
        "cores": config.num_cores,
        "rob": config.core.rob_size,
        "width": config.core.width,
        "llc_bytes": config.caches.llc_bytes,
        "llc_ways": config.caches.llc_associativity,
        "metadata_bytes": config.caches.metadata_bytes,
        "channels": config.memory.channels,
        "ranks_per_channel": config.memory.ranks_per_channel,
        "banks_per_rank": config.memory.banks_per_rank,
        "rows_per_bank": config.memory.rows_per_bank,
        "lines_per_row": config.memory.lines_per_row,
        "cpu_per_mem_clock": config.memory.cpu_clock_multiplier,
    }
    if not quiet:
        print(
            render_table(
                ["parameter", "value"],
                [[k, v] for k, v in rows.items()],
                "Table III: baseline system configuration",
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures
# ---------------------------------------------------------------------------


def ablation_sdc(quiet: bool = False) -> Dict[str, float]:
    """§IV-A/IV-B arithmetic: SDC rate and effective MAC strength."""
    estimate = sdc_estimate()
    out = {
        "collision_per_correction": estimate.collision_probability_per_correction,
        "sdc_fit": estimate.sdc_fit,
        "years_between_sdc": estimate.years_between_sdc,
        "mac_bits_data": effective_mac_strength_bits(64, 16),
        "mac_bits_counter": effective_mac_strength_bits(64, 8),
    }
    if not quiet:
        print(
            render_table(
                ["quantity", "value"],
                [[k, "%.3e" % v if v < 1 or v > 1e6 else "%.1f" % v] for k, v in out.items()],
                "SDC ablation (paper: SDC FIT ~1e-19; MAC 60/61-bit effective)",
            )
        )
    return out


def ablation_correction_latency(quiet: bool = False) -> Dict[str, float]:
    """§IV-A: MAC computations per corrected access, before/after tracking."""
    from repro.core.synergy import SynergyMemory
    from repro.dimm.faults import ChipFault, FaultKind
    from repro.secure.mac import MacBudget

    memory = SynergyMemory(64, tracker_threshold=3)
    for line in range(16):
        memory.write(line, bytes([line]) * 64)
    memory.dimm.inject_fault(5, ChipFault(FaultKind.WHOLE_CHIP, seed=9))
    memory.tree.cache.clear()

    costs = []
    for line in range(16):
        with MacBudget(memory.mac_calc) as budget:
            memory.read(line)
        costs.append(budget.spent)
    out = {
        "first_access_macs": float(costs[0]),
        "steady_state_macs": float(costs[-1]),
        "max_macs": float(max(costs)),
    }
    if not quiet:
        print(
            render_table(
                ["quantity", "MAC computations"],
                [[k, v] for k, v in out.items()],
                "Correction latency (paper: up to 88, then 1 after tracking)",
            )
        )
    return out


def selfcheck_experiment(quiet: bool = False) -> Dict[str, str]:
    """Installation self-check (crypto vectors + all three planes)."""
    from repro.harness.selfcheck import selfcheck

    return selfcheck(quiet=quiet)


# ---------------------------------------------------------------------------
# Custom design grid (the service's parameterised experiment)
# ---------------------------------------------------------------------------


def grid_experiment(
    scale: object = None,
    designs: Sequence[str] = (),
    seeds: Sequence[int] = (),
    quiet: bool = False,
) -> Dict[str, object]:
    """Run an arbitrary design subset over the scale's workload suite.

    This is the ``grid`` experiment of :class:`~repro.harness.spec.
    ExperimentSpec`: unlike the paper figures it takes an explicit design
    list and optional trace-seed overrides (each seed re-synthesises every
    workload trace from a distinct stream), so clients can request design
    comparisons the paper never plotted. Speedups are normalised to the
    first design named.
    """
    scale = resolve_scale(scale)
    named = [design_by_name(name) for name in designs]
    if not named:
        raise ValueError("grid_experiment requires at least one design")
    workloads = _workloads(scale)
    config = _config(scale)
    baseline = named[0].name
    runs: Dict[str, Dict[str, object]] = {}
    seed_list = tuple(seeds) or (None,)
    if len(seed_list) > 1:
        # Multi-seed sweeps repeat the same design x workload grid once
        # per seed: prefetch the union in one planner fan-out so every
        # per-seed run_suite below assembles from warm hits instead of
        # paying its own pool spin-up and straggler tail.
        from repro.harness.plan import CellSpec, execute_cells

        execute_cells(
            [
                CellSpec(design, workload, config, seed=seed)
                for seed in seed_list
                for design in named
                for workload in workloads
            ]
        )
    for seed in seed_list:
        table = run_suite(named, workloads, config, seed=seed)
        run_label = "default" if seed is None else "seed=%d" % seed
        speedups = {
            design.name: table.gmean_speedup(design.name, baseline)
            for design in named
        }
        runs[run_label] = {
            "ipc": {
                design.name: {
                    workload: table.get(design.name, workload).ipc
                    for workload in table.workloads()
                }
                for design in named
            },
            "gmean_speedup": speedups,
        }
        if not quiet:
            print(
                render_table(
                    ["design", "gmean IPC vs %s" % baseline],
                    [[name, value] for name, value in speedups.items()],
                    "Grid (%s, %s)" % (scale.name, run_label),
                )
            )
    return {
        "designs": [design.name for design in named],
        "scale": scale.name,
        "baseline": baseline,
        "runs": runs,
    }


EXPERIMENTS = {
    "selfcheck": selfcheck_experiment,
    "fig6": fig6,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig16": fig16,
    "fig17": fig17,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "sdc": ablation_sdc,
    "correction_latency": ablation_correction_latency,
}

#: Experiments that take no scale argument (pure tables/arithmetic).
UNSCALED = {"table1", "table2", "table3", "sdc", "correction_latency", "selfcheck"}


def run_spec(
    spec: ExperimentSpec,
    quiet: bool = True,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> object:
    """Run one validated :class:`ExperimentSpec` (the service's entry point).

    ``jobs`` (explicit argument > ``spec.jobs`` > process default) and
    ``cache`` steer the fan-out and run-cache policy for every
    ``run_suite``/Monte-Carlo call the experiment makes. The returned
    payload is JSON-able for every registered experiment.
    """
    spec = spec.validated()
    changes: Dict[str, object] = {}
    effective_jobs = jobs if jobs is not None else (spec.jobs or None)
    if effective_jobs is not None:
        changes["jobs"] = max(1, int(effective_jobs))
    if cache is not None:
        changes["cache_enabled"] = bool(cache)
    with overridden(**changes):
        if spec.experiment == GRID_EXPERIMENT:
            return grid_experiment(
                resolve_scale(spec.scale),
                designs=spec.designs,
                seeds=spec.seeds,
                quiet=quiet,
            )
        function = EXPERIMENTS[spec.experiment]
        if spec.experiment in UNSCALED:
            return function(quiet=quiet)
        return function(resolve_scale(spec.scale), quiet=quiet)


def run_experiment(
    name: str,
    scale: object = None,
    quiet: bool = False,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    plan: bool = True,
) -> object:
    """Run one registered experiment under an execution-context override.

    A thin wrapper that normalises ``(name, scale)`` into an
    :class:`ExperimentSpec` and defers to :func:`run_spec`, so the CLI,
    ``tools/run_experiments.py``, ``tools/bench_snapshot.py`` and the
    experiment service all execute requests through one validated path.

    ``name="all"`` runs every registered experiment through the whole-run
    planner (one globally-deduped fan-out, then per-figure assembly);
    ``plan=False`` restores the legacy figure-at-a-time loop. ``plan`` is
    ignored for single experiments.
    """
    if name == "all":
        from repro.harness.plan import run_all_experiments

        return run_all_experiments(
            scale=scale, quiet=quiet, jobs=jobs, cache=cache, plan=plan
        )
    spec = ExperimentSpec(experiment=name, scale=resolve_scale(scale).name)
    return run_spec(spec, quiet=quiet, jobs=jobs, cache=cache)
