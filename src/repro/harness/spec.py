"""The canonical experiment specification: one schema for CLI, service, cache.

An :class:`ExperimentSpec` names everything that determines an experiment's
*result*: the experiment (a figure/table from ``harness.experiments`` or the
custom ``grid``), the scale preset, and — for ``grid`` — the design list and
trace-seed overrides. ``jobs`` rides along as an execution hint but is
excluded from the identity key, because results are bit-identical at any
worker count (the PR 1 determinism guarantee).

The spec round-trips through JSON (``to_payload``/``from_payload``) with
strict validation, so the HTTP service, the CLI and the run cache all agree
on what a request *is* — and :meth:`cache_key` gives the same
content-addressed identity the run cache uses, which is what makes request
coalescing and spec-level result caching safe.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Tuple

SCALE_NAMES: Tuple[str, ...] = ("quick", "default", "full")

#: The custom design-grid experiment (not in ``EXPERIMENTS``: it takes a
#: design list and seed overrides, which the paper figures do not).
GRID_EXPERIMENT = "grid"

_PAYLOAD_KEYS = ("experiment", "scale", "designs", "seeds", "jobs")

_MAX_DESIGNS = 32
_MAX_SEEDS = 64


class SpecError(ValueError):
    """A spec payload failed validation (HTTP 400 territory)."""


def known_experiments() -> Tuple[str, ...]:
    """Every valid ``experiment`` value (registry figures + ``grid``)."""
    from repro.harness.experiments import EXPERIMENTS

    return tuple(sorted(EXPERIMENTS)) + (GRID_EXPERIMENT,)


def _unscaled_experiments() -> Tuple[str, ...]:
    from repro.harness.experiments import UNSCALED

    return tuple(sorted(UNSCALED))


def _known_designs() -> Tuple[str, ...]:
    from repro.secure.designs import ALL_DESIGNS

    return tuple(design.name for design in ALL_DESIGNS)


@dataclass(frozen=True)
class ExperimentSpec:
    """One validated experiment request (figure x scale x designs x seeds)."""

    experiment: str
    scale: str = "default"
    designs: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = ()
    #: Worker processes for the spec's grid/shard fan-out; 0 defers to the
    #: executing process's :class:`~repro.parallel.ExecutionContext`.
    #: Excluded from :meth:`cache_key` — results are jobs-invariant.
    jobs: int = 0

    def validated(self) -> "ExperimentSpec":
        """This spec, normalised, or raise :class:`SpecError`.

        Normalisation: unscaled experiments (pure tables/arithmetic) pin
        ``scale`` to ``default`` so e.g. ``table1@quick`` and
        ``table1@full`` coalesce onto one key.
        """
        if not isinstance(self.experiment, str) or not self.experiment:
            raise SpecError("spec.experiment must be a non-empty string")
        if self.experiment not in known_experiments():
            raise SpecError(
                "unknown experiment %r (valid: %s)"
                % (self.experiment, ", ".join(known_experiments()))
            )
        if self.scale not in SCALE_NAMES:
            raise SpecError(
                "unknown scale %r (valid: %s)" % (self.scale, "/".join(SCALE_NAMES))
            )
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool):
            raise SpecError("spec.jobs must be an integer")
        if self.jobs < 0:
            raise SpecError("spec.jobs must be >= 0")
        for name in self.designs:
            if not isinstance(name, str):
                raise SpecError("spec.designs entries must be strings")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise SpecError("spec.seeds entries must be integers")
        if self.experiment == GRID_EXPERIMENT:
            if not self.designs:
                raise SpecError("grid specs require a non-empty designs list")
            if len(self.designs) > _MAX_DESIGNS:
                raise SpecError("too many designs (max %d)" % _MAX_DESIGNS)
            if len(self.seeds) > _MAX_SEEDS:
                raise SpecError("too many seeds (max %d)" % _MAX_SEEDS)
            if len(set(self.designs)) != len(self.designs):
                raise SpecError("duplicate design names in spec.designs")
            if len(set(self.seeds)) != len(self.seeds):
                raise SpecError("duplicate seeds in spec.seeds")
            known = _known_designs()
            for name in self.designs:
                if name not in known:
                    raise SpecError(
                        "unknown design %r (valid: %s)" % (name, ", ".join(known))
                    )
        else:
            if self.designs:
                raise SpecError(
                    "experiment %r takes no designs (only 'grid' does)"
                    % self.experiment
                )
            if self.seeds:
                raise SpecError(
                    "experiment %r takes no seeds (only 'grid' does)"
                    % self.experiment
                )
        if self.experiment in _unscaled_experiments() and self.scale != "default":
            return replace(self, scale="default")
        return self

    # -- identity -----------------------------------------------------------

    def identity(self) -> Dict[str, object]:
        """The result-determining fields (everything except ``jobs``)."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "designs": list(self.designs),
            "seeds": list(self.seeds),
        }

    def cache_key(self) -> str:
        """Content address of this spec's result (run-cache compatible).

        Shares :func:`repro.parallel.cache_key`, so the key covers the code
        fingerprint too: a simulator change invalidates service-cached
        figures exactly as it invalidates per-cell run-cache entries.
        """
        from repro.parallel import cache_key

        return cache_key("experiment_spec", **self.identity())

    # -- JSON round-trip ----------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready dict form; ``from_payload`` inverts it exactly."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "designs": list(self.designs),
            "seeds": list(self.seeds),
            "jobs": self.jobs,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        """Parse and validate an untrusted payload (service submissions)."""
        if not isinstance(payload, Mapping):
            raise SpecError("spec payload must be a JSON object")
        unknown = sorted(set(payload) - set(_PAYLOAD_KEYS))
        if unknown:
            raise SpecError("unknown spec field(s): %s" % ", ".join(unknown))
        if "experiment" not in payload:
            raise SpecError("spec payload requires an 'experiment' field")
        experiment = payload["experiment"]
        scale = payload.get("scale", "default")
        if not isinstance(experiment, str):
            raise SpecError("spec.experiment must be a string")
        if not isinstance(scale, str):
            raise SpecError("spec.scale must be a string")
        designs_raw = payload.get("designs", ())
        seeds_raw = payload.get("seeds", ())
        if isinstance(designs_raw, str) or not isinstance(
            designs_raw, (list, tuple)
        ):
            raise SpecError("spec.designs must be a list of design names")
        if isinstance(seeds_raw, str) or not isinstance(seeds_raw, (list, tuple)):
            raise SpecError("spec.seeds must be a list of integers")
        jobs = payload.get("jobs", 0)
        if not isinstance(jobs, int) or isinstance(jobs, bool):
            raise SpecError("spec.jobs must be an integer")
        spec = cls(
            experiment=experiment,
            scale=scale,
            designs=tuple(designs_raw),
            seeds=tuple(seeds_raw),
            jobs=jobs,
        )
        return spec.validated()
