"""ASCII rendering of experiment output (series, tables, comparisons)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

if TYPE_CHECKING:
    from repro.parallel.instrument import ExecutionStats
    from repro.telemetry import TelemetryAggregate


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a simple aligned table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Dict[str, Dict[str, float]],
    title: str = "",
    value_format: str = "%.3f",
) -> str:
    """Render named series over shared x-labels (a text stand-in for bars).

    ``series`` maps series-name -> {x-label: value}.
    """
    labels: List[str] = []
    for values in series.values():
        for label in values:
            if label not in labels:
                labels.append(label)
    headers = ["workload"] + list(series)
    rows = []
    for label in labels:
        row = [label]
        for name in series:
            value = series[name].get(label)
            row.append("-" if value is None else value_format % value)
        rows.append(row)
    return render_table(headers, rows, title)


def render_execution_stats(stats: "ExecutionStats") -> str:
    """One-line-per-metric summary of the parallel execution layer.

    Shows cache hit/miss counts, cell execution totals, pool utilisation
    and the slowest cells — the numbers that tell you whether ``--jobs``
    and the run cache are actually paying off.
    """
    cells = stats.cells_executed
    lines = [
        "execution: %d cell(s) run, %d cache hit(s), %d miss(es)"
        % (cells, stats.cache_hits, stats.cache_misses)
    ]
    if cells:
        lines.append(
            "timing: %.1fs busy over %.1fs span, utilisation %.0f%%"
            % (
                stats.busy_seconds,
                stats.span_seconds,
                100 * stats.worker_utilisation,
            )
        )
        slowest = ", ".join(
            "%s=%.1fs" % (label, seconds)
            for label, seconds in stats.slowest_cells(3)
        )
        lines.append("slowest cells: " + slowest)
    return "\n".join(lines)


def render_metrics_summary(aggregate: "TelemetryAggregate") -> str:
    """Per-group headline metrics as a table (the --metrics-out preview).

    Rows are groups (designs / MC schemes), columns the union of headline
    keys present in any group; absent quantities render as '-'.
    """
    headlines = aggregate.headlines()
    columns: List[str] = []
    for values in headlines.values():
        for key in values:
            if key not in columns:
                columns.append(key)
    rows = []
    for group in headlines:
        row: List[object] = [group]
        for column in columns:
            value = headlines[group].get(column)
            row.append("-" if value is None else value)
        rows.append(row)
    return render_table(["group"] + columns, rows, title="telemetry headline")


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)
