"""Scale presets for experiments.

The paper simulates 1B-instruction slices and a billion device-lifetimes;
pure Python cannot, so every experiment accepts a :class:`Scale`:

* ``quick`` — smoke-level: 3 workloads, tiny traces; seconds per figure.
  This is what the pytest benchmarks use.
* ``default`` — representative workload subset, medium traces; a couple of
  minutes per performance figure. EXPERIMENTS.md numbers use this.
* ``full`` — all 29 workloads + 6 mixes, long traces, 10M Monte-Carlo
  devices; tens of minutes per figure.

Override via the ``REPRO_SCALE`` environment variable or per-call argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Effort knobs shared by all experiments."""

    name: str
    suite: str  #: workload suite scope (see repro.workloads.suites)
    accesses_per_core: int
    include_mixes: bool
    mc_devices: int  #: Monte-Carlo devices for reliability figures


QUICK = Scale("quick", "smoke", 3_000, False, 200_000)
DEFAULT = Scale("default", "representative", 8_000, False, 2_000_000)
FULL = Scale("full", "all", 20_000, True, 10_000_000)

_BY_NAME = {scale.name: scale for scale in (QUICK, DEFAULT, FULL)}


def resolve_scale(scale: object = None) -> Scale:
    """Resolve an explicit scale, the env override, or the default."""
    if isinstance(scale, Scale):
        return scale
    name = scale or os.environ.get("REPRO_SCALE") or "default"
    try:
        return _BY_NAME[str(name)]
    except KeyError:
        raise ValueError(
            "unknown scale %r (quick/default/full)" % (name,)
        ) from None
