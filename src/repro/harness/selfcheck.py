"""Installation self-check: exercises every plane end-to-end in seconds.

``synergy-repro selfcheck`` validates that the crypto substrate matches its
known-answer vectors, the functional plane corrects a chip kill and rejects
tampering, the timing plane produces the paper's design ordering, and the
reliability plane produces the paper's scheme ordering — the five facts a
fresh checkout must get right before any experiment is worth running.
"""

from __future__ import annotations

import traceback
from typing import Callable, Dict, List, Tuple


def _check_crypto() -> None:
    from repro.crypto.aes import Aes128

    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    if Aes128(key).encrypt_block(plaintext) != expected:
        raise AssertionError("AES-128 does not match FIPS-197")


def _check_correction() -> None:
    from repro.core.synergy import SynergyMemory
    from repro.dimm.faults import ChipFault, FaultKind

    memory = SynergyMemory(64)
    memory.write(0, b"selfcheck".ljust(64, b"\x00"))
    memory.dimm.inject_fault(4, ChipFault(FaultKind.WHOLE_CHIP, seed=1))
    memory.tree.cache.clear()
    if memory.read(0)[:9] != b"selfcheck":
        raise AssertionError("single-chip correction failed")


def _check_attack_detection() -> None:
    from repro.core.synergy import SynergyMemory
    from repro.secure.errors import AttackDetected

    memory = SynergyMemory(64)
    memory.write(0, b"victim".ljust(64, b"\x00"))
    lanes = [bytearray(lane) for lane in memory.dimm.read_line(0)]
    lanes[0][0] ^= 1
    lanes[5][0] ^= 1
    memory.dimm.write_line(0, [bytes(lane) for lane in lanes])
    memory.tree.cache.clear()
    try:
        memory.read(0)
    except AttackDetected:
        return
    raise AssertionError("multi-chip tamper not detected")


def _check_performance_ordering() -> None:
    from repro.secure.designs import SGX, SGX_O, SYNERGY
    from repro.sim.config import SystemConfig
    from repro.sim.runner import run_workload

    config = SystemConfig(accesses_per_core=1_200)
    ipc = {
        design.name: run_workload(design, "mcf", config).ipc
        for design in (SGX, SGX_O, SYNERGY)
    }
    if not ipc["Synergy"] > ipc["SGX_O"] > ipc["SGX"]:
        raise AssertionError("design ordering broken: %r" % ipc)


def _check_reliability_ordering() -> None:
    from repro.reliability.montecarlo import (
        MonteCarloConfig,
        simulate_failure_probability,
    )
    from repro.reliability.schemes import (
        CHIPKILL_SCHEME,
        SECDED_SCHEME,
        SYNERGY_SCHEME,
    )

    config = MonteCarloConfig(devices=100_000)
    secded = simulate_failure_probability(SECDED_SCHEME, config)
    chipkill = simulate_failure_probability(CHIPKILL_SCHEME, config)
    synergy = simulate_failure_probability(SYNERGY_SCHEME, config)
    if not secded > chipkill > synergy:
        raise AssertionError(
            "scheme ordering broken: %.2e / %.2e / %.2e"
            % (secded, chipkill, synergy)
        )


CHECKS: List[Tuple[str, Callable[[], None]]] = [
    ("crypto (FIPS-197 vector)", _check_crypto),
    ("functional correction (chip kill)", _check_correction),
    ("attack detection (multi-chip tamper)", _check_attack_detection),
    ("timing plane (Synergy > SGX_O > SGX)", _check_performance_ordering),
    ("reliability plane (SECDED > Chipkill > Synergy)", _check_reliability_ordering),
]


def selfcheck(quiet: bool = False) -> Dict[str, str]:
    """Run all checks; returns {name: 'ok'|'FAILED: ...'}.

    A failing check must not abort the survey — every plane gets reported —
    but interpreter-exit signals propagate, and the captured traceback rides
    in the report so a failure is diagnosable from the returned dict alone.
    """
    results: Dict[str, str] = {}
    for name, check in CHECKS:
        try:
            check()
            results[name] = "ok"
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:  # lint-ok: H301 survey semantics: report every plane
            results[name] = "FAILED: %s\n%s" % (error, traceback.format_exc())
        if not quiet:
            print("  [%-4s] %s" % ("ok" if results[name] == "ok" else "FAIL", name))
    if not quiet:
        good = sum(1 for value in results.values() if value == "ok")
        print("%d/%d checks passed" % (good, len(results)))
    return results
