"""Whole-run execution planning: global cell dedup + makespan-aware dispatch.

A full evaluation run (``synergy-repro all``) regenerates 16 tables and
figures whose performance grids overlap heavily — the SGX_O/SGX/Synergy
baseline recurs in Figs. 8/9/10, Fig. 12's two-channel leg, and the
monolithic halves of Figs. 13/14. The legacy path recovers that overlap
only opportunistically, one figure at a time, through cache hits; every
figure still pays its own fan-out spin-up and its own straggler tail.

The planner turns the run inside out:

1. **Enumerate** — each experiment declares the ``(design, workload,
   config, seed)`` cells it will ask ``run_suite`` for, as canonical
   :class:`CellSpec` records whose identity is exactly the run-cache key
   (``sim.runner.cell_key``).
2. **Dedup** — cells are merged across experiments into one unique work
   list (first-request order), and cells already present in the context
   memo or the on-disk cache are dropped via *silent* probes (no
   hit/miss counting: the assembly phase owns the counters).
3. **Dispatch** — the remaining cells run in a *single* fan-out through
   the persistent pool, ordered longest-processing-time-first by a cost
   model fed from recorded wall times (the fingerprint-free timing
   sidecar; cold cells fall back to a scale-derived estimate). LPT +
   ``chunksize=1`` dynamic scheduling minimises the makespan tail.
4. **Assemble** — the figures then run unchanged; every grid cell they
   request is a memo/cache hit, so their outputs are bit-identical to
   the legacy path (cells are pure functions of their key, and hits
   round-trip through the same JSON payloads).

Under the invariant sanitizer the planner stands down entirely: sanitize
runs exist to recompute every cell through the full legacy path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.sanitizer import get_sanitizer
from repro.harness.scales import Scale, resolve_scale
from repro.parallel import resolve_cache, resolve_jobs
from repro.parallel.runcache import RunCache
from repro.secure.designs import (
    IVEC,
    LOTECC,
    LOTECC_COALESCED,
    NON_SECURE,
    SGX,
    SGX_O,
    SGX_O_SPLIT,
    SYNERGY,
    SYNERGY_DEDICATED,
    SYNERGY_SPLIT,
    SecureDesign,
)
from repro.sim.config import SystemConfig
from repro.sim.energy import SystemEnergyParams
from repro.sim.runner import cell_cost_key, cell_key, run_cells
from repro.simcontext import current_context
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class CellSpec:
    """One grid cell a figure will request: the planner's unit of work."""

    design: SecureDesign
    workload: Union[str, WorkloadProfile]
    config: SystemConfig
    energy: Optional[SystemEnergyParams] = None
    seed: Optional[int] = None

    @property
    def label(self) -> str:
        name = (
            self.workload
            if isinstance(self.workload, str)
            else self.workload.name
        )
        return "%s/%s" % (self.design.name, name)

    def key(self) -> str:
        """Run-cache identity — what dedup and the figures agree on."""
        return cell_key(
            self.design, self.workload, self.config, self.energy, self.seed
        )

    def cost_key(self) -> str:
        """Fingerprint-free identity for recorded wall times."""
        return cell_cost_key(
            self.design, self.workload, self.config, self.energy, self.seed
        )

    def task(self) -> Tuple:
        """The ``sim.runner.run_cells`` task tuple."""
        return (self.design, self.workload, self.config, self.energy, self.seed)


# ---------------------------------------------------------------------------
# Cell enumeration: one source per experiment that fans out grid cells.
# Table/arithmetic experiments (table1-3, sdc, correction_latency,
# selfcheck) and the internally-sharded Monte-Carlo figure (fig11)
# contribute none — they are cheap or already fanned out.
# ---------------------------------------------------------------------------


def _grid(
    designs: Sequence[SecureDesign],
    scale: Scale,
    channels: int = 2,
) -> List[CellSpec]:
    # Late import: experiments.py owns the scale->workloads/config mapping
    # (and imports this module lazily for the "all" path).
    from repro.harness.experiments import _config, _workloads

    config = _config(scale, channels)
    return [
        CellSpec(design, workload, config)
        for design in designs
        for workload in _workloads(scale)
    ]


def _cells_fig6(scale: Scale) -> List[CellSpec]:
    return _grid([SGX_O, SGX, NON_SECURE], scale)


def _cells_headline(scale: Scale) -> List[CellSpec]:
    # Figs. 8, 9 and 10 share one table: SGX_O / SGX / Synergy at 2 ch.
    return _grid([SGX_O, SGX, SYNERGY], scale)


def _cells_fig12(scale: Scale) -> List[CellSpec]:
    return [
        cell
        for channels in (2, 4, 8)
        for cell in _grid([SGX_O, SGX, SYNERGY], scale, channels)
    ]


def _cells_fig13(scale: Scale) -> List[CellSpec]:
    return _grid([SGX_O, SYNERGY], scale) + _grid(
        [SGX_O_SPLIT, SYNERGY_SPLIT], scale
    )


def _cells_fig14(scale: Scale) -> List[CellSpec]:
    return _grid([SGX_O, SYNERGY], scale) + _grid(
        [SGX, SYNERGY_DEDICATED], scale
    )


def _cells_fig16(scale: Scale) -> List[CellSpec]:
    return _grid([SGX_O, IVEC, SYNERGY], scale)


def _cells_fig17(scale: Scale) -> List[CellSpec]:
    return _grid([SGX_O, LOTECC, LOTECC_COALESCED, SYNERGY], scale)


#: experiment name -> cell source. Must stay in lock-step with the figure
#: functions in ``harness.experiments`` — the drift guard is the
#: assembly-executes-zero-cells test in ``tests/test_plan.py``.
CELL_SOURCES: Dict[str, Callable[[Scale], List[CellSpec]]] = {
    "fig6": _cells_fig6,
    "fig8": _cells_headline,
    "fig9": _cells_headline,
    "fig10": _cells_headline,
    "fig12": _cells_fig12,
    "fig13": _cells_fig13,
    "fig14": _cells_fig14,
    "fig16": _cells_fig16,
    "fig17": _cells_fig17,
}


@dataclass
class ExecutionPlan:
    """The deduped whole-run work list for a set of experiments."""

    experiments: Tuple[str, ...]
    scale: Scale
    #: Unique cells, in first-request order across the experiment list.
    cells: List[CellSpec]
    #: Total cells the experiments will request, duplicates included.
    requested: int
    #: Cells each experiment contributes (before dedup).
    per_experiment: Dict[str, int] = field(default_factory=dict)

    @property
    def unique(self) -> int:
        return len(self.cells)

    @property
    def deduped(self) -> int:
        """Cells the global dedup removed from the work list."""
        return self.requested - self.unique


def plan_experiments(
    names: Sequence[str], scale: object = None
) -> ExecutionPlan:
    """Enumerate and globally dedup every cell the experiments will need."""
    scale = resolve_scale(scale)
    seen: Dict[str, CellSpec] = {}
    requested = 0
    per_experiment: Dict[str, int] = {}
    for name in names:
        source = CELL_SOURCES.get(name)
        cells = source(scale) if source is not None else []
        per_experiment[name] = len(cells)
        requested += len(cells)
        for cell in cells:
            seen.setdefault(cell.key(), cell)
    return ExecutionPlan(
        experiments=tuple(names),
        scale=scale,
        cells=list(seen.values()),
        requested=requested,
        per_experiment=per_experiment,
    )


# ---------------------------------------------------------------------------
# Cost model + LPT ordering
# ---------------------------------------------------------------------------

#: Cold-cell fallback: seconds per simulated access (per core), calibrated
#: loosely against quick-scale runs. Only *relative* magnitudes matter —
#: the estimate seeds an ordering, never a result.
_SECONDS_PER_ACCESS = 5e-5


def estimate_cell_seconds(cell: CellSpec) -> float:
    """Scale-derived cost estimate for a never-measured cell."""
    config = cell.config
    return _SECONDS_PER_ACCESS * config.accesses_per_core * config.num_cores


@dataclass
class CostModel:
    """Per-cell wall-time estimates: recorded timings, else scale-derived.

    Recorded timings come from the run cache's fingerprint-free sidecar
    (``RunCache.timing``), written every time a cell executes — so the
    model improves monotonically and survives code changes, sessions and
    processes.
    """

    cache: Optional[RunCache] = None

    def estimate(self, cell: CellSpec) -> float:
        if self.cache is not None:
            recorded = self.cache.timing(cell.cost_key())
            if recorded is not None and recorded > 0:
                return recorded
        return estimate_cell_seconds(cell)


def lpt_order(
    cells: Sequence[CellSpec],
    cost: Callable[[CellSpec], float],
) -> List[CellSpec]:
    """Longest-processing-time-first schedule of ``cells``.

    With ``chunksize=1`` dynamic dispatch, submitting the most expensive
    cells first is the classic LPT list schedule: no straggler can start
    last, bounding the makespan at (4/3 - 1/3m) x optimal. Ties break on
    (label, key) so the order — and therefore the progress stream — is
    deterministic whatever the cost table says.
    """
    return sorted(cells, key=lambda c: (-cost(c), c.label, c.key()))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _dispatch_pending(
    cells: Sequence[CellSpec],
    jobs: int,
    cache: object,
    summary: Dict[str, object],
) -> Dict[str, object]:
    """Probe, LPT-order and execute the not-yet-cached subset of ``cells``.

    Probes are silent (``RunCache.has`` / a memo peek) so the assembly
    phase's hit/miss counters match the legacy path.
    """
    run_cache = resolve_cache(cache)
    run_memo = current_context().run_memo
    pending: List[CellSpec] = []
    for cell in cells:
        key = cell.key()
        if run_memo.get(key) is not None:
            continue
        if run_cache is not None and run_cache.has(key):
            continue
        pending.append(cell)
    summary["cells_pending"] = len(pending)
    if not pending:
        return summary
    model = CostModel(run_cache)
    ordered = lpt_order(pending, model.estimate)
    run_cells(
        [cell.task() for cell in ordered],
        labels=[cell.label for cell in ordered],
        jobs=jobs,
        cache=run_cache if run_cache is not None else False,
    )
    return summary


def execute_plan(
    plan: ExecutionPlan,
    jobs: Optional[int] = None,
    cache: object = None,
) -> Dict[str, object]:
    """Dispatch a plan's not-yet-cached cells in one LPT-ordered fan-out.

    Returns a summary dict (requested/unique/pending counts, jobs) for
    reporting; figure outputs come later, from the figures themselves.

    Under the sanitizer this is a no-op: sanitize runs must recompute
    every cell through ``run_suite``'s checked path.
    """
    jobs = resolve_jobs(jobs)
    summary: Dict[str, object] = {
        "experiments": list(plan.experiments),
        "scale": plan.scale.name,
        "cells_requested": plan.requested,
        "cells_unique": plan.unique,
        "cells_deduped": plan.deduped,
        "cells_pending": 0,
        "jobs": jobs,
    }
    if get_sanitizer() is not None:
        summary["skipped"] = "sanitizer"
        return summary
    return _dispatch_pending(plan.cells, jobs, cache, summary)


def execute_cells(
    cells: Sequence[CellSpec],
    jobs: Optional[int] = None,
    cache: object = None,
) -> Dict[str, object]:
    """Dedup and dispatch an ad-hoc cell list (no experiment registry).

    The prefetch entry point for callers that already know their grid —
    e.g. ``grid_experiment``'s multi-seed sweep. Same probe/LPT/dispatch
    path and sanitizer stand-down as :func:`execute_plan`.
    """
    jobs = resolve_jobs(jobs)
    seen: Dict[str, CellSpec] = {}
    for cell in cells:
        seen.setdefault(cell.key(), cell)
    unique = list(seen.values())
    summary: Dict[str, object] = {
        "cells_requested": len(cells),
        "cells_unique": len(unique),
        "cells_deduped": len(cells) - len(unique),
        "cells_pending": 0,
        "jobs": jobs,
    }
    if get_sanitizer() is not None:
        summary["skipped"] = "sanitizer"
        return summary
    return _dispatch_pending(unique, jobs, cache, summary)


def run_all_experiments(
    scale: object = None,
    quiet: bool = True,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    plan: bool = True,
) -> Dict[str, object]:
    """Run every registered experiment, planner-prefetched by default.

    The ``run_experiment("all")`` entry point: plans and dispatches the
    global unique-cell list once, then assembles each figure in name
    order exactly as the legacy loop would. Returns ``{name: output}``
    plus a ``"plan"`` summary entry when planning ran.
    """
    from repro.harness.experiments import EXPERIMENTS, run_experiment
    from repro.parallel import overridden

    scale = resolve_scale(scale)
    names = sorted(EXPERIMENTS)
    changes: Dict[str, object] = {}
    if jobs is not None:
        changes["jobs"] = max(1, int(jobs))
    if cache is not None:
        changes["cache_enabled"] = bool(cache)
    out: Dict[str, object] = {}
    with overridden(**changes):
        if plan:
            execution = plan_experiments(names, scale)
            out["plan"] = execute_plan(execution)
        for name in names:
            out[name] = run_experiment(name, scale=scale, quiet=quiet)
    return out
