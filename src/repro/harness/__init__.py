"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.harness.scales` — quick/default/full scale presets.
* :mod:`repro.harness.report` — ASCII rendering of series and tables.
* :mod:`repro.harness.experiments` — ``fig6`` ... ``fig17``, ``table1``
  ... ``table3`` plus the ablation studies; each prints the paper-style
  rows and returns the raw numbers.
* :mod:`repro.harness.cli` — the ``synergy-repro`` command-line entry.
"""

from repro.harness.scales import Scale, resolve_scale

__all__ = ["Scale", "resolve_scale"]
