"""Command-line entry point: ``synergy-repro`` / ``python -m repro.harness.cli``.

Examples::

    synergy-repro fig8                        # headline performance figure
    synergy-repro fig8 --jobs 4               # fan grid cells over 4 processes
    synergy-repro fig11 --scale full          # reliability, full Monte-Carlo
    synergy-repro all --scale quick --no-cache  # everything, no result reuse
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import render_execution_stats
from repro.parallel import EXECUTION_STATS, default_jobs


def main(argv: Optional[List[str]] = None) -> int:
    """Run one (or all) experiments from the command line."""
    parser = argparse.ArgumentParser(
        prog="synergy-repro",
        description="Regenerate the tables and figures of SYNERGY (HPCA 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="quick | default | full (or set REPRO_SCALE)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for grid/Monte-Carlo fan-out "
        "(default: REPRO_JOBS or 1; this machine has %d CPU(s))"
        % default_jobs(),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not populate the on-disk run cache",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    cache = False if args.no_cache else None
    for name in names:
        print("=" * 72)
        print("Experiment:", name)
        print("=" * 72)
        EXECUTION_STATS.reset()
        started = time.time()
        run_experiment(name, scale=args.scale, jobs=args.jobs, cache=cache)
        print("[%s finished in %.1fs]" % (name, time.time() - started))
        if EXECUTION_STATS.cells_executed or EXECUTION_STATS.cache_hits:
            print(render_execution_stats(EXECUTION_STATS))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
