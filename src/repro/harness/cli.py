"""Command-line entry point: ``synergy-repro`` / ``python -m repro.harness.cli``.

Examples::

    synergy-repro fig8                        # headline performance figure
    synergy-repro fig8 --jobs 4               # fan grid cells over 4 processes
    synergy-repro fig11 --scale full          # reliability, full Monte-Carlo
    synergy-repro all --scale quick --no-cache  # everything, no result reuse
    synergy-repro grid --designs SGX_O,Synergy --seeds 1,2  # ad-hoc IPC grid
    synergy-repro serve --port 8642 --jobs 4  # long-running job service
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.analysis.sanitizer import ENV_VAR as SANITIZE_ENV, configure_sanitizer
from repro.harness.experiments import EXPERIMENTS, run_experiment, run_spec
from repro.harness.spec import GRID_EXPERIMENT, ExperimentSpec, SpecError
from repro.harness.report import render_execution_stats, render_metrics_summary
from repro.parallel import EXECUTION_STATS, default_jobs
from repro.telemetry import (
    TELEMETRY_AGGREGATE,
    configure,
    configure_tracer,
    get_tracer,
    metrics_out_from_env,
    trace_out_from_env,
    write_metrics,
)


def main(argv: Optional[List[str]] = None) -> int:
    """Run one (or all) experiments from the command line."""
    parser = argparse.ArgumentParser(
        prog="synergy-repro",
        description="Regenerate the tables and figures of SYNERGY (HPCA 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", GRID_EXPERIMENT, "serve"],
        help="which table/figure to regenerate; 'grid' runs an ad-hoc "
        "design x workload IPC grid; 'serve' starts the job service",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="quick | default | full (or set REPRO_SCALE)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for grid/Monte-Carlo fan-out "
        "(default: REPRO_JOBS or 1; this machine has %d CPU(s))"
        % default_jobs(),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not populate the on-disk run cache",
    )
    parser.add_argument(
        "--plan",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="('all' only) plan the whole run first: dedup the grid cells "
        "every figure needs and execute the unique set in one fan-out "
        "before assembling figures (--no-plan restores the legacy "
        "figure-at-a-time loop)",
    )
    parser.add_argument(
        "--metrics-out",
        default=metrics_out_from_env(),
        metavar="PATH",
        help="write the merged telemetry snapshot as JSON "
        "(default: a path in REPRO_METRICS, if set)",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable telemetry collection (same as REPRO_METRICS=0)",
    )
    parser.add_argument(
        "--trace-out",
        default=trace_out_from_env(),
        metavar="PATH",
        help="enable event tracing and write it as JSONL "
        "(per-process: use --jobs 1 for a complete simulation trace; "
        "default: REPRO_TRACE, if set)",
    )
    parser.add_argument(
        "--designs",
        default=None,
        metavar="A,B",
        help="(grid only) comma-separated design names to sweep",
    )
    parser.add_argument(
        "--seeds",
        default=None,
        metavar="1,2",
        help="(grid only) comma-separated trace seeds (default: canonical)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="(serve only) interface to bind",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="(serve only) TCP port to bind (0 picks a free port)",
    )
    parser.add_argument(
        "--cache-budget-mb",
        type=int,
        default=0,
        metavar="MB",
        help="(serve only) LRU-evict the run cache down to this size "
        "after each job (0 = unlimited)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="(serve only) concurrent job slots; unique specs run in "
        "parallel, each in its own simulation context",
    )
    parser.add_argument(
        "--worker-processes",
        action="store_true",
        help="(serve only) run each job in a forked child process instead "
        "of a pool thread (full CPU scaling across slots)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime invariant sanitizer (same as REPRO_SANITIZE=1; "
        "checks DRAM timing legality, reconstruction uniqueness, counter-tree "
        "consistency, and cache-replay fidelity at some simulation-speed cost)",
    )
    args = parser.parse_args(argv)

    if args.sanitize:
        # Set the env var too so --jobs worker processes inherit the switch.
        os.environ[SANITIZE_ENV] = "1"
        configure_sanitizer(True)
    if args.no_metrics:
        configure(False)
    if args.trace_out:
        configure_tracer(enabled=True, run_id=args.experiment)

    cache = False if args.no_cache else None
    if args.experiment == "serve":
        return _serve(args)
    if args.experiment == GRID_EXPERIMENT:
        return _grid(args, cache)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    TELEMETRY_AGGREGATE.reset()
    plan_summary = None
    if args.experiment == "all" and args.plan:
        plan_summary = _prefetch(names, args, cache)
    for name in names:
        print("=" * 72)
        print("Experiment:", name)
        print("=" * 72)
        EXECUTION_STATS.reset()
        started = time.perf_counter()
        run_experiment(name, scale=args.scale, jobs=args.jobs, cache=cache)
        print("[%s finished in %.1fs]" % (name, time.perf_counter() - started))
        if EXECUTION_STATS.cells_executed or EXECUTION_STATS.cache_hits:
            print(render_execution_stats(EXECUTION_STATS))
        print()
    if TELEMETRY_AGGREGATE:
        print(render_metrics_summary(TELEMETRY_AGGREGATE))
        print()
    if args.metrics_out:
        path = write_metrics(
            args.metrics_out,
            run={
                "experiments": names,
                "scale": args.scale,
                "jobs": args.jobs,
                "plan": plan_summary,
                "execution": EXECUTION_STATS.as_dict(),
            },
        )
        print("[metrics written to %s]" % path)
    if args.trace_out:
        count = get_tracer().write_jsonl(args.trace_out)
        print("[%d trace event(s) written to %s]" % (count, args.trace_out))
    return 0


def _prefetch(names: List[str], args: argparse.Namespace, cache) -> dict:
    """Plan + execute the whole run's unique cells in one fan-out."""
    from repro.harness.plan import execute_plan, plan_experiments

    print("=" * 72)
    print("Planned prefetch (whole-run dedup; --no-plan disables)")
    print("=" * 72)
    EXECUTION_STATS.reset()
    started = time.perf_counter()
    plan = plan_experiments(names, args.scale)
    summary = execute_plan(plan, jobs=args.jobs, cache=cache)
    print(
        "[plan: %d cells requested, %d unique (%d deduped), "
        "%d pending, jobs=%d]"
        % (
            summary["cells_requested"],
            summary["cells_unique"],
            summary["cells_deduped"],
            summary["cells_pending"],
            summary["jobs"],
        )
    )
    print("[prefetch finished in %.1fs]" % (time.perf_counter() - started))
    if EXECUTION_STATS.cells_executed:
        print(render_execution_stats(EXECUTION_STATS))
    print()
    return summary


def _comma_list(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [item.strip() for item in raw.split(",") if item.strip()]


def _grid(args: argparse.Namespace, cache: Optional[bool]) -> int:
    """Run an ad-hoc design x workload grid through the spec path."""
    try:
        seeds = tuple(int(item) for item in _comma_list(args.seeds))
    except ValueError:
        print("error: --seeds must be comma-separated integers", file=sys.stderr)
        return 2
    spec = ExperimentSpec(
        experiment=GRID_EXPERIMENT,
        scale=args.scale or "default",
        designs=tuple(_comma_list(args.designs)),
        seeds=seeds,
        jobs=args.jobs or 0,
    )
    EXECUTION_STATS.reset()
    started = time.perf_counter()
    try:
        result = run_spec(spec, quiet=True, cache=cache)
    except SpecError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        "[grid %s finished in %.1fs]"
        % (spec.cache_key()[:12], time.perf_counter() - started),
        file=sys.stderr,
    )
    return 0


def _serve(args: argparse.Namespace) -> int:
    """Start the long-running experiment job service."""
    import asyncio

    from repro.service.server import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        spec_jobs=args.jobs or 1,
        workers=max(1, args.workers),
        worker_processes=args.worker_processes,
        cache_budget_bytes=max(0, args.cache_budget_mb) * (1 << 20),
        cache=not args.no_cache,
    )
    try:
        asyncio.run(serve(config))
    except KeyboardInterrupt:
        print("\n[service stopped]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
