"""Command-line entry point: ``synergy-repro`` / ``python -m repro.harness.cli``.

Examples::

    synergy-repro fig8                 # headline performance figure
    synergy-repro fig11 --scale full   # reliability at full Monte-Carlo scale
    synergy-repro all --scale quick    # everything, smoke scale
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS
from repro.harness.scales import resolve_scale

#: Experiments that take no scale argument (pure tables/arithmetic).
_UNSCALED = {"table1", "table2", "table3", "sdc", "correction_latency", "selfcheck"}


def main(argv: Optional[List[str]] = None) -> int:
    """Run one (or all) experiments from the command line."""
    parser = argparse.ArgumentParser(
        prog="synergy-repro",
        description="Regenerate the tables and figures of SYNERGY (HPCA 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="quick | default | full (or set REPRO_SCALE)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        function = EXPERIMENTS[name]
        print("=" * 72)
        print("Experiment:", name)
        print("=" * 72)
        started = time.time()
        if name in _UNSCALED:
            function()
        else:
            function(resolve_scale(args.scale))
        print("[%s finished in %.1fs]" % (name, time.time() - started))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
