"""Command-line entry point: ``synergy-repro`` / ``python -m repro.harness.cli``.

Examples::

    synergy-repro fig8                        # headline performance figure
    synergy-repro fig8 --jobs 4               # fan grid cells over 4 processes
    synergy-repro fig11 --scale full          # reliability, full Monte-Carlo
    synergy-repro all --scale quick --no-cache  # everything, no result reuse
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.analysis.sanitizer import ENV_VAR as SANITIZE_ENV, configure_sanitizer
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import render_execution_stats, render_metrics_summary
from repro.parallel import EXECUTION_STATS, default_jobs
from repro.telemetry import (
    TELEMETRY_AGGREGATE,
    configure,
    configure_tracer,
    get_tracer,
    metrics_out_from_env,
    trace_out_from_env,
    write_metrics,
)


def main(argv: Optional[List[str]] = None) -> int:
    """Run one (or all) experiments from the command line."""
    parser = argparse.ArgumentParser(
        prog="synergy-repro",
        description="Regenerate the tables and figures of SYNERGY (HPCA 2018).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="quick | default | full (or set REPRO_SCALE)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for grid/Monte-Carlo fan-out "
        "(default: REPRO_JOBS or 1; this machine has %d CPU(s))"
        % default_jobs(),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not populate the on-disk run cache",
    )
    parser.add_argument(
        "--metrics-out",
        default=metrics_out_from_env(),
        metavar="PATH",
        help="write the merged telemetry snapshot as JSON "
        "(default: a path in REPRO_METRICS, if set)",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable telemetry collection (same as REPRO_METRICS=0)",
    )
    parser.add_argument(
        "--trace-out",
        default=trace_out_from_env(),
        metavar="PATH",
        help="enable event tracing and write it as JSONL "
        "(per-process: use --jobs 1 for a complete simulation trace; "
        "default: REPRO_TRACE, if set)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime invariant sanitizer (same as REPRO_SANITIZE=1; "
        "checks DRAM timing legality, reconstruction uniqueness, counter-tree "
        "consistency, and cache-replay fidelity at some simulation-speed cost)",
    )
    args = parser.parse_args(argv)

    if args.sanitize:
        # Set the env var too so --jobs worker processes inherit the switch.
        os.environ[SANITIZE_ENV] = "1"
        configure_sanitizer(True)
    if args.no_metrics:
        configure(False)
    if args.trace_out:
        configure_tracer(enabled=True, run_id=args.experiment)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    cache = False if args.no_cache else None
    TELEMETRY_AGGREGATE.reset()
    for name in names:
        print("=" * 72)
        print("Experiment:", name)
        print("=" * 72)
        EXECUTION_STATS.reset()
        started = time.perf_counter()
        run_experiment(name, scale=args.scale, jobs=args.jobs, cache=cache)
        print("[%s finished in %.1fs]" % (name, time.perf_counter() - started))
        if EXECUTION_STATS.cells_executed or EXECUTION_STATS.cache_hits:
            print(render_execution_stats(EXECUTION_STATS))
        print()
    if TELEMETRY_AGGREGATE:
        print(render_metrics_summary(TELEMETRY_AGGREGATE))
        print()
    if args.metrics_out:
        path = write_metrics(
            args.metrics_out,
            run={
                "experiments": names,
                "scale": args.scale,
                "jobs": args.jobs,
                "execution": EXECUTION_STATS.as_dict(),
            },
        )
        print("[metrics written to %s]" % path)
    if args.trace_out:
        count = get_tracer().write_jsonl(args.trace_out)
        print("[%d trace event(s) written to %s]" % (count, args.trace_out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
