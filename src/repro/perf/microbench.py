"""Deterministic microbenchmarks for the simulator's hot paths.

Each case exercises exactly one per-event code path in isolation — the
paths ``tools/profile_run.py`` shows dominating end-to-end runtime — with
a fixed synthetic workload (LCG address streams, no wall-clock or RNG
dependence), so per-op timings are comparable across runs and across code
versions:

* ``cache_access``      — :class:`SetAssociativeCache` lookup/allocate
* ``controller_schedule`` — enqueue + FR-FCFS scheduling to completion
* ``scheduler_choose_indexed`` — the indexed FR-FCFS chooser in isolation
  (``BankIndexedPool`` add/choose/remove churn, no DRAM timing)
* ``rob_advance``       — trace-driven core fetch/retire with resolved reads
* ``miss_expansion``    — secure-engine metadata expansion of LLC misses
  (the production epoch-deferred fused path; ``miss_expansion_batch`` is
  the columnar numpy-batch driver, ``miss_expansion_reference`` the
  retained scalar oracle they are measured against)
* ``telemetry_record``  — counter/histogram recording through a registry
* ``context_scope``     — :func:`repro.simcontext.sim_context` enter/exit
  plus context-resolved ``get_registry`` lookups: the dispatch overhead the
  scoped-context refactor added to every hot-path metric touch
* ``pool_dispatch``     — repeated small ``parallel_map`` fan-outs through
  the shared persistent pool (spawn amortisation + per-map round-trip)
* ``trace_generate``    — vectorised workload-trace synthesis (sphinx3, 50k)
* ``trace_generate_reference`` — the retained scalar trace generator on the
  same profile/length, kept as the speedup baseline for ``trace_generate``

Cases return their op count; the harness times them (best-of-N
``perf_counter``, garbage collection suspended per round as ``timeit``
does) and reports microseconds per op. Consumed by the pytest wrappers in
``benchmarks/micro`` and by ``tools/bench_snapshot.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List

#: LCG constants (glibc); enough quality for address-stream mixing.
_LCG_A = 1103515245
_LCG_C = 12345
_LCG_M = 1 << 31


def _addresses(count: int, footprint: int, seed: int = 17) -> List[int]:
    """A reproducible pseudo-random line-address stream."""
    state = seed
    out = []
    append = out.append
    for _ in range(count):
        state = (state * _LCG_A + _LCG_C) % _LCG_M
        append(state % footprint)
    return out


# ---------------------------------------------------------------------------
# Cases — each builds its state, runs the hot loop, returns the op count.
# ---------------------------------------------------------------------------


def cache_access() -> int:
    """LLC-shaped lookups over a footprint 2x the cache (hit/miss mix)."""
    from repro.cache.setassoc import SetAssociativeCache

    cache = SetAssociativeCache(4096, 8, "microbench")
    stream = _addresses(50_000, 8192)
    access = cache.access
    write = False
    for line in stream:
        access(line, write)
        write = not write
    return len(stream)


def controller_schedule() -> int:
    """Enqueue a request stream and schedule it to completion."""
    from repro.dram.controller import MemoryController, RequestKind
    from repro.dram.timing import MemoryConfig

    controller = MemoryController(MemoryConfig())
    stream = _addresses(20_000, 1 << 22, seed=29)
    enqueue = controller.enqueue
    read = RequestKind.READ
    write = RequestKind.WRITE
    arrival = 0
    for index, line in enumerate(stream):
        kind = write if index % 3 == 0 else read
        enqueue(kind, line, arrival)
        arrival += 2
    controller.process()
    return len(stream)


class _SchedRequest:
    """Minimal request shape the scheduler index needs (bank/row/arrival)."""

    __slots__ = ("flat_bank", "row", "arrival", "is_write")

    def __init__(self, flat_bank: int, row: int, arrival: int, is_write: bool):
        self.flat_bank = flat_bank
        self.row = row
        self.arrival = arrival
        self.is_write = is_write


def scheduler_choose_indexed() -> int:
    """Indexed FR-FCFS decisions over an LCG bank/row stream.

    Isolates the ``BankIndexedPool`` + ``choose_indexed`` data structures
    from DRAM timing: every step enqueues one request and schedules one,
    committing the chosen request's row as the bank's new open row.
    """
    from repro.dram.scheduler import BankIndexedPool, FrFcfsScheduler

    banks = 32
    open_rows = [-1] * banks
    read_pool = BankIndexedPool(open_rows)
    write_pool = BankIndexedPool(open_rows)
    scheduler = FrFcfsScheduler(drain_high=40, drain_low=20)
    stream = _addresses(60_000, 1 << 20, seed=61)
    choose = scheduler.choose_indexed
    decisions = 0
    for arrival, value in enumerate(stream):
        is_write = (value & 7) < 3
        request = _SchedRequest(value & 31, (value >> 5) & 255, arrival, is_write)
        (write_pool if is_write else read_pool).add(request)
        chosen = choose(read_pool, write_pool)
        if chosen is None:
            continue
        decisions += 1
        (write_pool if chosen.is_write else read_pool).remove(chosen)
        flat_bank = chosen.flat_bank
        if open_rows[flat_bank] != chosen.row:
            open_rows[flat_bank] = chosen.row
            read_pool.notify_row_change(flat_bank, chosen.row)
            write_pool.notify_row_change(flat_bank, chosen.row)
    return decisions


def rob_advance() -> int:
    """Drive one core through a synthetic trace with instantly-resolved reads.

    The trace is assembled columnarly (``Trace.from_arrays``) so the case
    times the batch-advance stepper, not 30k ``TraceRecord`` constructions;
    the stream (gap = line % 7, write when line % 4 == 0) matches the
    record-based construction this case used before it was columnar.
    """
    import numpy as np

    from repro.cpu.rob import AccessHandle, CoreModel
    from repro.cpu.trace import Trace

    lines = np.array(_addresses(30_000, 1 << 20, seed=41), dtype=np.int64)
    trace = Trace.from_arrays(
        lines % 7, (lines % 4 == 0).astype(np.int8), lines, "microbench"
    )

    def read_fn(_line: int, cpu_time: float, _core: int) -> AccessHandle:
        return AccessHandle(cpu_time + 200.0)

    def write_fn(_line: int, _cpu_time: float, _core: int) -> None:
        return None

    core = CoreModel(0, trace, read_fn, write_fn)
    while not core.done:
        core.advance()
    return len(trace)


def _make_expansion_engine():
    from repro.cache.hierarchy import CacheHierarchy
    from repro.dram.controller import MemoryController
    from repro.dram.timing import MemoryConfig
    from repro.secure.designs import SYNERGY
    from repro.secure.timing_engine import SecureTimingEngine

    hierarchy = CacheHierarchy()
    controller = MemoryController(MemoryConfig())
    return SecureTimingEngine(SYNERGY, hierarchy, controller, 1 << 24)


def miss_expansion() -> int:
    """Secure-engine metadata expansion (Synergy) — the production path.

    The epoch-deferred fused expansion with a flush every 64 misses,
    mirroring how ``SystemSimulator`` drives the engine (expansions
    buffer per epoch, one ``enqueue_batch`` flush at resolve)."""
    engine = _make_expansion_engine()
    engine.begin_deferred()
    stream = _addresses(10_000, 1 << 22, seed=53)
    expand = engine.expand_read_miss_deferred
    flush = engine.flush_epoch
    when = 0
    pending = 0
    for line in stream:
        expand(line, when, 0)
        when += 10
        pending += 1
        if pending == 64:
            flush()
            pending = 0
    flush()
    return len(stream)


def miss_expansion_batch() -> int:
    """Columnar batch expansion: numpy address pass + fused per-miss walk.

    The ``secure.columnar.expand_read_misses`` driver over 1024-miss
    batches — the upper bound the per-epoch path converges to as epochs
    widen."""
    from repro.secure.columnar import expand_read_misses

    engine = _make_expansion_engine()
    engine.begin_deferred()
    stream = _addresses(10_000, 1 << 22, seed=53)
    flush = engine.flush_epoch
    when = 0
    for start in range(0, len(stream), 1024):
        chunk = stream[start : start + 1024]
        expand_read_misses(
            engine, chunk, whens=range(when, when + 10 * len(chunk), 10)
        )
        when += 10 * len(chunk)
        flush()
    return len(stream)


def miss_expansion_reference() -> int:
    """The retained scalar-oracle expansion on the same miss stream —
    the baseline ``miss_expansion`` is measured against."""
    engine = _make_expansion_engine()
    stream = _addresses(10_000, 1 << 22, seed=53)
    expand = engine.expand_read_miss
    when = 0
    for line in stream:
        expand(line, when, 0)
        when += 10
    return len(stream)


def telemetry_record() -> int:
    """Counter increments + histogram records through an enabled registry."""
    from repro.telemetry import scoped_registry

    iterations = 50_000
    with scoped_registry(enabled=True) as registry:
        counter = registry.counter("microbench.events")
        histogram = registry.histogram(
            "microbench.latency", (16, 32, 64, 128, 256, 512)
        )
        inc = counter.inc
        record = histogram.record
        value = 3
        for _ in range(iterations):
            inc()
            record(value)
            value = (value * 5 + 1) % 600
    return 2 * iterations


def context_scope() -> int:
    """Simulation-scope churn: context enter/exit + registry resolution.

    Every ``get_registry()``/``get_tracer()``/memo touch now resolves
    through ``contextvars`` instead of reading a module global; this case
    prices that dispatch — a fresh :func:`sim_context` per iteration with
    a handful of registry lookups inside, the access pattern one simulated
    cell's telemetry hooks produce in miniature. The gated hot-loop cases
    (``miss_expansion``, ``rob_advance``) bound the end-to-end cost; this
    one isolates it."""
    from repro.simcontext import sim_context
    from repro.telemetry.registry import get_registry

    entries = 10_000
    lookups_per_entry = 4
    for _ in range(entries):
        with sim_context(name="microbench"):
            for _ in range(lookups_per_entry):
                get_registry()  # lint-ok: P203 the lookup IS the payload
    return entries * (1 + lookups_per_entry)


def _pool_noop(value: int) -> int:
    """Worker-side payload for ``pool_dispatch``: pure dispatch overhead."""
    return value


def pool_dispatch() -> int:
    """Round-trip latency of the persistent pool across repeated maps.

    Times what a whole-grid run amortises: many small ``parallel_map``
    fan-outs dispatched into the *same* warm pool (spawn paid once, on
    the first map, inside the timed region — exactly the cost the
    per-call executor used to pay on every map). Serial-path comparison
    comes from the per-op numbers at jobs=1 in ``bench_snapshot``."""
    from repro.parallel import parallel_map, shutdown_pool

    maps = 20
    items = list(range(32))
    total = 0
    try:
        for _ in range(maps):
            total += len(parallel_map(_pool_noop, items, jobs=2))
    finally:
        shutdown_pool()
    return total


#: Profile/length for the trace-generation pair. The two cases must stay in
#: lock-step so ``trace_generate`` / ``trace_generate_reference`` is a
#: meaningful speedup ratio. 50k records keeps the vectorised working set
#: near cache-resident while exposing the scalar path's per-record
#: allocation/GC burden at production trace lengths — the asymmetry the
#: columnar rewrite removes. sphinx3 exercises all three locality arms
#: (sequential runs, hot-set draws, page bursts), so both generators walk
#: their full dispatch rather than one specialised branch.
_TRACE_BENCH_PROFILE = "sphinx3"
_TRACE_BENCH_ACCESSES = 50_000


def trace_generate() -> int:
    """Vectorised trace synthesis (the production ``generate_trace`` path)."""
    from repro.workloads.generator import generate_trace
    from repro.workloads.profiles import profile_by_name

    profile = profile_by_name(_TRACE_BENCH_PROFILE)
    trace = generate_trace(profile, _TRACE_BENCH_ACCESSES)
    return len(trace)


def trace_generate_reference() -> int:
    """Scalar trace synthesis — the baseline ``trace_generate`` is measured
    against (same profile, length, and record stream)."""
    from repro.workloads.generator import generate_trace_reference
    from repro.workloads.profiles import profile_by_name

    profile = profile_by_name(_TRACE_BENCH_PROFILE)
    trace = generate_trace_reference(profile, _TRACE_BENCH_ACCESSES)
    return len(trace)


CASES: Dict[str, Callable[[], int]] = {
    "cache_access": cache_access,
    "controller_schedule": controller_schedule,
    "scheduler_choose_indexed": scheduler_choose_indexed,
    "rob_advance": rob_advance,
    "miss_expansion": miss_expansion,
    "miss_expansion_batch": miss_expansion_batch,
    "miss_expansion_reference": miss_expansion_reference,
    "telemetry_record": telemetry_record,
    "context_scope": context_scope,
    "pool_dispatch": pool_dispatch,
    "trace_generate": trace_generate,
    "trace_generate_reference": trace_generate_reference,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MicroResult:
    """Best-of-N timing of one case."""

    name: str
    ops: int
    best_s: float

    @property
    def per_op_us(self) -> float:
        """Microseconds per operation (best round)."""
        return 1e6 * self.best_s / self.ops if self.ops else 0.0

    def to_payload(self) -> Dict[str, float]:
        """JSON-ready summary."""
        return {
            "ops": self.ops,
            "best_s": self.best_s,
            "per_op_us": self.per_op_us,
        }


def run_case(name: str, repeats: int = 3) -> MicroResult:
    """Time one case, best of ``repeats`` rounds.

    Garbage collection is suspended around each timed round (the same
    protocol ``timeit`` uses): the allocation-heavy cases otherwise spend
    a third of their wall time in collector sweeps triggered at arbitrary
    op boundaries, which measures the collection cadence rather than the
    code under test. Collection runs between rounds so no round starts
    with another round's garbage.
    """
    import gc

    case = CASES[name]
    best = None
    ops = 0
    was_enabled = gc.isenabled()
    try:
        for _ in range(max(1, repeats)):
            gc.collect()
            gc.disable()
            start = perf_counter()
            ops = case()
            elapsed = perf_counter() - start
            if was_enabled:
                gc.enable()
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if was_enabled:
            gc.enable()
    return MicroResult(name, ops, best or 0.0)


def run_all(repeats: int = 3) -> List[MicroResult]:
    """Time every case in name order."""
    return [run_case(name, repeats) for name in sorted(CASES)]


def _main(argv: "List[str] | None" = None) -> int:
    """CLI: time one case (or all) and print a JSON payload map.

    Exists so harnesses can time each case in a *pristine* interpreter:
    in-process timings are sensitive to what the host process imported
    first — module volume shifts the allocator layout the vectorised
    cases stream through, inflating their per-op time by tens of percent
    (see ``tools/bench_snapshot.py``, which shells out here per case).
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(description=_main.__doc__)
    parser.add_argument("--case", choices=sorted(CASES), default=None)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    results = (
        [run_case(args.case, args.repeats)]
        if args.case
        else run_all(args.repeats)
    )
    print(json.dumps({r.name: r.to_payload() for r in results}))
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
