"""Performance measurement: microbenchmarks and profiling helpers.

This package exists so the perf tooling (``benchmarks/micro``,
``tools/profile_run.py``, ``tools/bench_snapshot.py``) shares one set of
deterministic hot-path workloads instead of each inventing its own.

The case roster covers every per-event simulator path plus the two
structure-level cases CI gates on: ``scheduler_choose_indexed`` (the
indexed FR-FCFS chooser in isolation) and ``trace_generate`` (vectorised
workload synthesis, measured against its retained scalar baseline
``trace_generate_reference`` at the same profile and length).
"""

from repro.perf.microbench import CASES, MicroResult, run_all, run_case

__all__ = ["CASES", "MicroResult", "run_all", "run_case"]
