"""Performance measurement: microbenchmarks and profiling helpers.

This package exists so the perf tooling (``benchmarks/micro``,
``tools/profile_run.py``, ``tools/bench_snapshot.py``) shares one set of
deterministic hot-path workloads instead of each inventing its own.
"""

from repro.perf.microbench import CASES, MicroResult, run_all, run_case

__all__ = ["CASES", "MicroResult", "run_all", "run_case"]
