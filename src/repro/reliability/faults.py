"""Fault instances with address footprints, and overlap tests.

A fault lives on one chip and covers a rectangular footprint in the chip's
(bank, row, column) space, possibly for a bounded time window (transient
faults disappear at the next scrub). Two faults on *different* chips of a
protection group defeat chip-level correction only if their footprints
intersect — i.e. some codeword has corrupted symbols from two chips — and
their active windows overlap in time. This is the FAULTSIM methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.reliability.fitrates import FaultGranularity


@dataclass(frozen=True)
class ChipGeometry:
    """Internal organisation of one DRAM chip (for footprint arithmetic)."""

    banks: int = 8
    rows_per_bank: int = 64 * 1024
    words_per_row: int = 1024  #: 8KB row / 8B contribution per word

    @property
    def words_per_chip(self) -> int:
        """Total addressable words."""
        return self.banks * self.rows_per_bank * self.words_per_row


@dataclass(frozen=True)
class FaultInstance:
    """One fault on one chip.

    ``bank``/``row``/``column`` anchor the footprint; whether each axis is
    a single coordinate or spans everything follows from the granularity.
    ``end_hour`` is None for permanent faults (active until end of life).
    """

    chip: int
    granularity: FaultGranularity
    transient: bool
    start_hour: float
    end_hour: Optional[float]
    bank: int = 0
    row: int = 0
    column: int = 0
    bit: int = 0  #: bit position within the word (single-bit faults)

    def active_during(self, other: "FaultInstance") -> bool:
        """Do the two faults' active windows intersect?"""
        start = max(self.start_hour, other.start_hour)
        end = min(
            self.end_hour if self.end_hour is not None else float("inf"),
            other.end_hour if other.end_hour is not None else float("inf"),
        )
        return start <= end

    # -- axis coverage -----------------------------------------------------

    def covers_all_banks(self) -> bool:
        """Whole-chip-scale faults span every bank."""
        return self.granularity in (
            FaultGranularity.MULTI_BANK,
            FaultGranularity.MULTI_RANK,
        )

    def covers_all_rows(self) -> bool:
        """Column/bank/chip faults span every row of their bank(s)."""
        return self.granularity in (
            FaultGranularity.SINGLE_COLUMN,
            FaultGranularity.SINGLE_BANK,
            FaultGranularity.MULTI_BANK,
            FaultGranularity.MULTI_RANK,
        )

    def covers_all_columns(self) -> bool:
        """Row/bank/chip faults span every column of their row(s)."""
        return self.granularity in (
            FaultGranularity.SINGLE_ROW,
            FaultGranularity.SINGLE_BANK,
            FaultGranularity.MULTI_BANK,
            FaultGranularity.MULTI_RANK,
        )


def _axis_intersects(a_all: bool, a_coord: int, b_all: bool, b_coord: int) -> bool:
    if a_all or b_all:
        return True
    return a_coord == b_coord


def footprints_intersect(a: FaultInstance, b: FaultInstance) -> bool:
    """Do the two faults corrupt at least one common word address?"""
    return (
        _axis_intersects(a.covers_all_banks(), a.bank, b.covers_all_banks(), b.bank)
        and _axis_intersects(
            a.covers_all_rows(), a.row, b.covers_all_rows(), b.row
        )
        and _axis_intersects(
            a.covers_all_columns(), a.column, b.covers_all_columns(), b.column
        )
    )


def faults_overlap(a: FaultInstance, b: FaultInstance) -> bool:
    """Spatial *and* temporal overlap (the uncorrectability condition)."""
    return a.active_during(b) and footprints_intersect(a, b)
