"""Uncorrectable-error predicates for each protection scheme (Fig. 11).

A *device* is the unit Fig. 11 plots: the memory a workload's channel sees.

* SECDED — a 9-chip ECC-DIMM with (72,64) Hamming per word: corrects one
  bit per word; any multi-bit fault, or two single-bit faults meeting in
  one word, is uncorrectable.
* Chipkill — 18 lock-stepped chips (two DIMMs over two channels): corrects
  all errors confined to one chip; two chips with spatio-temporally
  overlapping faults are uncorrectable.
* Synergy — one 9-chip DIMM: MAC-detect + parity-correct over 9 chips;
  same two-chip-overlap criterion but over the 9-chip group.
* IVEC — 16-chip x4 commodity DIMM with MAC + in-line parity: corrects one
  chip of 16.

The 185x / 37x reductions of Fig. 11 follow from the group sizes: the
probability of two faulty chips grows with the square of the chips that
could pair up (Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.reliability.faults import FaultInstance, faults_overlap
from repro.reliability.fitrates import FaultGranularity


@dataclass(frozen=True)
class ProtectionScheme:
    """Failure predicate parameters for one scheme."""

    name: str
    chips: int  #: chips in one correction group (= device, Fig. 11 style)
    chip_correcting: bool  #: can it erase a whole chip's errors?

    def device_fails(self, faults: List[FaultInstance]) -> bool:
        """Does this fault history make the device fail within lifetime?"""
        if not faults:
            return False
        if self.chip_correcting:
            return self._multi_chip_overlap(faults)
        return self._secded_fails(faults)

    # -- chip-correcting schemes (Chipkill, Synergy, IVEC) -----------------

    @staticmethod
    def _multi_chip_overlap(faults: List[FaultInstance]) -> bool:
        for index, first in enumerate(faults):
            for second in faults[index + 1 :]:
                if first.chip != second.chip and faults_overlap(first, second):
                    return True
        return False

    # -- SECDED --------------------------------------------------------------

    @staticmethod
    def _secded_fails(faults: List[FaultInstance]) -> bool:
        # Any multi-bit fault corrupts >1 bit of some word: uncorrectable.
        for fault in faults:
            if fault.granularity is not FaultGranularity.SINGLE_BIT:
                return True
        # Two single-bit faults in the same word (any chips, same address).
        for index, first in enumerate(faults):
            for second in faults[index + 1 :]:
                same_word = (
                    first.bank == second.bank
                    and first.row == second.row
                    and first.column == second.column
                )
                distinct_bits = first.chip != second.chip or first.bit != second.bit
                if same_word and distinct_bits and first.active_during(second):
                    return True
        return False


SECDED_SCHEME = ProtectionScheme("SECDED", chips=9, chip_correcting=False)
CHIPKILL_SCHEME = ProtectionScheme("Chipkill", chips=18, chip_correcting=True)
SYNERGY_SCHEME = ProtectionScheme("Synergy", chips=9, chip_correcting=True)
IVEC_SCHEME = ProtectionScheme("IVEC", chips=16, chip_correcting=True)

ALL_SCHEMES = [SECDED_SCHEME, CHIPKILL_SCHEME, SYNERGY_SCHEME, IVEC_SCHEME]
