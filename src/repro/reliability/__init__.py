"""FAULTSIM-style memory reliability simulation (Fig. 11, Table I).

* :mod:`repro.reliability.fitrates` — the Sridharan & Liberty field-study
  fault model (Table I): FIT rates per DRAM failure mode, transient and
  permanent.
* :mod:`repro.reliability.faults` — fault records with address-range
  footprints inside a chip, and overlap tests between faults.
* :mod:`repro.reliability.schemes` — per-scheme uncorrectable-error
  predicates: SECDED, Chipkill, Synergy, IVEC.
* :mod:`repro.reliability.montecarlo` — Monte-Carlo over device lifetimes:
  an event-driven reference implementation and a vectorised (numpy) fast
  path for the billion-device scale of the paper.
* :mod:`repro.reliability.analytical` — closed-form cross-checks and the
  SDC-rate arithmetic of Section IV-A.
"""

from repro.reliability.fitrates import FAULT_MODES, FaultMode, total_fit_per_chip
from repro.reliability.faults import FaultInstance, faults_overlap
from repro.reliability.montecarlo import (
    MonteCarloConfig,
    simulate_failure_probability,
    simulate_shard,
)
from repro.reliability.schemes import (
    CHIPKILL_SCHEME,
    IVEC_SCHEME,
    SECDED_SCHEME,
    SYNERGY_SCHEME,
    ProtectionScheme,
)

__all__ = [
    "FAULT_MODES",
    "FaultMode",
    "total_fit_per_chip",
    "FaultInstance",
    "faults_overlap",
    "MonteCarloConfig",
    "simulate_failure_probability",
    "simulate_shard",
    "ProtectionScheme",
    "SECDED_SCHEME",
    "CHIPKILL_SCHEME",
    "SYNERGY_SCHEME",
    "IVEC_SCHEME",
]
