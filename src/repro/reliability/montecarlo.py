"""Monte-Carlo reliability simulation (the FAULTSIM methodology).

For each simulated device (one protection group of chips), fault arrivals
are Poisson with the Table I FIT rates over a 7-year lifetime; each fault
gets a uniformly random location and — if transient — a bounded active
window ending at the next scrub. The device fails if the scheme's
uncorrectability predicate ever holds.

Two implementations share the same sampling logic:

* :func:`simulate_device` — per-device, fully explicit; the reference used
  by unit tests.
* :func:`simulate_failure_probability` — batched over N devices with a
  numpy fast path for the (overwhelmingly common) 0/1-fault devices and
  the explicit predicate only for multi-fault devices. This is how the
  billion-device scale of the paper becomes tractable in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.reliability.faults import ChipGeometry, FaultInstance
from repro.reliability.fitrates import FAULT_MODES, FaultGranularity, FaultMode
from repro.reliability.schemes import ProtectionScheme
from repro.util.rng import DeterministicRng
from repro.util.units import HOURS_PER_YEAR


@dataclass(frozen=True)
class MonteCarloConfig:
    """Parameters of one reliability experiment."""

    devices: int = 200_000
    lifetime_years: float = 7.0
    #: Transient faults are repaired at the next scrub; Table I transients
    #: otherwise persist forever, which field studies contradict.
    scrub_interval_hours: float = 24.0
    geometry: ChipGeometry = field(default_factory=ChipGeometry)
    seed: int = 2018

    @property
    def lifetime_hours(self) -> float:
        """Device lifetime in hours."""
        return self.lifetime_years * HOURS_PER_YEAR


def _sample_fault(
    rng: DeterministicRng,
    chip: int,
    mode: FaultMode,
    config: MonteCarloConfig,
) -> FaultInstance:
    """Draw location and timing for one fault arrival."""
    geometry = config.geometry
    start = rng.uniform(0.0, config.lifetime_hours)
    if mode.transient:
        end: Optional[float] = start + config.scrub_interval_hours
    else:
        end = None
    return FaultInstance(
        chip=chip,
        granularity=mode.granularity,
        transient=mode.transient,
        start_hour=start,
        end_hour=end,
        bank=rng.randint(0, geometry.banks - 1),
        row=rng.randint(0, geometry.rows_per_bank - 1),
        column=rng.randint(0, geometry.words_per_row - 1),
        bit=rng.randint(0, 63),
    )


def sample_device_faults(
    rng: DeterministicRng, scheme: ProtectionScheme, config: MonteCarloConfig
) -> List[FaultInstance]:
    """All fault arrivals for one device over its lifetime."""
    faults: List[FaultInstance] = []
    for chip in range(scheme.chips):
        for mode in FAULT_MODES:
            expected = mode.fit * 1e-9 * config.lifetime_hours
            arrivals = rng.poisson(expected)
            for _ in range(arrivals):
                faults.append(_sample_fault(rng, chip, mode, config))
    return faults


def simulate_device(
    rng: DeterministicRng, scheme: ProtectionScheme, config: MonteCarloConfig
) -> bool:
    """Reference path: does one simulated device fail?"""
    return scheme.device_fails(sample_device_faults(rng, scheme, config))


def simulate_failure_probability(
    scheme: ProtectionScheme, config: MonteCarloConfig = MonteCarloConfig()
) -> float:
    """Probability of device failure over the lifetime (Fig. 11's metric).

    Fast path: the number of faults per device is Poisson with a small
    mean, so devices are binned by fault count with numpy. Zero-fault
    devices survive. Single-fault devices fail only under SECDED and only
    for multi-bit faults — a Bernoulli, also vectorised. Multi-fault
    devices (a ~1e-4 fraction) run the explicit predicate.
    """
    lifetime = config.lifetime_hours
    per_chip_rate = sum(mode.fit for mode in FAULT_MODES) * 1e-9 * lifetime
    device_rate = per_chip_rate * scheme.chips

    rng_np = np.random.default_rng(config.seed)
    counts = rng_np.poisson(device_rate, config.devices)

    failures = 0
    single_fault_devices = int(np.count_nonzero(counts == 1))
    if not scheme.chip_correcting and single_fault_devices:
        large_fraction = (
            sum(m.fit for m in FAULT_MODES if m.is_large)
            / sum(m.fit for m in FAULT_MODES)
        )
        failures += int(
            rng_np.binomial(single_fault_devices, large_fraction)
        )
    # Chip-correcting schemes survive any single fault by construction.

    multi_indices = np.flatnonzero(counts >= 2)
    rng = DeterministicRng(config.seed)
    mode_weights = [mode.fit for mode in FAULT_MODES]
    for device_index in multi_indices:
        count = int(counts[device_index])
        device_rng = rng.fork("device", int(device_index))
        faults = []
        for _ in range(count):
            chip = device_rng.randint(0, scheme.chips - 1)
            mode = device_rng.weighted_choice(FAULT_MODES, mode_weights)
            faults.append(_sample_fault(device_rng, chip, mode, config))
        if scheme.device_fails(faults):
            failures += 1
    return failures / config.devices


def failure_probability_series(
    scheme: ProtectionScheme,
    years: List[float],
    config: MonteCarloConfig = MonteCarloConfig(),
) -> List[float]:
    """Failure probability at several lifetimes (for time-series plots)."""
    from dataclasses import replace

    return [
        simulate_failure_probability(scheme, replace(config, lifetime_years=y))
        for y in years
    ]
