"""Monte-Carlo reliability simulation (the FAULTSIM methodology).

For each simulated device (one protection group of chips), fault arrivals
are Poisson with the Table I FIT rates over a 7-year lifetime; each fault
gets a uniformly random location and — if transient — a bounded active
window ending at the next scrub. The device fails if the scheme's
uncorrectability predicate ever holds.

Two implementations share the same sampling logic:

* :func:`simulate_device` — per-device, fully explicit; the reference used
  by unit tests.
* :func:`simulate_failure_probability` — batched over N devices with a
  numpy fast path for the (overwhelmingly common) 0/1-fault devices and
  the explicit predicate only for multi-fault devices. This is how the
  billion-device scale of the paper becomes tractable in Python.

The device population is partitioned into fixed-size *shards* whose RNG
streams derive from ``(seed, shard_id)`` alone — never from execution
order — so running shards serially, across a process pool, or in any
interleaving produces bit-identical failure counts. ``jobs``/``cache``
default to the process execution context (see ``repro.parallel``), and
finished curves land in the content-addressed run cache so Fig. 11 and
the scrub-interval sweep share work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.parallel import (
    current_stats,
    parallel_map,
    resolve_cache,
    resolve_jobs,
)
from repro.parallel.runcache import RunCache, cache_key
from repro.reliability.faults import ChipGeometry, FaultInstance
from repro.reliability.fitrates import FAULT_MODES, FaultGranularity, FaultMode
from repro.reliability.schemes import ProtectionScheme
from repro.telemetry import (
    MetricsSnapshot,
    cell_scope,
    current_aggregate,
    get_registry,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.units import HOURS_PER_YEAR

#: Failure-count buckets for the per-shard failure histogram.
SHARD_FAILURE_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Total per-chip fault rate (faults per chip-hour): Table I FIT rates
#: summed, FIT = failures per 1e9 device-hours. Hoisted to module scope so
#: the per-shard fast path does not re-reduce FAULT_MODES on every call;
#: the expression (and therefore float-op order) matches the old inline
#: ``sum(mode.fit for mode in FAULT_MODES) * 1e-9`` exactly.
_FIT_RATE = sum(mode.fit for mode in FAULT_MODES) * 1e-9

#: Fraction of fault arrivals that span more than one bit (the failures a
#: SECDED-class scheme cannot correct). Same float-op order as the old
#: inline two-sum quotient, so sampled probabilities are unchanged.
_LARGE_FRACTION = (
    sum(m.fit for m in FAULT_MODES if m.is_large)
    / sum(m.fit for m in FAULT_MODES)
)

#: Fault-mode sampling weights for multi-fault devices (proportional to FIT).
_MODE_WEIGHTS = [mode.fit for mode in FAULT_MODES]


@dataclass(frozen=True)
class MonteCarloConfig:
    """Parameters of one reliability experiment."""

    devices: int = 200_000
    lifetime_years: float = 7.0
    #: Transient faults are repaired at the next scrub; Table I transients
    #: otherwise persist forever, which field studies contradict.
    scrub_interval_hours: float = 24.0
    geometry: ChipGeometry = field(default_factory=ChipGeometry)
    seed: int = 2018
    #: Devices per deterministic RNG shard. Part of the experiment's
    #: identity: the same (seed, shard_devices) pair reproduces the same
    #: population no matter how many workers simulate it.
    shard_devices: int = 50_000

    @property
    def lifetime_hours(self) -> float:
        """Device lifetime in hours."""
        return self.lifetime_years * HOURS_PER_YEAR

    def shards(self) -> List[Tuple[int, int]]:
        """The (shard_id, device_count) partition of the population."""
        out: List[Tuple[int, int]] = []
        remaining = self.devices
        shard_id = 0
        while remaining > 0:
            size = min(self.shard_devices, remaining)
            out.append((shard_id, size))
            remaining -= size
            shard_id += 1
        return out


def _sample_fault(
    rng: DeterministicRng,
    chip: int,
    mode: FaultMode,
    config: MonteCarloConfig,
) -> FaultInstance:
    """Draw location and timing for one fault arrival."""
    geometry = config.geometry
    start = rng.uniform(0.0, config.lifetime_hours)
    if mode.transient:
        end: Optional[float] = start + config.scrub_interval_hours
    else:
        end = None
    return FaultInstance(
        chip=chip,
        granularity=mode.granularity,
        transient=mode.transient,
        start_hour=start,
        end_hour=end,
        bank=rng.randint(0, geometry.banks - 1),
        row=rng.randint(0, geometry.rows_per_bank - 1),
        column=rng.randint(0, geometry.words_per_row - 1),
        bit=rng.randint(0, 63),
    )


def sample_device_faults(
    rng: DeterministicRng, scheme: ProtectionScheme, config: MonteCarloConfig
) -> List[FaultInstance]:
    """All fault arrivals for one device over its lifetime."""
    faults: List[FaultInstance] = []
    for chip in range(scheme.chips):
        for mode in FAULT_MODES:
            expected = mode.fit * 1e-9 * config.lifetime_hours
            arrivals = rng.poisson(expected)
            for _ in range(arrivals):
                faults.append(_sample_fault(rng, chip, mode, config))
    return faults


def simulate_device(
    rng: DeterministicRng, scheme: ProtectionScheme, config: MonteCarloConfig
) -> bool:
    """Reference path: does one simulated device fail?"""
    return scheme.device_fails(sample_device_faults(rng, scheme, config))


def _multi_fault_device_fails(
    device_rng: DeterministicRng,
    scheme: ProtectionScheme,
    config: MonteCarloConfig,
    count: int,
) -> bool:
    """Explicit predicate for a device with ``count`` (>= 2) faults.

    Shared by the per-shard and multi-shard batched paths so the two stay
    draw-for-draw identical.
    """
    faults = []
    for _ in range(count):
        chip = device_rng.randint(0, scheme.chips - 1)
        mode = device_rng.weighted_choice(FAULT_MODES, _MODE_WEIGHTS)
        faults.append(_sample_fault(device_rng, chip, mode, config))
    return scheme.device_fails(faults)


def simulate_shard(
    scheme: ProtectionScheme,
    config: MonteCarloConfig,
    shard_id: int,
    shard_size: int,
) -> int:
    """Failure count among one shard's devices.

    Fast path: the number of faults per device is Poisson with a small
    mean, so devices are binned by fault count with numpy. Zero-fault
    devices survive. Single-fault devices fail only under SECDED and only
    for multi-bit faults — a Bernoulli, also vectorised. Multi-fault
    devices (a ~1e-4 fraction) run the explicit predicate.

    All randomness derives from ``(config.seed, shard_id)``, so the shard
    is a pure function of its arguments — the property that makes serial
    and process-pool execution bit-identical.
    """
    shard_seed = derive_seed(config.seed, "mc-shard", shard_id)
    per_chip_rate = _FIT_RATE * config.lifetime_hours
    device_rate = per_chip_rate * scheme.chips

    rng_np = np.random.default_rng(shard_seed)
    counts = rng_np.poisson(device_rate, shard_size)

    failures = 0
    single_fault_devices = int(np.count_nonzero(counts == 1))
    if not scheme.chip_correcting and single_fault_devices:
        failures += int(
            rng_np.binomial(single_fault_devices, _LARGE_FRACTION)
        )
    # Chip-correcting schemes survive any single fault by construction.

    multi_indices = np.flatnonzero(counts >= 2)
    rng = DeterministicRng(shard_seed)
    # One bulk conversion: the loop below sees plain Python ints.
    for device_index, count in zip(
        multi_indices.tolist(), counts[multi_indices].tolist()
    ):
        device_rng = rng.fork("device", device_index)
        if _multi_fault_device_fails(device_rng, scheme, config, count):
            failures += 1
    registry = get_registry()
    registry.counter("mc.shards").inc()
    registry.counter("mc.devices").inc(shard_size)
    registry.counter("mc.failures").inc(failures)
    registry.histogram("mc.shard_failures", SHARD_FAILURE_EDGES).record(failures)
    return failures


def simulate_shards_batched(
    scheme: ProtectionScheme,
    config: MonteCarloConfig,
    shards: List[Tuple[int, int]],
) -> List[Tuple[int, dict]]:
    """Multi-cell batched epoch mode: classify every shard in one pass.

    The serial (``jobs == 1``) counterpart of fanning ``_shard_task`` over
    a pool: instead of classifying shard populations one at a time, every
    shard's Poisson fault counts are drawn up front and the 0/1/multi
    device classification runs as a single numpy pass over the
    concatenated population. Per-shard draw order is untouched — each
    shard keeps its own ``(seed, shard_id)``-derived generator and draws
    poisson-then-binomial from it, exactly as :func:`simulate_shard` does —
    so failure counts and telemetry payloads are bit-identical to the
    per-shard path, whatever the interleaving.
    """
    device_rate = _FIT_RATE * config.lifetime_hours * scheme.chips
    generators = []
    counts_per_shard = []
    for shard_id, size in shards:
        gen = np.random.default_rng(derive_seed(config.seed, "mc-shard", shard_id))
        generators.append(gen)
        counts_per_shard.append(gen.poisson(device_rate, size))

    # One classification pass over the whole population: per-shard
    # single-fault tallies via segmented reduction, multi-fault device
    # coordinates via one flatnonzero over the concatenated counts.
    all_counts = np.concatenate(counts_per_shard)
    bounds = np.zeros(len(shards) + 1, dtype=np.int64)
    np.cumsum([size for _shard_id, size in shards], out=bounds[1:])
    ones_per_shard = np.add.reduceat(
        (all_counts == 1).astype(np.int64), bounds[:-1]
    )
    multi_global = np.flatnonzero(all_counts >= 2)
    multi_shard = np.searchsorted(bounds, multi_global, side="right") - 1
    multi_local = multi_global - bounds[multi_shard]

    # Bulk-convert the classification output once; the per-shard loop
    # below sees plain Python ints (lint P204).
    ones_list = ones_per_shard.tolist()
    multi_by_shard: List[List[Tuple[int, int]]] = [[] for _shard in shards]
    for shard_pos, local_index, count in zip(
        multi_shard.tolist(),
        multi_local.tolist(),
        all_counts[multi_global].tolist(),
    ):
        multi_by_shard[shard_pos].append((local_index, count))

    chip_correcting = scheme.chip_correcting
    results: List[Tuple[int, dict]] = []
    for position, (shard_id, size) in enumerate(shards):
        shard_seed = derive_seed(config.seed, "mc-shard", shard_id)
        with cell_scope(cell="mc:%s" % scheme.name, shard=shard_id) as registry:
            failures = 0
            single_fault_devices = ones_list[position]
            if not chip_correcting and single_fault_devices:
                failures += int(
                    generators[position].binomial(
                        single_fault_devices, _LARGE_FRACTION
                    )
                )
            rng = DeterministicRng(shard_seed)
            for device_index, count in multi_by_shard[position]:
                device_rng = rng.fork("device", device_index)
                if _multi_fault_device_fails(device_rng, scheme, config, count):
                    failures += 1
            registry.counter("mc.shards").inc()
            registry.counter("mc.devices").inc(size)
            registry.counter("mc.failures").inc(failures)
            registry.histogram("mc.shard_failures", SHARD_FAILURE_EDGES).record(
                failures
            )
            payload = registry.snapshot().to_payload()
        results.append((failures, payload))
    return results


def _shard_task(task: Tuple) -> Tuple[int, dict]:
    """Module-level worker entry so shards pickle into pool processes.

    Returns ``(failures, telemetry_payload)``: the shard runs under its own
    registry scope so the snapshot contains exactly this shard's metrics,
    regardless of which worker process executed it.
    """
    scheme, config, shard_id, shard_size = task
    with cell_scope(cell="mc:%s" % scheme.name, shard=shard_id) as registry:
        failures = simulate_shard(scheme, config, shard_id, shard_size)
        payload = registry.snapshot().to_payload()
    return failures, payload


def simulate_failure_probability(
    scheme: ProtectionScheme,
    config: MonteCarloConfig = MonteCarloConfig(),
    jobs: Optional[int] = None,
    cache: Union[None, bool, str, RunCache] = None,
) -> float:
    """Probability of device failure over the lifetime (Fig. 11's metric).

    The device budget is split into deterministic shards (see
    :meth:`MonteCarloConfig.shards`) fanned over ``jobs`` worker
    processes; failure counts merge by summation, which is
    order-independent. The finished probability is cached on disk keyed
    by (scheme, config, code version).
    """
    jobs = resolve_jobs(jobs)
    run_cache = resolve_cache(cache)
    label = "mc:%s" % scheme.name
    key = None
    if run_cache is not None:
        key = cache_key("montecarlo", scheme=scheme, config=config)
        payload = run_cache.get(key, label=label)
        if payload is not None:
            # Warm hit: revive the cached telemetry so reports still carry
            # metrics even when no shard actually executed.
            current_aggregate().add(label, payload.get("telemetry"))
            return float(payload["probability"])

    shards = config.shards()
    if jobs <= 1 and len(shards) > 1:
        # Serial route: the multi-cell batched epoch stepper classifies
        # every shard in one numpy pass (bit-identical to the per-shard
        # path — see simulate_shards_batched).
        span_started = time.perf_counter()
        shard_results = simulate_shards_batched(scheme, config, shards)
        elapsed = time.perf_counter() - span_started
        stats = current_stats()
        for shard_id, _size in shards:
            stats.record_cell(
                "%s/shard%d" % (label, shard_id), elapsed / len(shards)
            )
        stats.record_map(1, elapsed)
    else:
        shard_results = parallel_map(
            _shard_task,
            [(scheme, config, shard_id, size) for shard_id, size in shards],
            jobs=jobs,
            labels=[
                "%s/shard%d" % (label, shard_id) for shard_id, _size in shards
            ],
        )
    failures = sum(result[0] for result in shard_results)
    # parallel_map returns in submission (= shard) order, and the merge is
    # commutative anyway: the aggregate is independent of worker count.
    telemetry = MetricsSnapshot()
    for _failures, shard_payload in shard_results:
        telemetry = telemetry.merge(MetricsSnapshot.from_payload(shard_payload))
    current_aggregate().add(label, telemetry)
    probability = failures / config.devices
    if run_cache is not None and key is not None:
        run_cache.put(
            key,
            {"probability": probability, "telemetry": telemetry.to_payload()},
        )
    return probability


def failure_probability_series(
    scheme: ProtectionScheme,
    years: List[float],
    config: MonteCarloConfig = MonteCarloConfig(),
    jobs: Optional[int] = None,
    cache: Union[None, bool, str, RunCache] = None,
) -> List[float]:
    """Failure probability at several lifetimes (for time-series plots)."""
    from dataclasses import replace

    return [
        simulate_failure_probability(
            scheme, replace(config, lifetime_years=y), jobs=jobs, cache=cache
        )
        for y in years
    ]
