"""The DRAM fault model of Table I (Sridharan & Liberty field study).

FIT = failures per billion device-hours, per DRAM chip, split by failure
granularity and permanence. These rates drive both the Monte-Carlo
simulator and the analytical cross-checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List


class FaultGranularity(enum.Enum):
    """Spatial extent of a chip fault (Table I rows)."""

    SINGLE_BIT = "single_bit"
    SINGLE_WORD = "single_word"
    SINGLE_COLUMN = "single_column"
    SINGLE_ROW = "single_row"
    SINGLE_BANK = "single_bank"
    MULTI_BANK = "multi_bank"
    MULTI_RANK = "multi_rank"


@dataclass(frozen=True)
class FaultMode:
    """One (granularity, permanence) cell of Table I."""

    granularity: FaultGranularity
    transient: bool
    fit: float

    @property
    def is_large(self) -> bool:
        """Whether the fault spans more than one bit (defeats SECDED)."""
        return self.granularity is not FaultGranularity.SINGLE_BIT


#: Table I, verbatim: DRAM failures per billion device-hours.
_TABLE_I: Dict[FaultGranularity, Dict[str, float]] = {
    FaultGranularity.SINGLE_BIT: {"transient": 14.2, "permanent": 18.6},
    FaultGranularity.SINGLE_WORD: {"transient": 1.4, "permanent": 0.3},
    FaultGranularity.SINGLE_COLUMN: {"transient": 1.4, "permanent": 5.6},
    FaultGranularity.SINGLE_ROW: {"transient": 0.2, "permanent": 8.2},
    FaultGranularity.SINGLE_BANK: {"transient": 0.8, "permanent": 10.0},
    FaultGranularity.MULTI_BANK: {"transient": 0.3, "permanent": 1.4},
    FaultGranularity.MULTI_RANK: {"transient": 0.9, "permanent": 2.8},
}

FAULT_MODES: List[FaultMode] = [
    FaultMode(granularity, permanence == "transient", fit)
    for granularity, cells in _TABLE_I.items()
    for permanence, fit in cells.items()
]


def total_fit_per_chip() -> float:
    """Aggregate FIT rate of one DRAM chip (sum of Table I)."""
    return sum(mode.fit for mode in FAULT_MODES)


def single_bit_fraction() -> float:
    """Fraction of failures that are single-bit (~50% per Section II-B)."""
    single = sum(
        mode.fit
        for mode in FAULT_MODES
        if mode.granularity is FaultGranularity.SINGLE_BIT
    )
    return single / total_fit_per_chip()


def fit_by_granularity() -> Dict[FaultGranularity, float]:
    """Total FIT (transient + permanent) per granularity."""
    totals: Dict[FaultGranularity, float] = {}
    for mode in FAULT_MODES:
        totals[mode.granularity] = totals.get(mode.granularity, 0.0) + mode.fit
    return totals
