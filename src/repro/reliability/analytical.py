"""Closed-form reliability cross-checks and the SDC arithmetic of §IV-A.

The Monte-Carlo results should track these first-order approximations:

* SECDED device failure  ~  chips x (multi-bit FIT) x lifetime
* chip-correcting failure ~ C(chips, 2) x (per-chip fault prob)^2 x P(overlap)

and the silent-data-corruption bound: a mis-correction needs a 64-bit MAC
collision during one of at most 16 reconstruction attempts, i.e. probability
16 x 2^-64 < 1e-18 per corrected error — combined with a conservative error
rate this lands around the paper's "once per 1e14 billion years".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliability.fitrates import FAULT_MODES
from repro.reliability.montecarlo import MonteCarloConfig
from repro.reliability.schemes import ProtectionScheme


def per_chip_fault_probability(config: MonteCarloConfig) -> float:
    """Probability a chip develops at least one fault within the lifetime."""
    rate = sum(mode.fit for mode in FAULT_MODES) * 1e-9 * config.lifetime_hours
    # 1 - exp(-rate), but rate << 1 so the linear term is exact enough and
    # keeps the formula transparent.
    return rate


def large_fault_fraction() -> float:
    """Fraction of faults that are multi-bit (defeat SECDED alone)."""
    total = sum(mode.fit for mode in FAULT_MODES)
    return sum(mode.fit for mode in FAULT_MODES if mode.is_large) / total


def secded_failure_probability(config: MonteCarloConfig, chips: int = 9) -> float:
    """First-order SECDED device-failure probability."""
    return chips * per_chip_fault_probability(config) * large_fault_fraction()


def chip_correcting_failure_probability(
    scheme: ProtectionScheme,
    config: MonteCarloConfig,
    overlap_probability: float,
) -> float:
    """First-order failure probability for a chip-correcting scheme.

    ``overlap_probability`` is the chance two random faults on different
    chips intersect spatio-temporally; measure it empirically with
    :func:`empirical_overlap_probability` rather than guessing.
    """
    chips = scheme.chips
    pairs = chips * (chips - 1) / 2
    p = per_chip_fault_probability(config)
    return pairs * p * p * overlap_probability


def empirical_overlap_probability(
    config: MonteCarloConfig, samples: int = 20_000, seed: int = 7
) -> float:
    """Estimate P(two random faults on different chips overlap)."""
    from repro.reliability.faults import faults_overlap
    from repro.reliability.montecarlo import _sample_fault
    from repro.util.rng import DeterministicRng

    rng = DeterministicRng(seed)
    weights = [mode.fit for mode in FAULT_MODES]
    hits = 0
    for _ in range(samples):
        first = _sample_fault(rng, 0, rng.weighted_choice(FAULT_MODES, weights), config)
        second = _sample_fault(rng, 1, rng.weighted_choice(FAULT_MODES, weights), config)
        if faults_overlap(first, second):
            hits += 1
    return hits / samples


# ---------------------------------------------------------------------------
# Silent data corruption (Section IV-A)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SdcEstimate:
    """Mis-correction (silent data corruption) rate estimate."""

    collision_probability_per_correction: float
    corrections_per_billion_hours: float

    @property
    def sdc_fit(self) -> float:
        """Silent-data-corruption failures per billion device-hours."""
        return (
            self.corrections_per_billion_hours
            * self.collision_probability_per_correction
        )

    @property
    def years_between_sdc(self) -> float:
        """Mean years between SDC events for one device."""
        if self.sdc_fit == 0:
            return float("inf")
        hours = 1e9 / self.sdc_fit
        return hours / (24 * 365)


def sdc_estimate(
    mac_bits: int = 64,
    max_reconstruction_attempts: int = 16,
    error_fit: float = 100.0,
) -> SdcEstimate:
    """The §IV-A arithmetic: 16 attempts against a 64-bit MAC.

    ``error_fit`` = assumed corrected-error rate (paper: a conservative
    100 failures per billion hours). Collision chance per correction is
    at most attempts x 2^-mac_bits (< 1e-18); multiplying gives an SDC FIT
    around 1e-19 — thirteen orders of magnitude below Chipkill's SDC rate,
    matching the paper's claim.
    """
    collision = max_reconstruction_attempts * (2.0 ** -mac_bits)
    return SdcEstimate(
        collision_probability_per_correction=collision,
        corrections_per_billion_hours=error_fit,
    )


def effective_mac_strength_bits(
    mac_bits: int = 64, reconstruction_attempts: int = 16
) -> float:
    """Effective MAC strength after repeated verification (§IV-B).

    16 attempts against a 64-bit MAC give the adversary a 16x larger
    forgery window: effectively 60 bits; 8 attempts (counter lines): 61
    bits... the paper quotes 60 and 62 using slightly different rounding —
    we compute log2 exactly.
    """
    import math

    return mac_bits - math.log2(reconstruction_attempts)
