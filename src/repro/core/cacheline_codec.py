"""Physical lane layouts of Synergy's four cacheline types (Fig. 7a).

Data cacheline
    Chips 0-7 carry the 64-byte ciphertext; the ECC chip carries the 8-byte
    MAC. The line's 8-byte parity — XOR of all *nine* lanes — lives in a
    separate parity line.

Parity cacheline
    Chip ``i`` carries parity ``P_i`` protecting data line ``i`` of the
    group; the ECC chip carries ParityP = P_0 ^ ... ^ P_7, which lets
    Synergy survive a chip that holds both a data line and (elsewhere) that
    line's parity.

Counter / tree-counter cacheline
    Chip ``i`` carries counter ``i`` (7 bytes) plus MAC byte ``i``; the ECC
    chip carries ParityC (resp. ParityT) = XOR of the eight data-chip lanes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dimm.geometry import DATA_CHIPS, ECC_CHIP, TOTAL_CHIPS, join_lanes, split_into_lanes
from repro.ecc.parity import xor_parity
from repro.secure.counters import (
    COUNTERS_PER_LINE,
    counter_line_lanes,
    counter_parity,
    unpack_counter_lanes,
)

LANE_BYTES = 8
PARITIES_PER_LINE = 8


# -- data lines -------------------------------------------------------------


def encode_data_line(ciphertext: bytes, mac: bytes) -> List[bytes]:
    """Pack ciphertext + MAC into nine lanes (MAC rides the ECC chip)."""
    return split_into_lanes(ciphertext, mac)


def decode_data_line(lanes: Sequence[bytes]) -> Tuple[bytes, bytes]:
    """Unpack nine lanes into (ciphertext, mac)."""
    return join_lanes(lanes)


def data_line_parity(lanes: Sequence[bytes]) -> bytes:
    """The 8-byte RAID-3 parity over all nine lanes (8 data + MAC)."""
    if len(lanes) != TOTAL_CHIPS:
        raise ValueError("expected %d lanes" % TOTAL_CHIPS)
    return xor_parity(list(lanes))


# -- parity lines -------------------------------------------------------------


def encode_parity_line(parities: Sequence[bytes]) -> List[bytes]:
    """Pack eight 8-byte parities; ParityP goes to the ECC chip."""
    parities = [bytes(p) for p in parities]
    if len(parities) != PARITIES_PER_LINE:
        raise ValueError("expected %d parities" % PARITIES_PER_LINE)
    if any(len(p) != LANE_BYTES for p in parities):
        raise ValueError("parities are 8 bytes")
    return parities + [xor_parity(parities)]

def decode_parity_line(lanes: Sequence[bytes]) -> Tuple[List[bytes], bytes]:
    """Unpack a parity line into ([P_0..P_7], ParityP)."""
    if len(lanes) != TOTAL_CHIPS:
        raise ValueError("expected %d lanes" % TOTAL_CHIPS)
    return [bytes(lane) for lane in lanes[:PARITIES_PER_LINE]], bytes(lanes[ECC_CHIP])


def reconstruct_parity_slot(lanes: Sequence[bytes], slot: int) -> bytes:
    """Rebuild parity ``P_slot`` from ParityP and the other seven parities.

    Used when the chip holding a data line's parity is itself suspect
    (Section III-B, the "erroneous parity" case).
    """
    parities, parity_p = decode_parity_line(lanes)
    others = [parities[i] for i in range(PARITIES_PER_LINE) if i != slot]
    return xor_parity(others + [parity_p])


# -- counter / tree lines ------------------------------------------------------


def encode_counter_line(counters: Sequence[int], mac: bytes) -> List[bytes]:
    """Pack counters + MAC; ParityC goes to the ECC chip."""
    data_lanes = counter_line_lanes(counters, mac)
    return data_lanes + [counter_parity(data_lanes)]


def decode_counter_line(lanes: Sequence[bytes]) -> Tuple[List[int], bytes, bytes]:
    """Unpack a counter line into (counters, mac, parity_c)."""
    if len(lanes) != TOTAL_CHIPS:
        raise ValueError("expected %d lanes" % TOTAL_CHIPS)
    counters, mac = unpack_counter_lanes(lanes[:DATA_CHIPS])
    return counters, mac, bytes(lanes[ECC_CHIP])


def counter_line_candidates(lanes: Sequence[bytes]) -> List[Tuple[int, List[int], bytes]]:
    """All single-chip repair hypotheses for a counter line.

    For each data chip ``i`` (0..7), rebuild its lane from ParityC and the
    other seven, and return ``(chip, counters, mac)`` for that hypothesis.
    The ECC chip itself carries only parity, so a faulty ECC chip never
    causes a counter-line MAC mismatch (handled by construction).
    """
    if len(lanes) != TOTAL_CHIPS:
        raise ValueError("expected %d lanes" % TOTAL_CHIPS)
    parity = bytes(lanes[ECC_CHIP])
    hypotheses = []
    for chip in range(DATA_CHIPS):
        others = [lanes[i] for i in range(DATA_CHIPS) if i != chip]
        rebuilt = xor_parity(others + [parity])
        repaired = list(lanes[:DATA_CHIPS])
        repaired[chip] = rebuilt
        counters, mac = unpack_counter_lanes(repaired)
        hypotheses.append((chip, counters, mac))
    assert len(hypotheses) == COUNTERS_PER_LINE
    return hypotheses
