"""Permanent-chip-failure tracking (Section IV-A latency mitigation).

A permanent chip failure would otherwise cost up to 88 MAC computations per
access (a full tree walk with reconstruction at every level). The mitigation:
log the chip blamed by each successful correction; once the same chip has
been blamed ``threshold`` times consecutively, mark it known-faulty and
pre-correct its lane with the parity *before* verification — reducing the
steady-state overhead to the single MAC computation the baseline pays anyway.

A correction blaming a *different* chip resets the streak (the original
fault may have been transient, or scrubbing fixed it).
"""

from __future__ import annotations

from typing import Dict, Optional


class FaultyChipTracker:
    """Consecutive-blame tracker that identifies a permanently failed chip."""

    def __init__(self, threshold: int = 4):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._streak_chip: Optional[int] = None
        self._streak_length = 0
        self._known_faulty: Optional[int] = None
        self.blame_counts: Dict[int, int] = {}

    @property
    def known_faulty_chip(self) -> Optional[int]:
        """The chip to pre-correct, or None while still learning."""
        return self._known_faulty

    def record_correction(self, chip: int) -> None:
        """Log one successful correction that blamed ``chip``."""
        self.blame_counts[chip] = self.blame_counts.get(chip, 0) + 1
        if chip == self._streak_chip:
            self._streak_length += 1
        else:
            self._streak_chip = chip
            self._streak_length = 1
        if self._streak_length >= self.threshold:
            self._known_faulty = chip

    def record_clean_access(self) -> None:
        """A verified access with no correction: a permanent fault would not
        allow this for lines it covers, so temper the streak."""
        # Clean accesses to *other* lines are expected even with a permanent
        # fault, so we do not reset the identified chip — only the streak
        # that was building toward identification.
        if self._known_faulty is None:
            self._streak_length = 0
            self._streak_chip = None

    def clear(self) -> None:
        """Forget everything (chip replaced / DIMM scrubbed)."""
        self._streak_chip = None
        self._streak_length = 0
        self._known_faulty = None
        self.blame_counts.clear()
