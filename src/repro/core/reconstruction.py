"""The RAID-3 reconstruction engine (Fig. 5b).

On a MAC mismatch the identity of the faulty chip is unknown, so the engine
sequentially hypothesises each chip bad, rebuilds that chip's lane from the
parity and the remaining lanes, and re-verifies the MAC. The first hypothesis
whose MAC matches wins; if none does, the error is uncorrectable and the
caller declares an attack.

MAC-computation budgets (Section IV-A, testable via the engine's counters):

* counter/tree line: <= 8 recomputations (only the 8 counter-carrying chips
  can produce a mismatch; ParityC rides the ECC chip);
* data line: <= 16 recomputations — 9 hypotheses with the stored parity (MAC
  chip first, then the 8 data chips), and if the parity itself is suspect,
  up to 7 more with the ParityP-reconstructed parity (16 total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.sanitizer import get_sanitizer
from repro.core.cacheline_codec import counter_line_candidates, decode_data_line
from repro.dimm.geometry import DATA_CHIPS, ECC_CHIP, TOTAL_CHIPS
from repro.ecc.parity import xor_parity
from repro.secure.mac import LineMacCalculator
from repro.telemetry import get_registry, get_tracer
from repro.util.stats import StatGroup

#: Budget caps from Section IV-A.
MAX_COUNTER_ATTEMPTS = 8
MAX_DATA_ATTEMPTS = 16

#: Attempt-count buckets sized to the Section IV-A budgets.
ATTEMPT_EDGES = (1, 2, 4, 8, 16)


@dataclass
class ReconstructionOutcome:
    """Result of a successful reconstruction."""

    faulty_chip: int  # 0..7 data chips, 8 = MAC/ECC chip
    lanes: List[bytes]  # fully repaired nine lanes
    attempts: int  # MAC recomputations spent
    used_rebuilt_parity: bool = False


class ReconstructionEngine:
    """Sequential single-chip-hypothesis corrector for all line types."""

    def __init__(self, mac_calc: LineMacCalculator):
        self.mac_calc = mac_calc
        self.stats = StatGroup("reconstruction")
        # None unless REPRO_SANITIZE is on; successful corrections are then
        # re-checked for hypothesis uniqueness and parity consistency.
        self._sanitizer = get_sanitizer()
        registry = get_registry()
        self._t_attempts = registry.histogram(
            "core.reconstruction_attempts", ATTEMPT_EDGES
        )
        self._t_corrections = registry.counter("core.reconstruction_corrections")
        self._t_failures = registry.counter("core.reconstruction_failures")

    # ------------------------------------------------------------------
    # Counter / tree-counter lines (Scenarios B and C of Fig. 7c)
    # ------------------------------------------------------------------

    def correct_counter_line(
        self,
        address: int,
        lanes: Sequence[bytes],
        parent_counter: int,
    ) -> Optional[ReconstructionOutcome]:
        """Repair a counter-type line using its in-line ParityC.

        Tries each of the 8 counter-carrying chips; a hypothesis is accepted
        when the MAC assembled from the repaired lanes verifies under the
        (already trusted) parent counter. Returns None if nothing verifies.
        """
        attempts = 0
        tracer = get_tracer()
        candidates = counter_line_candidates(lanes)
        for position, (chip, counters, mac) in enumerate(candidates):
            attempts += 1
            expected = self.mac_calc.counter_line_mac(address, parent_counter, counters)
            if expected == mac:
                repaired = self._repair_counter_lanes(lanes, chip)
                if self._sanitizer is not None:
                    self._sanitizer.check_counter_reconstruction(
                        self.mac_calc,
                        address,
                        parent_counter,
                        counters,
                        repaired,
                        candidates[position + 1 :],
                    )
                self.stats.counter("counter_corrections").add()
                self.stats.histogram("counter_attempts").record(attempts)
                self._t_corrections.inc()
                self._t_attempts.record(attempts)
                tracer.emit(
                    "reconstruction",
                    line_type="counter",
                    chip=chip,
                    attempts=attempts,
                )
                return ReconstructionOutcome(chip, repaired, attempts)
        self.stats.counter("counter_failures").add()
        self._t_failures.inc()
        return None

    @staticmethod
    def _repair_counter_lanes(lanes: Sequence[bytes], chip: int) -> List[bytes]:
        parity = bytes(lanes[ECC_CHIP])
        others = [lanes[i] for i in range(DATA_CHIPS) if i != chip]
        rebuilt = xor_parity(others + [parity])
        repaired = [bytes(lane) for lane in lanes]
        repaired[chip] = rebuilt
        return repaired

    # ------------------------------------------------------------------
    # Data lines (Scenario D of Fig. 7c)
    # ------------------------------------------------------------------

    def correct_data_line(
        self,
        address: int,
        lanes: Sequence[bytes],
        counter: int,
        parity: bytes,
        rebuilt_parity: Optional[bytes] = None,
        overlap_chip: Optional[int] = None,
    ) -> Optional[ReconstructionOutcome]:
        """Repair a Data+MAC line using its 9-chip parity.

        Round 1 order per Section III-B: the MAC chip first, then data chips
        0..7, using the stored parity. If every hypothesis fails and
        ``rebuilt_parity`` (from ParityP) is provided, a second round runs
        with it — covering the case where one chip held both the data line
        and its parity. In that case the culprit can only be the chip that
        holds the parity (``overlap_chip``), so round 2 tries it first; the
        total stays within the paper's 16-recomputation budget.
        """
        attempts = 0
        tracer = get_tracer()
        for use_rebuilt, active_parity in self._parity_choices(parity, rebuilt_parity):
            order = [ECC_CHIP] + list(range(DATA_CHIPS))
            if use_rebuilt and overlap_chip is not None:
                order = [overlap_chip] + [c for c in order if c != overlap_chip]
            for chip in order:
                if attempts >= MAX_DATA_ATTEMPTS:
                    break
                attempts += 1
                repaired = self._repair_data_lanes(lanes, chip, active_parity)
                ciphertext, mac = decode_data_line(repaired)
                expected = self.mac_calc.data_mac(address, counter, ciphertext)
                if expected == mac:
                    if self._sanitizer is not None:
                        accepted = order.index(chip)
                        self._sanitizer.check_data_reconstruction(
                            self.mac_calc,
                            address,
                            counter,
                            lanes,
                            active_parity,
                            repaired,
                            order[accepted + 1 :],
                        )
                    self.stats.counter("data_corrections").add()
                    self.stats.histogram("data_attempts").record(attempts)
                    self._t_corrections.inc()
                    self._t_attempts.record(attempts)
                    tracer.emit(
                        "reconstruction",
                        line_type="data",
                        chip=chip,
                        attempts=attempts,
                        rebuilt_parity=use_rebuilt,
                    )
                    return ReconstructionOutcome(chip, repaired, attempts, use_rebuilt)
        self.stats.counter("data_failures").add()
        self._t_failures.inc()
        return None

    @staticmethod
    def _parity_choices(parity: bytes, rebuilt: Optional[bytes]):
        yield False, bytes(parity)
        if rebuilt is not None and bytes(rebuilt) != bytes(parity):
            yield True, bytes(rebuilt)

    @staticmethod
    def _repair_data_lanes(
        lanes: Sequence[bytes], chip: int, parity: bytes
    ) -> List[bytes]:
        others = [lanes[i] for i in range(TOTAL_CHIPS) if i != chip]
        rebuilt = xor_parity(list(others) + [bytes(parity)])
        repaired = [bytes(lane) for lane in lanes]
        repaired[chip] = rebuilt
        return repaired

    # ------------------------------------------------------------------
    # Known-faulty-chip fast path (Section IV-A latency mitigation)
    # ------------------------------------------------------------------

    def precorrect_data_line(
        self,
        address: int,
        lanes: Sequence[bytes],
        counter: int,
        parity: bytes,
        faulty_chip: int,
    ) -> Optional[ReconstructionOutcome]:
        """Repair assuming ``faulty_chip`` is bad: exactly one MAC check."""
        repaired = self._repair_data_lanes(lanes, faulty_chip, parity)
        ciphertext, mac = decode_data_line(repaired)
        expected = self.mac_calc.data_mac(address, counter, ciphertext)
        if expected == mac:
            if self._sanitizer is not None:
                # Known-chip fast path tries one hypothesis; uniqueness does
                # not apply, but the repaired line must still satisfy parity.
                self._sanitizer.check_data_reconstruction(
                    self.mac_calc, address, counter, lanes, parity, repaired, ()
                )
            self.stats.counter("precorrections").add()
            self._t_corrections.inc()
            self._t_attempts.record(1)
            return ReconstructionOutcome(faulty_chip, repaired, 1)
        return None
