"""SynergyMemory: the full reliability-security co-design (Section III).

Differences from :class:`repro.secure.memory.BaselineSecureMemory`:

* the data MAC rides the ECC chip — fetched with the data, no MAC region;
* counter/tree lines carry ParityC/ParityT in the ECC chip;
* a parity region holds one 8-byte RAID-3 parity per data line (eight per
  parity line, ParityP in the ECC chip), updated on every data write;
* error handling: MAC mismatches trigger the reconstruction engine rather
  than an immediate attack declaration, correcting any single-chip failure
  out of the 9 chips; only unresolvable mismatches declare an attack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.cacheline_codec import (
    data_line_parity,
    decode_data_line,
    decode_parity_line,
    encode_counter_line,
    encode_data_line,
    encode_parity_line,
    reconstruct_parity_slot,
)
from repro.core.failure_tracker import FaultyChipTracker
from repro.core.reconstruction import ReconstructionEngine
from repro.core.treewalk import CounterLineSource, SynergyTreeWalk
from repro.crypto.keys import ProcessorKeys
from repro.dimm.module import EccDimm
from repro.secure.counter_tree import CounterTree
from repro.secure.errors import AttackDetected
from repro.secure.mac import LineMacCalculator
from repro.secure.metadata_layout import MetadataLayout
from repro.util.stats import StatGroup
from repro.util.units import CACHELINE_BYTES

PARITIES_PER_LINE = 8
LANE_BYTES = 8


class SynergyMemory:
    """Secure memory with MAC-in-ECC-chip co-location and parity correction.

    Public API mirrors the baseline: :meth:`read` / :meth:`write` move
    64-byte plaintext lines; everything else (encryption, MACs, tree
    maintenance, parity upkeep, error correction) happens inside. Chip
    faults injected into :attr:`dimm` exercise the correction flows.
    """

    def __init__(
        self,
        num_data_lines: int,
        keys: Optional[ProcessorKeys] = None,
        cache_capacity: Optional[int] = None,
        tracker_threshold: int = 4,
    ):
        keys = keys or ProcessorKeys()
        self.layout = MetadataLayout(num_data_lines)
        self.dimm = EccDimm()
        self.cipher = keys.make_cipher()
        self.mac_calc = LineMacCalculator(keys.make_mac())
        self.engine = ReconstructionEngine(self.mac_calc)
        self.tree = CounterTree(self.layout, self.mac_calc, self, cache_capacity)
        self.walk = SynergyTreeWalk(
            self.layout, self.tree, self.mac_calc, self.engine, CounterLineSource(self)
        )
        self.tracker = FaultyChipTracker(tracker_threshold)
        self.stats = StatGroup("synergy_memory")
        self._written_lines: set = set()

    # ------------------------------------------------------------------
    # Raw line plumbing
    # ------------------------------------------------------------------

    def _store_lanes(self, address: int, lanes: List[bytes]) -> None:
        self.dimm.write_line(address, lanes)
        self._written_lines.add(address)
        self.stats.counter("memory_writes").add()

    def _load_lanes(self, address: int) -> Optional[List[bytes]]:
        if address not in self._written_lines:
            return None
        self.stats.counter("memory_reads").add()
        return self.dimm.read_line(address)

    # LineStore protocol (used by CounterTree.bump_chain) -----------------

    def load_counter_line(self, address: int) -> Optional[Tuple[List[int], bytes]]:
        """Raw (counters, mac) of a counter-type line — no verification."""
        lanes = self._load_lanes(address)
        if lanes is None:
            return None
        from repro.core.cacheline_codec import decode_counter_line

        counters, mac, _parity = decode_counter_line(lanes)
        return counters, mac

    def store_counter_line(
        self, address: int, counters: List[int], mac: bytes
    ) -> None:
        """Encode (with ParityC) and store a counter-type line."""
        self._store_lanes(address, encode_counter_line(counters, mac))

    # CounterLineSource protocol (used by the tree walk) ------------------

    def load_counter_lanes(self, address: int) -> Optional[List[bytes]]:
        """Nine raw lanes of a counter-type line."""
        return self._load_lanes(address)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def read(self, data_line: int) -> bytes:
        """Read a data line: tree walk, MAC verify, correct if needed."""
        self.stats.counter("reads").add()
        counter = self._verified_counter(data_line)
        lanes = self._load_lanes(data_line)
        if lanes is None:
            self._materialise_data_line(data_line, counter)
            lanes = self._load_lanes(data_line)

        # Known-permanent-failure fast path: pre-correct before verifying.
        faulty = self.tracker.known_faulty_chip
        if faulty is not None:
            outcome = self.engine.precorrect_data_line(
                data_line, lanes, counter, self._stored_parity(data_line), faulty
            )
            if outcome is not None:
                ciphertext, _mac = decode_data_line(outcome.lanes)
                return self.cipher.decrypt(data_line, counter, ciphertext)
            # Pre-correction failed: fall through to the full flow.

        ciphertext, stored_mac = decode_data_line(lanes)
        expected = self.mac_calc.data_mac(data_line, counter, ciphertext)
        if expected == stored_mac:
            self.tracker.record_clean_access()
            return self.cipher.decrypt(data_line, counter, ciphertext)

        # MAC mismatch: Scenario D — reconstruct via the 9-chip parity.
        self.stats.counter("data_mismatches").add()
        parity = self._stored_parity(data_line)
        rebuilt = self._rebuilt_parity(data_line)
        outcome = self.engine.correct_data_line(
            data_line,
            lanes,
            counter,
            parity,
            rebuilt,
            overlap_chip=self.layout.parity_slot(data_line),
        )
        if outcome is None:
            raise AttackDetected(
                "uncorrectable data-line error or attack", data_line
            )
        self.stats.counter("data_corrections").add()
        self.tracker.record_correction(outcome.faulty_chip)
        # Scrub the repaired line (and parity, if it was the culprit).
        self._store_lanes(data_line, outcome.lanes)
        if outcome.used_rebuilt_parity:
            self._scrub_parity(data_line, rebuilt)
        ciphertext, _mac = decode_data_line(outcome.lanes)
        return self.cipher.decrypt(data_line, counter, ciphertext)

    def write(self, data_line: int, plaintext: bytes) -> None:
        """Encrypt, MAC, store a data line; maintain its parity."""
        if len(plaintext) != CACHELINE_BYTES:
            raise ValueError("data lines are %d bytes" % CACHELINE_BYTES)
        self.stats.counter("writes").add()
        chain = self.layout.verification_chain(data_line)
        trusted, report = self.walk.verified_chain(data_line, full=True)
        for _address, chip in report.corrected_chips.items():
            self.stats.counter("counter_corrections").add()
            self.tracker.record_correction(chip)
        counter = self.tree.bump_chain(chain, trusted)
        ciphertext = self.cipher.encrypt(data_line, counter, plaintext)
        mac = self.mac_calc.data_mac(data_line, counter, ciphertext)
        lanes = encode_data_line(ciphertext, mac)
        self._store_lanes(data_line, lanes)
        self._update_parity(data_line, data_line_parity(lanes))

    # ------------------------------------------------------------------
    # Counter acquisition via the walking verifier
    # ------------------------------------------------------------------

    def _verified_counter(self, data_line: int) -> int:
        trusted, report = self.walk.verified_chain(data_line)
        for address, chip in report.corrected_chips.items():
            del address
            self.stats.counter("counter_corrections").add()
            self.tracker.record_correction(chip)
        counter_line = self.layout.counter_line(data_line)
        return trusted[counter_line][self.layout.counter_slot(data_line)]

    # ------------------------------------------------------------------
    # Parity region maintenance
    # ------------------------------------------------------------------

    def _parity_location(self, data_line: int) -> Tuple[int, int]:
        return self.layout.parity_line(data_line), self.layout.parity_slot(data_line)

    def _stored_parity(self, data_line: int) -> bytes:
        """The (unverified) stored parity covering ``data_line``."""
        address, slot = self._parity_location(data_line)
        lanes = self._load_lanes(address)
        if lanes is None:
            return bytes(LANE_BYTES)
        parities, _parity_p = decode_parity_line(lanes)
        return parities[slot]

    def _rebuilt_parity(self, data_line: int) -> Optional[bytes]:
        """Parity rebuilt from ParityP (the erroneous-parity contingency)."""
        address, slot = self._parity_location(data_line)
        lanes = self._load_lanes(address)
        if lanes is None:
            return None
        return reconstruct_parity_slot(lanes, slot)

    def _update_parity(self, data_line: int, parity: bytes) -> None:
        """Read-modify-write the parity line with a fresh slot value."""
        address, slot = self._parity_location(data_line)
        lanes = self._load_lanes(address)
        if lanes is None:
            parities = [bytes(LANE_BYTES)] * PARITIES_PER_LINE
        else:
            parities, _ = decode_parity_line(lanes)
        parities[slot] = parity
        self._store_lanes(address, encode_parity_line(parities))
        self.stats.counter("parity_updates").add()

    def _scrub_parity(self, data_line: int, parity: bytes) -> None:
        self._update_parity(data_line, parity)
        self.stats.counter("parity_scrubs").add()

    # ------------------------------------------------------------------
    # First-touch materialisation
    # ------------------------------------------------------------------

    def _materialise_data_line(self, data_line: int, counter: int) -> None:
        plaintext = bytes(CACHELINE_BYTES)
        ciphertext = self.cipher.encrypt(data_line, counter, plaintext)
        mac = self.mac_calc.data_mac(data_line, counter, ciphertext)
        lanes = encode_data_line(ciphertext, mac)
        self._store_lanes(data_line, lanes)
        self._update_parity(data_line, data_line_parity(lanes))
