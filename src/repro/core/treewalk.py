"""Upward-detect / downward-correct integrity-tree traversal (Fig. 7b/7c).

Upward traversal: on every access the walk verifies MACs from the leaf
(encryption-counter line) toward the root, *logging* mismatches instead of
declaring an attack, and stops at the first line found in the on-chip
metadata cache (trusted by construction).

Downward traversal: runs only over levels that are not already trusted.
Starting just below the trusted entry, each level is corrected with its
in-line ParityC/ParityT via the reconstruction engine; because the parent
was verified (or corrected) first, a mismatch at a level can only implicate
that level's own cacheline. An unresolvable level means attack.

Reads stop at the first cached level (hardware latency behaviour); writes
request a *full* walk because bumping increments counters at every level up
to the root, so every level's current value must be trusted first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cacheline_codec import decode_counter_line
from repro.core.reconstruction import ReconstructionEngine
from repro.secure.counter_tree import CounterTree
from repro.secure.errors import AttackDetected
from repro.secure.mac import LineMacCalculator
from repro.secure.metadata_layout import MetadataLayout


@dataclass
class WalkReport:
    """What a verified walk did (latency/accounting evidence for tests)."""

    levels_visited: int = 0
    mismatched_levels: List[int] = field(default_factory=list)
    corrected_chips: Dict[int, int] = field(default_factory=dict)  # addr -> chip
    mac_computations: int = 0
    anchor_index: int = -1  # chain index of the cache hit (len(chain) = root)


class CounterLineSource:
    """Raw access to counter-type lines for the walk (lanes included).

    The walk needs the physical lanes (for parity reconstruction), unlike
    the baseline which only ever sees decoded payloads.
    """

    def __init__(self, synergy_store):
        self._store = synergy_store

    def load_lanes(self, address: int) -> Optional[List[bytes]]:
        """Nine raw lanes of a counter-type line, or None if never written."""
        return self._store.load_counter_lanes(address)

    def store_lanes_from_values(
        self, address: int, counters: List[int], mac: bytes
    ) -> None:
        """Re-encode and store a corrected line (scrub write-back)."""
        self._store.store_counter_line(address, counters, mac)


class SynergyTreeWalk:
    """The integrated verification + correction walk."""

    def __init__(
        self,
        layout: MetadataLayout,
        tree: CounterTree,
        mac_calc: LineMacCalculator,
        engine: ReconstructionEngine,
        source: CounterLineSource,
    ):
        self.layout = layout
        self.tree = tree
        self.mac_calc = mac_calc
        self.engine = engine
        self.source = source

    # ------------------------------------------------------------------

    def verified_chain(
        self, data_line: int, full: bool = False
    ) -> Tuple[Dict[int, List[int]], WalkReport]:
        """Verify (and if needed correct) the chain for ``data_line``.

        Returns trusted counters per chain line plus a report. With
        ``full=False`` (reads) the walk stops at the first cached level and
        only lines at or below it appear in the result; with ``full=True``
        (writes) every chain line is verified and returned. Raises
        :class:`AttackDetected` when a level cannot be corrected.
        """
        chain = self.layout.verification_chain(data_line)
        report = WalkReport()

        # ---- upward traversal ----
        trusted: Dict[int, List[int]] = {}
        observed: Dict[int, Tuple[List[int], Optional[bytes], Optional[List[bytes]]]] = {}
        anchor_index = len(chain)  # default anchor: the on-chip root
        for index, (address, _) in enumerate(chain):
            cached = self.tree.cache.lookup(address)
            if cached is not None:
                trusted[address] = cached
                if index < anchor_index:
                    anchor_index = index
                if not full:
                    break
                continue
            lanes = self.source.load_lanes(address)
            if lanes is None:
                observed[address] = (self.tree.fresh_line(), None, None)
            else:
                counters, mac, _parity = decode_counter_line(lanes)
                observed[address] = (counters, mac, lanes)
            report.levels_visited += 1
        report.anchor_index = anchor_index

        # Tentative upward MAC checks (hardware does these in flight); they
        # only *log* — correctness is established downward.
        for index in range(len(chain) - 1, -1, -1):
            address, _ = chain[index]
            if address not in observed:
                continue
            counters, mac, _lanes = observed[address]
            if mac is None:
                continue  # fresh line, nothing stored to verify yet
            parent_value = self._tentative_parent(chain, index, observed, trusted)
            report.mac_computations += 1
            expected = self.mac_calc.counter_line_mac(address, parent_value, counters)
            if expected != mac:
                report.mismatched_levels.append(index)

        # ---- downward traversal: establish trust level by level ----
        for index in range(len(chain) - 1, -1, -1):
            address, _ = chain[index]
            if address in trusted:
                continue
            if address not in observed:
                continue  # above a non-full walk's anchor: not needed
            counters, mac, lanes = observed[address]
            parent_value = self.tree.parent_value(chain, index, trusted)
            if mac is None:
                # Never-written line: only consistent if its parent slot is 0.
                if parent_value != 0:
                    raise AttackDetected(
                        "missing counter line under non-zero parent", address
                    )
                trusted[address] = counters
                self.tree.cache.insert(address, counters)
                continue
            report.mac_computations += 1
            expected = self.mac_calc.counter_line_mac(address, parent_value, counters)
            if expected == mac:
                trusted[address] = counters
                self.tree.cache.insert(address, counters)
                continue
            # Mismatch here can only be this line's error: correct it.
            outcome = self.engine.correct_counter_line(address, lanes, parent_value)
            if outcome is None:
                raise AttackDetected(
                    "uncorrectable counter-line error or attack", address
                )
            report.mac_computations += outcome.attempts
            report.corrected_chips[address] = outcome.faulty_chip
            fixed_counters, fixed_mac, _ = decode_counter_line(outcome.lanes)
            # Scrub: write the repaired line back.
            self.source.store_lanes_from_values(address, fixed_counters, fixed_mac)
            trusted[address] = fixed_counters
            self.tree.cache.insert(address, fixed_counters)

        return trusted, report

    # ------------------------------------------------------------------

    def _tentative_parent(
        self,
        chain: List[Tuple[int, int]],
        index: int,
        observed: Dict[int, Tuple[List[int], Optional[bytes], Optional[List[bytes]]]],
        trusted: Dict[int, List[int]],
    ) -> int:
        """Parent value as seen during the (untrusted) upward pass."""
        if index == len(chain) - 1:
            return self.tree.root
        parent_address, parent_slot = chain[index + 1]
        if parent_address in trusted:
            return trusted[parent_address][parent_slot]
        if parent_address in observed:
            counters, _mac, _lanes = observed[parent_address]
            return counters[parent_slot]
        return self.tree.root
