"""Synergy: the paper's primary contribution.

* :mod:`repro.core.cacheline_codec` — physical lane layouts of Fig. 7a:
  Data+MAC lines (MAC in the ECC chip), parity lines (ParityP in the ECC
  chip), counter/tree lines (ParityC/ParityT in the ECC chip).
* :mod:`repro.core.reconstruction` — the RAID-3 reconstruction engine of
  Fig. 5: sequentially hypothesise each chip faulty, rebuild its lane from
  parity, and accept the first hypothesis whose recomputed MAC matches.
* :mod:`repro.core.treewalk` — upward traversal for detection, downward
  traversal for correction (Fig. 7b/7c), integrated with the counter tree.
* :mod:`repro.core.failure_tracker` — permanent-chip-failure mitigation
  (Section IV-A): after repeated corrections blame one chip, pre-correct
  that chip's lane so steady-state costs a single MAC computation.
* :mod:`repro.core.synergy` — :class:`SynergyMemory`, the full co-design.
"""

from repro.core.failure_tracker import FaultyChipTracker
from repro.core.reconstruction import ReconstructionEngine, ReconstructionOutcome
from repro.core.scrubber import MemoryScrubber, ScrubReport
from repro.core.synergy import SynergyMemory

__all__ = [
    "FaultyChipTracker",
    "ReconstructionEngine",
    "ReconstructionOutcome",
    "MemoryScrubber",
    "ScrubReport",
    "SynergyMemory",
]
