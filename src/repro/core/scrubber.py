"""Background memory scrubbing for Synergy-protected memory.

Latent errors are dangerous for any parity-based scheme: a second fault
while the first sits uncorrected defeats single-chip correction. Real
systems walk memory in the background, letting the normal detect/correct
path repair latent errors early (FAULTSIM's scrub interval models the same
policy; see :mod:`repro.reliability.montecarlo`).

The scrubber reuses the exact read path of :class:`SynergyMemory` — every
line read is verified, corrected if needed, and the correction written
back — and reports what it found, giving operators the corrected-error log
the paper's §IV-B suggests monitoring for denial-of-service detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.synergy import SynergyMemory
from repro.secure.errors import SecureMemoryError
from repro.telemetry import get_registry, get_tracer


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    lines_scanned: int = 0
    corrections: int = 0
    corrections_by_chip: Dict[int, int] = field(default_factory=dict)
    uncorrectable_lines: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no error of any kind was encountered."""
        return not self.corrections and not self.uncorrectable_lines


class MemoryScrubber:
    """Walks a SynergyMemory, repairing latent errors via the read path."""

    def __init__(self, memory: SynergyMemory):
        self.memory = memory
        registry = get_registry()
        self._t_passes = registry.counter("core.scrub_passes")
        self._t_lines = registry.counter("core.scrub_lines_scanned")
        self._t_corrections = registry.counter("core.scrub_corrections")

    def scrub(self) -> ScrubReport:
        """Read-verify every data line; corrections are written back.

        Uncorrectable lines are recorded rather than raised: a scrubber
        must survey the full extent of damage, not stop at the first
        casualty (the operator decides what to do with the report).
        """
        memory = self.memory
        report = ScrubReport()
        before_blames = dict(memory.tracker.blame_counts)
        corrections_before = memory.stats.counter("data_corrections").value
        counter_corrections_before = memory.stats.counter(
            "counter_corrections"
        ).value
        for line in range(memory.layout.num_data_lines):
            report.lines_scanned += 1
            try:
                memory.read(line)
            except SecureMemoryError:
                report.uncorrectable_lines.append(line)
        report.corrections = (
            memory.stats.counter("data_corrections").value
            - corrections_before
            + memory.stats.counter("counter_corrections").value
            - counter_corrections_before
        )
        for chip, count in memory.tracker.blame_counts.items():
            delta = count - before_blames.get(chip, 0)
            if delta:
                report.corrections_by_chip[chip] = delta
        self._t_passes.inc()
        self._t_lines.inc(report.lines_scanned)
        self._t_corrections.inc(report.corrections)
        get_tracer().emit(
            "scrub_pass",
            lines_scanned=report.lines_scanned,
            corrections=report.corrections,
            uncorrectable=len(report.uncorrectable_lines),
        )
        return report
