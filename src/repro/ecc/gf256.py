"""GF(2^8) arithmetic for symbol-based (Reed-Solomon / Chipkill) codes.

Uses the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the
conventional choice for RS codes; exp/log tables are built once at import.
"""

from __future__ import annotations

from typing import List

_PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

_EXP: List[int] = [0] * 512
_LOG: List[int] = [0] * 256

_value = 1
for _power in range(255):
    _EXP[_power] = _value
    _LOG[_value] = _power
    _value <<= 1
    if _value & 0x100:
        _value ^= _PRIMITIVE_POLY
for _power in range(255, 512):
    _EXP[_power] = _EXP[_power - 255]


def gf_add(left: int, right: int) -> int:
    """Addition in GF(2^8) is XOR."""
    return left ^ right


def gf_mul(left: int, right: int) -> int:
    """Multiply two field elements via log tables."""
    if left == 0 or right == 0:
        return 0
    return _EXP[_LOG[left] + _LOG[right]]


def gf_div(numerator: int, denominator: int) -> int:
    """Divide field elements; division by zero raises."""
    if denominator == 0:
        raise ZeroDivisionError("GF(2^8) division by zero")
    if numerator == 0:
        return 0
    return _EXP[(_LOG[numerator] - _LOG[denominator]) % 255]


def gf_inv(value: int) -> int:
    """Multiplicative inverse."""
    if value == 0:
        raise ZeroDivisionError("zero has no inverse")
    return _EXP[255 - _LOG[value]]


def gf_pow(base: int, exponent: int) -> int:
    """Exponentiation."""
    if base == 0:
        return 0 if exponent else 1
    return _EXP[(_LOG[base] * exponent) % 255]


def alpha_pow(exponent: int) -> int:
    """Power of the primitive element alpha = 2."""
    return _EXP[exponent % 255]


def gf_log(value: int) -> int:
    """Discrete log base alpha; log(0) raises."""
    if value == 0:
        raise ValueError("log of zero is undefined")
    return _LOG[value]


def poly_eval(coefficients: List[int], point: int) -> int:
    """Evaluate a polynomial (highest-degree coefficient first) at ``point``."""
    result = 0
    for coefficient in coefficients:
        result = gf_mul(result, point) ^ coefficient
    return result


def poly_mul(left: List[int], right: List[int]) -> List[int]:
    """Multiply two polynomials over GF(2^8)."""
    product = [0] * (len(left) + len(right) - 1)
    for i, a in enumerate(left):
        if a == 0:
            continue
        for j, b in enumerate(right):
            if b:
                product[i + j] ^= gf_mul(a, b)
    return product
