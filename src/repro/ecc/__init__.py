"""Error-correcting code substrate.

* :mod:`repro.ecc.secded` — Hsiao-style SECDED Hamming(72,64), the code an
  ordinary 9-chip ECC-DIMM stores in its ECC chip (the paper's baseline).
* :mod:`repro.ecc.gf256` / :mod:`repro.ecc.reed_solomon` — GF(2^8) symbol
  arithmetic and an RS codec used to model Chipkill.
* :mod:`repro.ecc.chipkill` — symbol-based single-symbol-correct,
  double-symbol-detect Chipkill over 18 x8 chips (two lock-stepped DIMMs).
* :mod:`repro.ecc.parity` — RAID-3 XOR parity over chip contributions, the
  correction substrate of both Synergy and IVEC.
"""

from repro.ecc.chipkill import ChipkillCode
from repro.ecc.parity import xor_parity, reconstruct_missing
from repro.ecc.secded import Secded72_64, SecdedResult, SecdedStatus

__all__ = [
    "ChipkillCode",
    "xor_parity",
    "reconstruct_missing",
    "Secded72_64",
    "SecdedResult",
    "SecdedStatus",
]
