"""Chipkill: symbol-based ECC that tolerates a whole-chip failure.

Commercial Chipkill for x8 DRAM (Section II-B, Fig. 1b) lock-steps two
9-chip ECC-DIMMs across two channels: every access touches 18 chips, 16 of
which carry data and 2 carry Reed-Solomon check symbols. Treating each
chip's 8-bit contribution per beat as one GF(2^8) symbol gives an RS(18,16)
code per beat — minimum distance 3 — which corrects any single symbol error
(single *chip*, since a chip corrupts the same symbol position in every
beat) and detects double-symbol errors.

This module applies the RS codec beat-wise over a 128-byte double-cacheline
(two lock-stepped 64-byte lines), exposing encode / decode / chip-failure
semantics to both the functional tests and the reliability simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.ecc.reed_solomon import ReedSolomon, RsDecodeError

DATA_CHIPS = 16
CHECK_CHIPS = 2
TOTAL_CHIPS = DATA_CHIPS + CHECK_CHIPS
BEATS = 8  # DDR burst length


class ChipkillDecodeError(Exception):
    """Detected uncorrectable error (more than one faulty chip)."""


@dataclass
class ChipkillResult:
    """Corrected data and which chips were implicated."""

    data: bytes
    corrected_chips: List[int]


class ChipkillCode:
    """RS(18,16)-per-beat Chipkill over 18 lock-stepped x8 chips."""

    def __init__(self):
        self._rs = ReedSolomon(TOTAL_CHIPS, DATA_CHIPS)

    def encode(self, data: bytes) -> List[bytes]:
        """Encode 128 data bytes into 18 per-chip lanes of 8 bytes each.

        Lane c holds chip c's contribution: one symbol per beat.
        """
        if len(data) != DATA_CHIPS * BEATS:
            raise ValueError("Chipkill codeword covers %d bytes" % (DATA_CHIPS * BEATS))
        lanes = [bytearray(BEATS) for _ in range(TOTAL_CHIPS)]
        for beat in range(BEATS):
            symbols = [data[beat * DATA_CHIPS + chip] for chip in range(DATA_CHIPS)]
            codeword = self._rs.encode(symbols)
            for chip in range(TOTAL_CHIPS):
                lanes[chip][beat] = codeword[chip]
        return [bytes(lane) for lane in lanes]

    def decode(self, lanes: Sequence[bytes]) -> ChipkillResult:
        """Decode 18 lanes back to 128 data bytes, correcting <=1 chip."""
        if len(lanes) != TOTAL_CHIPS:
            raise ValueError("expected %d chip lanes" % TOTAL_CHIPS)
        if any(len(lane) != BEATS for lane in lanes):
            raise ValueError("each lane carries %d symbols" % BEATS)
        data = bytearray(DATA_CHIPS * BEATS)
        corrected_chips: set = set()
        for beat in range(BEATS):
            received = [lanes[chip][beat] for chip in range(TOTAL_CHIPS)]
            try:
                result = self._rs.decode(received)
            except RsDecodeError as exc:
                raise ChipkillDecodeError(
                    "uncorrectable error in beat %d" % beat
                ) from exc
            for position in result.error_positions:
                corrected_chips.add(position)
            for chip in range(DATA_CHIPS):
                data[beat * DATA_CHIPS + chip] = result.codeword[chip]
        if len(corrected_chips) > 1:
            # A single chip failure corrupts one symbol position across
            # beats; several implicated positions means a multi-chip event
            # that happened to alias to decodable single errors per beat.
            # Real controllers treat this as uncorrectable too.
            raise ChipkillDecodeError("errors span multiple chips")
        return ChipkillResult(bytes(data), sorted(corrected_chips))

    def decode_with_erasure(
        self, lanes: Sequence[bytes], failed_chip: Optional[int]
    ) -> ChipkillResult:
        """Decode when a chip is already known bad (erasure decoding).

        With one erasure the code retains single-*additional*-error
        detection, mirroring how controllers degrade after mapping out a
        failed device.
        """
        if failed_chip is None:
            return self.decode(lanes)
        if not 0 <= failed_chip < TOTAL_CHIPS:
            raise ValueError("failed_chip out of range")
        data = bytearray(DATA_CHIPS * BEATS)
        for beat in range(BEATS):
            received = [lanes[chip][beat] for chip in range(TOTAL_CHIPS)]
            try:
                result = self._rs.decode(received, erasures=[failed_chip])
            except RsDecodeError as exc:
                raise ChipkillDecodeError(
                    "uncorrectable beyond erased chip in beat %d" % beat
                ) from exc
            for chip in range(DATA_CHIPS):
                data[beat * DATA_CHIPS + chip] = result.codeword[chip]
        return ChipkillResult(bytes(data), [failed_chip])
