"""SECDED: single-error-correct, double-error-detect Hamming(72,64).

This is the code a conventional x8 ECC-DIMM stores in its ninth chip
(8 check bits per 64 data bits). We implement an extended Hamming code:
check bits at power-of-two positions of a 72-bit codeword plus an overall
parity bit, giving Hamming distance 4 — correct any 1-bit error, detect any
2-bit error.

The paper's baseline designs (SGX, SGX_O with ECC-DIMM) rely on exactly this
capability, and its weakness — any multi-bit chip failure defeats it — is
what motivates Synergy's chip-granularity protection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

_DATA_BITS = 64
_PARITY_POSITIONS = [1, 2, 4, 8, 16, 32, 64]  # within 1..71 (extended below)
_CODE_BITS = 72  # 64 data + 7 Hamming checks + 1 overall parity


class SecdedStatus(enum.Enum):
    """Outcome of a SECDED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"


@dataclass
class SecdedResult:
    """Decoded data plus what the decoder had to do to get it."""

    data: Optional[int]
    status: SecdedStatus
    flipped_bit: Optional[int] = None  # codeword bit position corrected


def _data_positions():
    """Codeword positions 1..71 that hold data bits (non powers of two)."""
    positions = []
    for position in range(1, _CODE_BITS):
        if position & (position - 1) != 0:
            positions.append(position)
    return positions


# Positions 1..71 contain 7 parity positions, leaving exactly 64 for data.
_DATA_POSITIONS = _data_positions()
assert len(_DATA_POSITIONS) == _DATA_BITS


class Secded72_64:
    """Encoder/decoder for the (72, 64) extended Hamming code.

    Codeword layout: bit 0 is the overall parity; bits 1..71 follow the
    classic Hamming arrangement with parity bits at power-of-two positions.
    """

    data_bits = _DATA_BITS
    code_bits = _CODE_BITS

    def encode(self, data: int) -> int:
        """Encode a 64-bit integer into a 72-bit codeword."""
        if not 0 <= data < (1 << _DATA_BITS):
            raise ValueError("data must be a 64-bit value")
        codeword = 0
        for bit_index, position in enumerate(_DATA_POSITIONS):
            if (data >> bit_index) & 1:
                codeword |= 1 << position
        for parity_position in _PARITY_POSITIONS:
            parity = 0
            for position in range(1, _CODE_BITS):
                if position & parity_position and (codeword >> position) & 1:
                    parity ^= 1
            if parity:
                codeword |= 1 << parity_position
        overall = bin(codeword).count("1") & 1
        codeword |= overall  # bit 0
        return codeword

    def decode(self, codeword: int) -> SecdedResult:
        """Decode a 72-bit codeword, correcting single-bit errors."""
        if not 0 <= codeword < (1 << _CODE_BITS):
            raise ValueError("codeword must be a 72-bit value")
        syndrome = 0
        for parity_position in _PARITY_POSITIONS:
            parity = 0
            for position in range(1, _CODE_BITS):
                if position & parity_position and (codeword >> position) & 1:
                    parity ^= 1
            if parity:
                syndrome |= parity_position
        overall = bin(codeword).count("1") & 1

        if syndrome == 0 and overall == 0:
            return SecdedResult(self._extract(codeword), SecdedStatus.CLEAN)
        if overall == 1:
            # Odd number of flipped bits: assume exactly one, correct it.
            flip_position = syndrome if syndrome != 0 else 0
            corrected = codeword ^ (1 << flip_position)
            return SecdedResult(
                self._extract(corrected), SecdedStatus.CORRECTED, flip_position
            )
        # Even error count with non-zero syndrome: detected, uncorrectable.
        return SecdedResult(None, SecdedStatus.DETECTED_UNCORRECTABLE)

    @staticmethod
    def _extract(codeword: int) -> int:
        data = 0
        for bit_index, position in enumerate(_DATA_POSITIONS):
            if (codeword >> position) & 1:
                data |= 1 << bit_index
        return data
