"""A Reed-Solomon codec over GF(2^8) with error and erasure decoding.

Chipkill memory protection is symbol-based error correction (Reed & Solomon
1960, as cited by the paper); with ``n - k = 2`` check symbols the code has
minimum distance 3: it corrects one symbol *error* (unknown location) or two
symbol *erasures* (known locations). This is exactly the single-symbol-
correct / double-symbol-detect capability commercial Chipkill advertises,
with one symbol supplied by each DRAM chip.

The decoder implements the classical pipeline — syndromes, errors-and-
erasures Berlekamp-Massey, Chien search, Forney — so it works for any
(n, k), not just the Chipkill shape; tests exercise wider configurations.

Conventions
-----------
Codeword symbol ``c[i]`` is the coefficient of ``x^(n-1-i)`` (systematic,
data first). Narrow-sense code: roots at alpha^1 .. alpha^(n-k). The locator
value of position ``i`` is ``X_i = alpha^(n-1-i)``; locator polynomials are
kept in low-to-high coefficient order with roots at ``X_i^-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.ecc.gf256 import alpha_pow, gf_div, gf_inv, gf_mul, poly_mul


class RsDecodeError(Exception):
    """Raised when the received word is beyond the code's correction power."""


@dataclass
class RsDecodeResult:
    """Corrected codeword and the error positions the decoder fixed."""

    codeword: List[int]
    error_positions: List[int]


def _poly_eval_low(coefficients: Sequence[int], point: int) -> int:
    """Evaluate a low-to-high coefficient polynomial at ``point``."""
    result = 0
    power = 1
    for coefficient in coefficients:
        if coefficient:
            result ^= gf_mul(coefficient, power)
        power = gf_mul(power, point)
    return result


class ReedSolomon:
    """RS(n, k) over GF(2^8) in systematic form."""

    def __init__(self, n: int, k: int):
        if not 0 < k < n <= 255:
            raise ValueError("require 0 < k < n <= 255")
        self.n = n
        self.k = k
        self.num_checks = n - k
        generator = [1]
        for power in range(1, self.num_checks + 1):
            generator = poly_mul(generator, [1, alpha_pow(power)])
        self._generator = generator  # high-to-low coefficients

    # -- encoding ---------------------------------------------------------

    def encode(self, data: Sequence[int]) -> List[int]:
        """Append ``n - k`` check symbols to ``k`` data symbols."""
        data = list(data)
        if len(data) != self.k:
            raise ValueError("expected %d data symbols" % self.k)
        if any(not 0 <= symbol < 256 for symbol in data):
            raise ValueError("symbols must be bytes")
        remainder = data + [0] * self.num_checks
        for position in range(self.k):
            coefficient = remainder[position]
            if coefficient == 0:
                continue
            # Generator is monic: subtract coefficient * generator.
            for offset, gen_coefficient in enumerate(self._generator):
                remainder[position + offset] ^= gf_mul(coefficient, gen_coefficient)
        return data + remainder[self.k :]

    # -- decoding ---------------------------------------------------------

    def syndromes(self, received: Sequence[int]) -> List[int]:
        """Syndromes S_1..S_{n-k}; all zero iff the word is a codeword."""
        received = list(received)
        if len(received) != self.n:
            raise ValueError("expected %d symbols" % self.n)
        synd = []
        for power in range(1, self.num_checks + 1):
            point = alpha_pow(power)
            value = 0
            for symbol in received:
                value = gf_mul(value, point) ^ symbol
            synd.append(value)
        return synd

    def decode(
        self,
        received: Sequence[int],
        erasures: Optional[Sequence[int]] = None,
    ) -> RsDecodeResult:
        """Correct errors and erasures; succeeds iff ``2e + f <= n - k``."""
        received = list(received)
        synd = self.syndromes(received)
        erasure_positions = sorted(set(erasures or []))
        for position in erasure_positions:
            if not 0 <= position < self.n:
                raise ValueError("erasure position out of range")
        if len(erasure_positions) > self.num_checks:
            raise RsDecodeError("more erasures than check symbols")
        if all(s == 0 for s in synd):
            return RsDecodeResult(received, [])

        # Erasure locator Gamma(x) = prod (1 + X_e * x).
        gamma = [1]
        for position in erasure_positions:
            x_value = alpha_pow(self.n - 1 - position)
            gamma = self._poly_mul_low(gamma, [1, x_value])

        locator = self._errors_and_erasures_bm(synd, gamma, len(erasure_positions))
        max_errors = (self.num_checks - len(erasure_positions)) // 2
        if (len(locator) - 1) - len(erasure_positions) > max_errors:
            raise RsDecodeError("too many symbol errors")

        positions = self._chien_search(locator)
        if positions is None:
            raise RsDecodeError("error locator has wrong root count")

        corrected = self._forney(received, synd, locator, positions)
        if any(s != 0 for s in self.syndromes(corrected)):
            raise RsDecodeError("correction failed verification")
        error_positions = [p for p in positions if received[p] != corrected[p]]
        return RsDecodeResult(corrected, error_positions)

    # -- internals --------------------------------------------------------

    @staticmethod
    def _poly_mul_low(left: Sequence[int], right: Sequence[int]) -> List[int]:
        product = [0] * (len(left) + len(right) - 1)
        for i, a in enumerate(left):
            if a == 0:
                continue
            for j, b in enumerate(right):
                if b:
                    product[i + j] ^= gf_mul(a, b)
        return product

    def _errors_and_erasures_bm(
        self, synd: List[int], gamma: List[int], num_erasures: int
    ) -> List[int]:
        """Berlekamp-Massey seeded with the erasure locator.

        Returns the combined locator Psi(x) = Lambda(x) * Gamma(x). Standard
        formulation: initialise both the connection polynomial and the
        auxiliary polynomial to Gamma and iterate over syndromes f..2t-1.
        """
        connection = list(gamma)
        auxiliary = list(gamma)
        degree = num_erasures
        gap = 1
        last_discrepancy = 1
        for step in range(num_erasures, len(synd)):
            discrepancy = 0
            for index, coefficient in enumerate(connection):
                if coefficient and 0 <= step - index < len(synd):
                    discrepancy ^= gf_mul(coefficient, synd[step - index])
            if discrepancy == 0:
                gap += 1
                continue
            if 2 * degree <= step + num_erasures:
                saved = list(connection)
                scale = gf_div(discrepancy, last_discrepancy)
                connection = self._poly_subtract_shifted(connection, auxiliary, scale, gap)
                auxiliary = saved
                degree = step + 1 - degree + num_erasures
                last_discrepancy = discrepancy
                gap = 1
            else:
                scale = gf_div(discrepancy, last_discrepancy)
                connection = self._poly_subtract_shifted(connection, auxiliary, scale, gap)
                gap += 1
        while len(connection) > 1 and connection[-1] == 0:
            connection.pop()
        return connection

    @staticmethod
    def _poly_subtract_shifted(
        target: List[int], source: List[int], scale: int, shift: int
    ) -> List[int]:
        """Return ``target - scale * x^shift * source`` (XOR arithmetic)."""
        length = max(len(target), len(source) + shift)
        result = list(target) + [0] * (length - len(target))
        for index, coefficient in enumerate(source):
            if coefficient:
                result[index + shift] ^= gf_mul(scale, coefficient)
        return result

    def _chien_search(self, locator: List[int]) -> Optional[List[int]]:
        """Positions whose locator value's inverse is a root of ``locator``."""
        positions = []
        for position in range(self.n):
            point = alpha_pow(-(self.n - 1 - position) % 255)
            if _poly_eval_low(locator, point) == 0:
                positions.append(position)
        if len(positions) != len(locator) - 1:
            return None
        return positions

    def _forney(
        self,
        received: List[int],
        synd: List[int],
        locator: List[int],
        positions: List[int],
    ) -> List[int]:
        """Error magnitudes via the Forney formula (narrow-sense, b=1)."""
        # Omega(x) = S(x) * Psi(x) mod x^(n-k), S(x) = S_1 + S_2 x + ...
        omega = [0] * self.num_checks
        for out_index in range(self.num_checks):
            total = 0
            for loc_index, loc_coefficient in enumerate(locator):
                syn_index = out_index - loc_index
                if 0 <= syn_index < len(synd) and loc_coefficient:
                    total ^= gf_mul(loc_coefficient, synd[syn_index])
            omega[out_index] = total

        # Formal derivative: d/dx sum c_d x^d = sum over odd d of c_d x^(d-1).
        derivative = [
            locator[degree] if degree % 2 == 1 else 0
            for degree in range(1, len(locator))
        ]

        corrected = list(received)
        for position in positions:
            x_inv = alpha_pow(-(self.n - 1 - position) % 255)
            omega_value = _poly_eval_low(omega, x_inv)
            derivative_value = _poly_eval_low(derivative, x_inv)
            if derivative_value == 0:
                raise RsDecodeError("Forney derivative vanished")
            magnitude = gf_div(omega_value, derivative_value)
            corrected[position] ^= magnitude
        return corrected
