"""RAID-3 style XOR parity over chip contributions.

Synergy's correction substrate (Section III): an 8-byte parity is the XOR of
the nine 8-byte chip contributions of a data cacheline (8 data chips + the
MAC chip), so any single missing contribution can be reconstructed from the
parity and the other eight. Counter cachelines use an 8-way parity over the
eight counter-carrying chips instead, and parity cachelines themselves carry
a parity-of-parities (ParityP) in the ECC chip.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.util.bitops import bytes_xor


def xor_parity(contributions: Sequence[bytes]) -> bytes:
    """XOR an arbitrary number of equal-length byte strings."""
    if not contributions:
        raise ValueError("need at least one contribution")
    result = bytes(len(contributions[0]))
    for contribution in contributions:
        result = bytes_xor(result, contribution)
    return result


def reconstruct_missing(
    contributions: Sequence[bytes], parity: bytes, missing_index: int
) -> bytes:
    """Reconstruct one missing contribution from parity and the others.

    ``contributions`` is the full list with a placeholder (ignored) at
    ``missing_index``; returns what that entry must have been for the XOR of
    all contributions to equal ``parity``.
    """
    if not 0 <= missing_index < len(contributions):
        raise ValueError("missing_index out of range")
    result = bytes(parity)
    for index, contribution in enumerate(contributions):
        if index == missing_index:
            continue
        result = bytes_xor(result, contribution)
    return result


def reconstruction_candidates(
    contributions: Sequence[bytes], parity: bytes
) -> List[List[bytes]]:
    """All single-chip reconstruction hypotheses, in chip order.

    Candidate i is the contribution list with entry i replaced by the value
    the parity implies. The Synergy reconstruction engine walks this list,
    re-verifying the MAC for each hypothesis (Fig. 5b).
    """
    candidates = []
    for index in range(len(contributions)):
        repaired = list(contributions)
        repaired[index] = reconstruct_missing(contributions, parity, index)
        candidates.append(repaired)
    return candidates
