"""Async experiment job service.

A stdlib-only (asyncio) long-running service that wraps the harness:
clients POST :class:`~repro.harness.spec.ExperimentSpec` payloads, the
service coalesces identical concurrent submissions onto one simulation,
streams per-cell progress, and serves results from a size-budgeted
content-addressed run cache. Unique specs execute across ``workers``
parallel slots (``--workers``), each inside its own
:class:`~repro.simcontext.SimContext`; results are byte-identical at any
worker count. See DESIGN.md ("Service architecture" and "Execution
contexts & the concurrency model").
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    ACCEPTED,
    CACHED,
    COALESCED,
    Job,
    JobCancelled,
    JobManager,
    ServiceStats,
    canonical_result_bytes,
)
from repro.service.server import ExperimentService, ServiceConfig, serve
from repro.service.worker import WorkerBridge

__all__ = [
    "ACCEPTED",
    "CACHED",
    "COALESCED",
    "ExperimentService",
    "Job",
    "JobCancelled",
    "JobManager",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "WorkerBridge",
    "canonical_result_bytes",
    "serve",
]
