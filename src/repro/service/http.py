"""Minimal HTTP/1.1 layer over asyncio streams.

The issue forbids both third-party frameworks and ``http.server``; what the
service needs from HTTP is small enough to do directly on
``asyncio.start_server``: parse one request (line + headers + sized body),
dispatch on method/path, write one response, close. Every connection is
``Connection: close`` — the load-test client opens a fresh connection per
call, which is also the honest way to measure submission latency.

Routes (all JSON):

====== ================================ =======================================
POST   /v1/jobs                          submit a spec -> job id + disposition
GET    /v1/jobs/<id>                     job status (state, progress, ETA)
GET    /v1/jobs/<id>/events              progress feed; ``?since=N&wait_s=S``
                                         long-polls for events past ``N``
GET    /v1/jobs/<id>/result              result bytes; ``?wait_s=S`` blocks
POST   /v1/jobs/<id>/cancel              request cooperative cancellation
GET    /v1/stats                         service + cache counters
GET    /v1/healthz                       liveness probe
====== ================================ =======================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.harness.spec import SpecError
from repro.service.jobs import CACHED, DONE, FAILED, JobManager

#: Upper bound on request bodies (specs are tiny; anything bigger is abuse).
MAX_BODY_BYTES = 1 << 20

#: Long-poll waits are clamped to keep connections bounded.
MAX_WAIT_SECONDS = 60.0

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """An error that maps directly to an HTTP response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.body = body

    def json(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON")

    def query_float(self, name: str, default: float = 0.0) -> float:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise HttpError(400, "query parameter %r must be a number" % name)

    def query_int(self, name: str, default: int = 0) -> int:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(400, "query parameter %r must be an integer" % name)


Response = Tuple[int, bytes, str]


def json_response(status: int, payload: object) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return status, body, "application/json"


class ServiceProtocol:
    """Dispatches parsed requests against a :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        extra_stats: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        self.manager = manager
        self._extra_stats = extra_stats

    async def dispatch(self, request: Request) -> Response:
        parts = [part for part in request.path.split("/") if part]
        if parts[:1] != ["v1"]:
            raise HttpError(404, "unknown path %r" % request.path)
        tail = parts[1:]
        if tail == ["healthz"] and request.method == "GET":
            return json_response(200, {"ok": True})
        if tail == ["stats"] and request.method == "GET":
            return self._stats()
        if tail == ["jobs"] and request.method == "POST":
            return self._submit(request)
        if len(tail) >= 2 and tail[0] == "jobs":
            return await self._job_route(request, tail[1], tail[2:])
        raise HttpError(404, "unknown path %r" % request.path)

    def _submit(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "spec payload must be a JSON object")
        try:
            job, disposition = self.manager.submit(payload)
        except SpecError as exc:
            self.manager.stats.rejected.inc()
            raise HttpError(400, str(exc))
        status = 200 if disposition == CACHED else 202
        return json_response(
            status,
            {
                "id": job.id,
                "key": job.key,
                "disposition": disposition,
                "state": job.state,
            },
        )

    async def _job_route(
        self, request: Request, job_id: str, rest: List[str]
    ) -> Response:
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, "no such job %r" % job_id)
        if not rest and request.method == "GET":
            return json_response(200, job.status())
        if rest == ["cancel"] and request.method == "POST":
            self.manager.cancel(job_id)
            return json_response(
                200, {"id": job.id, "state": job.state, "cancel_requested": True}
            )
        if rest == ["events"] and request.method == "GET":
            since = max(0, request.query_int("since", 0))
            wait_s = min(MAX_WAIT_SECONDS, request.query_float("wait_s", 0.0))
            if wait_s > 0:
                await job.wait_events(since, wait_s)
            events = job.events[since:]
            return json_response(
                200,
                {
                    "id": job.id,
                    "state": job.state,
                    "since": since,
                    "next": since + len(events),
                    "events": events,
                },
            )
        if rest == ["result"] and request.method == "GET":
            wait_s = min(MAX_WAIT_SECONDS, request.query_float("wait_s", 0.0))
            if wait_s > 0:
                await job.wait_done(wait_s)
            if job.state == DONE and job.result_bytes is not None:
                return 200, job.result_bytes, "application/json"
            if job.state == FAILED:
                raise HttpError(500, job.error or "job failed")
            if job.terminal:
                raise HttpError(409, "job %s was cancelled" % job.id)
            raise HttpError(408, "job %s is %s" % (job.id, job.state))
        raise HttpError(404, "unknown path %r" % request.path)

    def _stats(self) -> Response:
        payload: Dict[str, object] = {"service": self.manager.stats.as_dict()}
        cache = self.manager.run_cache
        if cache is not None:
            payload["cache"] = {
                "root": cache.root,
                "entries": len(cache),
                "size_bytes": cache.size_bytes(),
            }
        if self._extra_stats is not None:
            payload.update(self._extra_stats())
        return json_response(200, payload)


async def handle_connection(
    protocol: ServiceProtocol,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve exactly one request on one connection, then close it."""
    try:
        try:
            request = await _read_request(reader)
        except HttpError as exc:
            await _write_response(
                writer, json_response(exc.status, {"error": exc.message})
            )
            return
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            return  # client went away or sent garbage before a full request
        try:
            response = await protocol.dispatch(request)
        except HttpError as exc:
            response = json_response(exc.status, {"error": exc.message})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # lint-ok: H301 connection isolation — a
            # handler bug must 500 this request, not kill the accept loop.
            response = json_response(
                500, {"error": "%s: %s" % (type(exc).__name__, exc)}
            )
        await _write_response(writer, response)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # peer already hung up; nothing left to close


async def _read_request(reader: asyncio.StreamReader) -> Request:
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise HttpError(400, "bad Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length > 0 else b""
    split = urlsplit(target)
    query = {
        name: values[-1]
        for name, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    return Request(method.upper(), split.path, query, body)


async def _write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    status, body, content_type = response
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %d\r\n"
        "Connection: close\r\n"
        "\r\n" % (status, reason, content_type, len(body))
    )
    try:
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
    except (ConnectionError, OSError):
        pass  # client disconnected mid-response; nothing to salvage
