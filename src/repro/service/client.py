"""Blocking stdlib client for the experiment service.

Built on ``http.client`` (the issue forbids serving with ``http.server``;
the *client* side of the stdlib HTTP stack is fair game). One connection
per call matches the server's ``Connection: close`` policy and keeps the
client safe to share across threads — the load-test harness drives one
:class:`ServiceClient` from dozens of submitter threads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Mapping, Optional, Tuple


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status
        self.message = message


class ServiceClient:
    """Talks to one :class:`~repro.service.server.ExperimentService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642, timeout_s: float = 120.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)

    # -- raw transport --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            encoded: Optional[bytes] = None
            headers: Dict[str, str] = {}
            if body is not None:
                encoded = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def _json(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Dict[str, object]:
        status, raw = self._request(method, path, body)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(status, "unparseable response body")
        if status >= 400:
            message = ""
            if isinstance(payload, dict):
                message = str(payload.get("error", ""))
            raise ServiceError(status, message or raw.decode("utf-8", "replace"))
        if not isinstance(payload, dict):
            raise ServiceError(status, "expected a JSON object response")
        return payload

    # -- API ------------------------------------------------------------------

    def healthz(self) -> bool:
        try:
            payload = self._json("GET", "/v1/healthz")
        except (ServiceError, OSError):
            return False
        return bool(payload.get("ok"))

    def wait_ready(self, timeout_s: float = 10.0) -> bool:
        """Poll ``/v1/healthz`` until it answers (or the timeout passes)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.healthz():
                return True
            time.sleep(0.05)
        return self.healthz()

    def submit(self, spec: Mapping[str, object]) -> Dict[str, object]:
        """Submit one spec; returns ``{id, key, disposition, state}``."""
        return self._json("POST", "/v1/jobs", body=dict(spec))

    def status(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", "/v1/jobs/%s" % job_id)

    def events(
        self, job_id: str, since: int = 0, wait_s: float = 0.0
    ) -> Dict[str, object]:
        return self._json(
            "GET",
            "/v1/jobs/%s/events?since=%d&wait_s=%s" % (job_id, since, wait_s),
        )

    def stream_events(
        self, job_id: str, poll_wait_s: float = 5.0, max_wait_s: float = 600.0
    ) -> List[Dict[str, object]]:
        """Long-poll the event feed until the job ends; returns all events."""
        collected: List[Dict[str, object]] = []
        deadline = time.monotonic() + max_wait_s
        while time.monotonic() < deadline:
            page = self.events(job_id, since=len(collected), wait_s=poll_wait_s)
            events = page.get("events")
            if isinstance(events, list):
                collected.extend(events)
            state = page.get("state")
            if state in ("done", "failed", "cancelled"):
                return collected
        raise TimeoutError("job %s still running after %.0fs" % (job_id, max_wait_s))

    def result_bytes(self, job_id: str, max_wait_s: float = 600.0) -> bytes:
        """The job's exact result bytes, blocking until it completes."""
        deadline = time.monotonic() + max_wait_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("job %s timed out" % job_id)
            wait_s = min(30.0, remaining)
            status, raw = self._request(
                "GET", "/v1/jobs/%s/result?wait_s=%s" % (job_id, wait_s)
            )
            if status == 200:
                return raw
            if status == 408:
                continue  # long-poll expired while the job was still running
            message = raw.decode("utf-8", "replace")
            try:
                parsed = json.loads(message)
                if isinstance(parsed, dict) and "error" in parsed:
                    message = str(parsed["error"])
            except ValueError:
                pass  # non-JSON error body; report it verbatim
            raise ServiceError(status, message)

    def result(self, job_id: str, max_wait_s: float = 600.0) -> object:
        """The job's result decoded from JSON."""
        return json.loads(self.result_bytes(job_id, max_wait_s).decode("utf-8"))

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("POST", "/v1/jobs/%s/cancel" % job_id)

    def stats(self) -> Dict[str, object]:
        return self._json("GET", "/v1/stats")
