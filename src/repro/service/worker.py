"""Worker pool: runs queued jobs off the event loop, N at a time.

Historically the bridge was pinned to a **single** worker thread because
the simulator stack kept process-global mutable state (telemetry registry
stack, tracer, run memos, generator hints). That state now lives on
:class:`~repro.simcontext.SimContext` scopes, so the bridge runs ``workers``
drain tasks, each owning:

* one long-lived :class:`SimContext` — its memos stay warm across the jobs
  that slot executes, and are invisible to every other slot;
* the captured :class:`~repro.parallel.ExecutionContext` — scoped execution
  overrides (test cache dirs, ``--no-cache``) are thread-local, so the
  bridge re-applies the policy captured at construction on each worker
  thread.

Two execution modes per job, chosen by ``worker_processes``:

* **thread** (default): the spec runs on a pool thread inside its slot's
  context. Worker threads spend most of their life blocked in the per-spec
  *process* fan-out (``repro.parallel.parallel_map``), so N slots overlap
  usefully even under the GIL.
* **process**: the spec runs in a forked child (its own interpreter, its
  own fresh context), streaming progress events back over a pipe; the
  parent thread polls the pipe, forwards events to the loop, and terminates
  the child the moment the job's cancel flag rises. Full CPU scaling, and
  cancellation cannot perturb a neighbour by construction.

Either way, progress events are marshalled to the event loop with
``call_soon_threadsafe`` *per job* from a single thread, so each job's
``seq`` numbers stay dense and ordered at any worker count; and because
every cell is a pure function of its content key, results are byte-
identical at any worker count (the load test asserts this).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import multiprocessing
import multiprocessing.connection
import traceback
from typing import Dict, Optional

from repro.harness.experiments import run_spec
from repro.parallel.context import ExecutionContext, applied, get_context
from repro.service.jobs import (
    Job,
    JobCancelled,
    JobManager,
    canonical_result_bytes,
)
from repro.sim.runner import cell_progress
from repro.simcontext import SimContext, activate, sim_context

#: How often (seconds) the parent polls a process-mode child for progress
#: events and re-checks the cancel flag. Bounds cancellation latency.
_CHILD_POLL_S = 0.05


class WorkerBridge:
    """Drains the job queue through ``workers`` executor slots."""

    def __init__(
        self,
        manager: JobManager,
        spec_jobs: int = 1,
        cache_budget_bytes: int = 0,
        workers: int = 1,
        worker_processes: bool = False,
    ) -> None:
        self.manager = manager
        #: Default process fan-out for specs that don't pin their own.
        self.spec_jobs = max(1, int(spec_jobs))
        #: On-disk cache budget enforced after each run (0 = unlimited).
        self.cache_budget_bytes = max(0, int(cache_budget_bytes))
        self.workers = max(1, int(workers))
        self.worker_processes = bool(worker_processes)
        #: The execution policy visible where the service was constructed;
        #: re-applied on worker threads (scoped overrides don't cross
        #: threads on their own).
        self.exec_context: ExecutionContext = get_context()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service-worker"
        )
        self._tasks: Dict[int, "asyncio.Task[None]"] = {}
        #: Serialises cache-budget enforcement across slots: concurrent
        #: LRU scans would double-count sizes and over-evict.
        self._budget_lock: Optional[asyncio.Lock] = None

    def start(self) -> None:
        """Begin draining the queue with ``workers`` slots (idempotent)."""
        if self._budget_lock is None:
            self._budget_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        for slot in range(self.workers):
            task = self._tasks.get(slot)
            if task is None or task.done():
                self._tasks[slot] = loop.create_task(self._run(slot))

    async def stop(self) -> None:
        """Stop every drain task and release the worker threads + pool."""
        tasks = [task for task in self._tasks.values() if not task.done()]
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()
        self._executor.shutdown(wait=False)
        # Jobs with spec.jobs > 1 fan out through the shared persistent
        # pool; join those workers with the service instead of leaving
        # them to atexit.
        from repro.parallel import shutdown_pool

        shutdown_pool()

    async def _run(self, slot: int) -> None:
        # One long-lived simulation scope per slot: memos stay warm across
        # this slot's jobs and never leak into a neighbour's.
        context = SimContext(name="service-worker-%d" % slot)
        loop = asyncio.get_running_loop()
        while True:
            job = await self.manager.queue.get()
            if job.terminal:
                continue  # cancelled while queued
            self.manager.start(job)
            try:
                payload = await loop.run_in_executor(
                    self._executor, self._execute, job, loop, context
                )
            except asyncio.CancelledError:
                raise
            except JobCancelled:
                self.manager.finalize_cancel(job)
                continue
            except Exception as exc:  # lint-ok: H301 job isolation — one bad
                # spec must fail its own job, not take down the service loop.
                detail = "%s: %s" % (type(exc).__name__, exc)
                self.manager.fail(job, detail)
                job.record_event(
                    "traceback",
                    {"text": traceback.format_exc(limit=8)},
                )
                continue
            # Enforce the cache budget *before* publishing the result:
            # clients observe completion and a within-budget cache as one
            # event, instead of racing the eviction scan.
            if self.cache_budget_bytes > 0 and self.manager.run_cache is not None:
                assert self._budget_lock is not None
                async with self._budget_lock:
                    await loop.run_in_executor(
                        self._executor,
                        self.manager.run_cache.enforce_budget,
                        self.cache_budget_bytes,
                    )
            self.manager.finish(job, canonical_result_bytes(payload))

    # -- worker-thread body ---------------------------------------------------

    def _execute(
        self, job: Job, loop: asyncio.AbstractEventLoop, context: SimContext
    ) -> object:
        """Run one spec on a worker thread; returns its raw payload.

        Raises :class:`JobCancelled` as soon as the cancel flag is observed
        (checked at every progress event, i.e. at cell granularity — or on
        a ~50 ms clock in process mode).
        """
        if job.cancel_flag_set():
            raise JobCancelled(job.id)
        with applied(self.exec_context):
            if self.worker_processes:
                payload = self._execute_in_child(job, loop)
            else:
                payload = self._execute_inline(job, loop, context)
            if job.cancel_flag_set():
                raise JobCancelled(job.id)
            if self.manager.run_cache is not None:
                self.manager.run_cache.put(job.key, _jsonable(payload))
        return payload

    def _execute_inline(
        self, job: Job, loop: asyncio.AbstractEventLoop, context: SimContext
    ) -> object:
        """Thread mode: run the spec in this thread, inside the slot scope."""

        def on_progress(event: Dict[str, object]) -> None:
            if job.cancel_flag_set():
                raise JobCancelled(job.id)
            loop.call_soon_threadsafe(self.manager.record_progress, job, event)

        with activate(context):
            with cell_progress(on_progress):
                return run_spec(
                    job.spec,
                    quiet=True,
                    jobs=job.spec.jobs or self.spec_jobs,
                )

    def _execute_in_child(
        self, job: Job, loop: asyncio.AbstractEventLoop
    ) -> object:
        """Process mode: fork a child for the spec, stream progress back.

        The child simulates inside a fresh :func:`sim_context` and writes
        ``("progress", event)`` / ``("result", payload)`` / ``("error",
        detail, tb)`` tuples to its end of a pipe. This thread polls the
        parent end: forwarding events preserves per-job ordering (single
        sender, FIFO pipe, one forwarding thread), and a raised cancel flag
        terminates the child between polls — a killed neighbour cannot
        perturb anyone else's simulation state, it never shared any.
        """
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        child = ctx.Process(
            target=_child_main,
            args=(
                child_conn,
                job.spec.to_payload(),
                job.spec.jobs or self.spec_jobs,
                self.exec_context,
            ),
            name="repro-service-job",
        )
        child.start()
        child_conn.close()  # the parent keeps only the read end
        try:
            while True:
                if job.cancel_flag_set():
                    raise JobCancelled(job.id)
                if not parent_conn.poll(_CHILD_POLL_S):
                    if child.is_alive():
                        continue
                    # Child died without a result message (segfault, kill).
                    raise RuntimeError(
                        "worker child exited with code %s" % child.exitcode
                    )
                try:
                    message = parent_conn.recv()
                except EOFError:
                    raise RuntimeError(
                        "worker child closed the pipe without a result"
                    ) from None
                kind = message[0]
                if kind == "progress":
                    loop.call_soon_threadsafe(
                        self.manager.record_progress, job, message[1]
                    )
                elif kind == "result":
                    return message[1]
                elif kind == "error":
                    raise RuntimeError(message[1] + "\n" + message[2])
        finally:
            if child.is_alive():
                child.terminate()
            child.join()
            parent_conn.close()


def _child_main(
    conn: "multiprocessing.connection.Connection",
    spec_payload: Dict[str, object],
    jobs: int,
    exec_context: ExecutionContext,
) -> None:
    """Process-mode child body: simulate one spec, stream events + result.

    Runs inside a fresh :func:`sim_context` (a fork inherits the parent's
    default-context memos as copy-on-write snapshots, but this scope keeps
    every mutation private) and under the service's captured execution
    policy (fork happens on a worker thread, whose scoped override state
    is *not* what the service was configured with).
    """
    from repro.harness.spec import ExperimentSpec

    try:
        spec = ExperimentSpec.from_payload(spec_payload)

        def forward(event: Dict[str, object]) -> None:
            conn.send(("progress", event))

        with applied(exec_context):
            with sim_context(name="service-child"):
                with cell_progress(forward):
                    payload = run_spec(spec, quiet=True, jobs=jobs)
        conn.send(("result", _jsonable(payload)))
    except BaseException as exc:  # lint-ok: H301 the child's last act is
        # reporting the failure; anything escaping here is lost to a pipe.
        detail = "%s: %s" % (type(exc).__name__, exc)
        try:
            conn.send(("error", detail, traceback.format_exc(limit=8)))
        except OSError:
            pass  # parent already gone; nothing left to report to
    finally:
        conn.close()


def _jsonable(payload: object) -> object:
    """Defensive JSON round-trip before persisting a spec result."""
    return json.loads(json.dumps(payload))
