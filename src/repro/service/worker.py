"""Worker bridge: runs queued jobs off the event loop, one at a time.

The simulator stack keeps deliberate process-global state — the execution
context (``overridden``), :data:`~repro.parallel.EXECUTION_STATS` and the
in-process run memo — none of which is thread-safe. So the bridge executes
specs on a **single** dedicated thread; service concurrency comes from the
three dedup tiers in :class:`~repro.service.jobs.JobManager` plus the
per-spec *process* fan-out (``jobs=N``) inside each simulation.

Progress events raised by the runner on the worker thread are marshalled
to the event loop with ``call_soon_threadsafe``; the same callback checks
the job's cancel flag, so cancellation is cooperative at cell granularity.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import traceback
from typing import Dict, Optional

from repro.harness.experiments import run_spec
from repro.service.jobs import (
    Job,
    JobCancelled,
    JobManager,
    canonical_result_bytes,
)
from repro.sim.runner import cell_progress


class WorkerBridge:
    """Drains the job queue through one executor thread."""

    def __init__(
        self,
        manager: JobManager,
        spec_jobs: int = 1,
        cache_budget_bytes: int = 0,
    ) -> None:
        self.manager = manager
        #: Default process fan-out for specs that don't pin their own.
        self.spec_jobs = max(1, int(spec_jobs))
        #: On-disk cache budget enforced after each run (0 = unlimited).
        self.cache_budget_bytes = max(0, int(cache_budget_bytes))
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-worker"
        )
        self._task: Optional["asyncio.Task[None]"] = None

    def start(self) -> None:
        """Begin draining the queue (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop the drain loop and release the worker thread."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self._executor.shutdown(wait=False)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.manager.queue.get()
            if job.terminal:
                continue  # cancelled while queued
            self.manager.start(job)
            try:
                payload = await loop.run_in_executor(
                    self._executor, self._execute, job, loop
                )
            except asyncio.CancelledError:
                raise
            except JobCancelled:
                self.manager.finalize_cancel(job)
                continue
            except Exception as exc:  # lint-ok: H301 job isolation — one bad
                # spec must fail its own job, not take down the service loop.
                detail = "%s: %s" % (type(exc).__name__, exc)
                self.manager.fail(job, detail)
                job.record_event(
                    "traceback",
                    {"text": traceback.format_exc(limit=8)},
                )
                continue
            self.manager.finish(job, canonical_result_bytes(payload))
            if self.cache_budget_bytes > 0 and self.manager.run_cache is not None:
                await loop.run_in_executor(
                    self._executor,
                    self.manager.run_cache.enforce_budget,
                    self.cache_budget_bytes,
                )

    # -- worker-thread body ---------------------------------------------------

    def _execute(self, job: Job, loop: asyncio.AbstractEventLoop) -> object:
        """Run one spec on the worker thread; returns its raw payload.

        Raises :class:`JobCancelled` as soon as the cancel flag is observed
        (checked at every progress event, i.e. at cell granularity).
        """
        if job.cancel_flag_set():
            raise JobCancelled(job.id)

        def on_progress(event: Dict[str, object]) -> None:
            if job.cancel_flag_set():
                raise JobCancelled(job.id)
            loop.call_soon_threadsafe(self.manager.record_progress, job, event)

        with cell_progress(on_progress):
            payload = run_spec(
                job.spec,
                quiet=True,
                jobs=job.spec.jobs or self.spec_jobs,
            )
        if job.cancel_flag_set():
            raise JobCancelled(job.id)
        if self.manager.run_cache is not None:
            self.manager.run_cache.put(job.key, _jsonable(payload))
        return payload


def _jsonable(payload: object) -> object:
    """Defensive JSON round-trip before persisting a spec result."""
    return json.loads(json.dumps(payload))
