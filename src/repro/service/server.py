"""Service assembly and lifecycle.

:class:`ExperimentService` wires the pieces — :class:`JobManager`,
:class:`WorkerBridge`, the asyncio-streams HTTP layer — behind two modes:

* ``await service.start(); await service.serve_forever()`` inside an
  existing event loop (the ``repro serve`` CLI path);
* ``service.start_background()`` which spins a daemon thread with its own
  loop and returns once the socket is bound — the harness used by the
  tests and the in-process load-test mode.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
from typing import Dict, Optional

from repro.parallel.context import get_context
from repro.parallel.runcache import RunCache
from repro.service.http import ServiceProtocol, handle_connection
from repro.service.jobs import JobManager, ServiceStats
from repro.service.worker import WorkerBridge


@dataclasses.dataclass
class ServiceConfig:
    """Knobs for one service instance."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick a free port (the bound port is reported back).
    port: int = 0
    #: Default process fan-out per spec (specs may pin their own ``jobs``).
    spec_jobs: int = 1
    #: Concurrent job slots: unique specs run in parallel, each inside its
    #: own :class:`~repro.simcontext.SimContext` scope.
    workers: int = 1
    #: Run each job in a forked child process instead of a pool thread
    #: (full CPU scaling; cancellation terminates the child).
    worker_processes: bool = False
    #: On-disk run-cache budget in bytes; 0 disables eviction.
    cache_budget_bytes: int = 0
    #: Persist spec-level results to the run cache (and revive from it).
    cache: bool = True
    #: Cache root; ``None`` -> the execution context's cache dir.
    cache_dir: Optional[str] = None
    #: How many completed jobs to retain in memory for instant re-serves.
    max_done_jobs: int = 256


class ExperimentService:
    """One job service instance: manager + worker + HTTP front end."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.stats = ServiceStats()
        run_cache: Optional[RunCache] = None
        if self.config.cache:
            root = self.config.cache_dir or get_context().cache_dir
            run_cache = RunCache(root)
        self.manager = JobManager(
            stats=self.stats,
            run_cache=run_cache,
            max_done_jobs=self.config.max_done_jobs,
        )
        self.worker = WorkerBridge(
            self.manager,
            spec_jobs=self.config.spec_jobs,
            cache_budget_bytes=self.config.cache_budget_bytes,
            workers=self.config.workers,
            worker_processes=self.config.worker_processes,
        )
        self.protocol = ServiceProtocol(self.manager, self._extra_stats)
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None
        self._main_task: Optional["asyncio.Task[None]"] = None
        self.port: int = self.config.port

    def _extra_stats(self) -> Dict[str, object]:
        return {
            "config": {
                "spec_jobs": self.config.spec_jobs,
                "workers": self.worker.workers,
                "worker_processes": self.worker.worker_processes,
                "cache_budget_bytes": self.config.cache_budget_bytes,
                "max_done_jobs": self.config.max_done_jobs,
            }
        }

    # -- in-loop lifecycle ----------------------------------------------------

    async def start(self) -> int:
        """Bind the socket and start the worker; returns the bound port."""
        self.worker.start()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self.port

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await handle_connection(self.protocol, reader, writer)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("start() the service before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the socket and stop the worker loop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.worker.stop()

    # -- background-thread lifecycle -----------------------------------------

    def start_background(self, timeout_s: float = 10.0) -> int:
        """Run the service on a daemon thread; returns the bound port.

        Blocks until the socket is bound (or raises on startup failure).
        """
        if self._thread is not None:
            raise RuntimeError("service already running in background")
        ready = threading.Event()
        failure: Dict[str, BaseException] = {}

        def body() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # lint-ok: H301 startup failures
                # must surface in the caller's thread, whatever their type.
                failure["error"] = exc
                ready.set()
                loop.close()
                return
            self._main_task = loop.create_task(self._background_main())
            ready.set()
            try:
                loop.run_until_complete(self._main_task)
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=body, name="repro-service", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout_s):
            raise RuntimeError("service did not start within %.1fs" % timeout_s)
        if "error" in failure:
            self._thread = None
            raise failure["error"]
        return self.port

    async def _background_main(self) -> None:
        try:
            await self.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    def stop_background(self, timeout_s: float = 10.0) -> None:
        """Stop a background service and join its thread."""
        thread, loop = self._thread, self._thread_loop
        main_task = self._main_task
        if thread is None or loop is None or main_task is None:
            return
        # Cancel only the serve task — never in-flight connection handlers,
        # whose cancellation 3.11's asyncio.streams logs spuriously.
        loop.call_soon_threadsafe(main_task.cancel)
        thread.join(timeout_s)
        self._thread = None
        self._thread_loop = None
        self._main_task = None


async def serve(config: Optional[ServiceConfig] = None) -> None:
    """Run a service until interrupted (the ``repro serve`` entry point)."""
    service = ExperimentService(config)
    port = await service.start()
    print(
        "synergy-repro service listening on http://%s:%d"
        % (service.config.host, port),
        flush=True,
    )
    try:
        await service.serve_forever()
    finally:
        await service.stop()
