"""Job manager: spec normalisation, request coalescing, progress feeds.

One :class:`JobManager` owns every job the service knows about. Jobs are
keyed by :meth:`ExperimentSpec.cache_key` — the same content address the
run cache uses — which gives the three-tier dedup ladder every submission
walks down:

1. **coalesce**: an identical spec already queued/running gains a
   subscriber instead of a second simulation;
2. **memory**: an identical spec that completed recently returns the
   retained job (and its exact result bytes) instantly;
3. **disk**: the spec-level run-cache entry revives into a completed job
   without touching the simulator.

Only a submission that misses all three tiers enqueues work. All state
mutation happens on the event-loop thread (worker threads marshal through
``call_soon_threadsafe``), so none of this needs locks.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.harness.spec import ExperimentSpec
from repro.parallel.runcache import RunCache
from repro.telemetry import MetricsRegistry, MetricsSnapshot

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which a submission may coalesce onto an existing job.
_INFLIGHT_STATES = (QUEUED, RUNNING)
_TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Submission dispositions (reported to the client).
ACCEPTED = "accepted"
COALESCED = "coalesced"
CACHED = "cached"


class JobCancelled(Exception):
    """Raised inside a worker thread when its job's cancel flag is set."""


def canonical_result_bytes(payload: object) -> bytes:
    """The canonical JSON encoding of an experiment result.

    Round-trips through ``json`` first so a fresh in-process result and one
    revived from the on-disk cache (where non-string dict keys have already
    been stringified) serialise to *identical bytes* — the property the
    coalescing tests pin.
    """
    normalised = json.loads(json.dumps(payload))
    return json.dumps(
        normalised, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


class ServiceStats:
    """Service-plane counters on a private metrics registry.

    Private for the same reason :class:`~repro.parallel.ExecutionStats` is:
    these describe the *service* (submissions, coalesces, job outcomes),
    which must never leak into the deterministic per-cell snapshots.
    """

    def __init__(self) -> None:
        self._registry = MetricsRegistry(enabled=True)
        self.submissions = self._registry.counter("service.submissions")
        self.coalesced = self._registry.counter("service.coalesced")
        self.result_cache_hits = self._registry.counter(
            "service.result_cache_hits"
        )
        self.runs = self._registry.counter("service.runs")
        self.completed = self._registry.counter("service.completed")
        self.failed = self._registry.counter("service.failed")
        self.cancelled = self._registry.counter("service.cancelled")
        self.progress_events = self._registry.counter("service.progress_events")
        self.rejected = self._registry.counter("service.rejected")

    def snapshot(self) -> MetricsSnapshot:
        """The service profile as a mergeable metrics snapshot."""
        return self._registry.snapshot()

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready counter values (the ``/v1/stats`` payload)."""
        return {
            "submissions": int(self.submissions.value),
            "coalesced": int(self.coalesced.value),
            "result_cache_hits": int(self.result_cache_hits.value),
            "runs": int(self.runs.value),
            "completed": int(self.completed.value),
            "failed": int(self.failed.value),
            "cancelled": int(self.cancelled.value),
            "progress_events": int(self.progress_events.value),
            "rejected": int(self.rejected.value),
        }


class Job:
    """One submitted spec: lifecycle state, progress feed, result bytes."""

    def __init__(self, job_id: str, spec: ExperimentSpec, key: str) -> None:
        self.id = job_id
        self.spec = spec
        self.key = key
        self.state = QUEUED
        self.subscribers = 1
        #: Monotonic progress feed; each event carries a ``seq`` number.
        self.events: List[Dict[str, object]] = []
        self.result_bytes: Optional[bytes] = None
        self.error: Optional[str] = None
        self.cancel_requested = False
        #: Set from the HTTP handler, checked from the worker thread — a
        #: plain bool is not a safe cross-thread flag, an Event is.
        self._cancel_event = threading.Event()
        self._changed = asyncio.Event()
        self.created_monotonic = time.monotonic()
        self.started_monotonic: Optional[float] = None
        self.finished_monotonic: Optional[float] = None
        self.done_cells = 0
        self.total_cells = 0

    # -- cross-thread cancellation flag --------------------------------------

    def request_cancel(self) -> None:
        self.cancel_requested = True
        self._cancel_event.set()

    def cancel_flag_set(self) -> bool:
        """Worker-thread view of the cancel flag."""
        return self._cancel_event.is_set()

    # -- loop-thread state transitions ---------------------------------------

    def record_event(self, kind: str, payload: Mapping[str, object]) -> int:
        """Append one progress event; returns its sequence number."""
        seq = len(self.events)
        event: Dict[str, object] = {"seq": seq, "kind": kind}
        event.update(payload)
        self.events.append(event)
        if kind == "cell":
            done = event.get("done")
            total = event.get("total")
            if isinstance(done, int):
                self.done_cells = done
            if isinstance(total, int):
                self.total_cells = total
        elif kind == "suite":
            total = event.get("total")
            if isinstance(total, int):
                self.total_cells = total
        self._touch()
        return seq

    def mark_running(self) -> None:
        self.state = RUNNING
        self.started_monotonic = time.monotonic()
        self._touch()

    def finish(self, result: bytes) -> None:
        self.state = DONE
        self.result_bytes = result
        self.finished_monotonic = time.monotonic()
        self._touch()

    def fail(self, error: str) -> None:
        self.state = FAILED
        self.error = error
        self.finished_monotonic = time.monotonic()
        self._touch()

    def mark_cancelled(self) -> None:
        self.state = CANCELLED
        self.finished_monotonic = time.monotonic()
        self._touch()

    def _touch(self) -> None:
        self._changed.set()

    # -- loop-thread waiting --------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_STATES

    def eta_seconds(self) -> Optional[float]:
        """Naive remaining-time estimate from per-cell progress."""
        if self.state != RUNNING or self.started_monotonic is None:
            return None
        if self.done_cells <= 0 or self.total_cells <= 0:
            return None
        elapsed = time.monotonic() - self.started_monotonic
        remaining = self.total_cells - self.done_cells
        return elapsed / self.done_cells * max(0, remaining)

    async def wait_events(self, since: int, timeout: Optional[float]) -> None:
        """Block until an event with ``seq >= since`` exists or the job ends."""
        await self._wait(lambda: len(self.events) > since or self.terminal, timeout)

    async def wait_done(self, timeout: Optional[float]) -> bool:
        """Block until the job reaches a terminal state; False on timeout."""
        return await self._wait(lambda: self.terminal, timeout)

    async def _wait(
        self, predicate: Callable[[], bool], timeout: Optional[float]
    ) -> bool:
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + float(timeout)
        while not predicate():
            self._changed.clear()
            if predicate():
                break
            remaining = None if deadline is None else deadline - loop.time()
            if remaining is not None and remaining <= 0:
                return predicate()
            try:
                await asyncio.wait_for(self._changed.wait(), remaining)
            except asyncio.TimeoutError:
                return predicate()
        return True

    # -- views ----------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The ``GET /v1/jobs/<id>`` payload."""
        eta = self.eta_seconds()
        return {
            "id": self.id,
            "key": self.key,
            "spec": self.spec.to_payload(),
            "state": self.state,
            "subscribers": self.subscribers,
            "cancel_requested": self.cancel_requested,
            "progress": {
                "done": self.done_cells,
                "total": self.total_cells,
                "events": len(self.events),
                "eta_s": None if eta is None else round(eta, 3),
            },
            "error": self.error,
        }


class JobManager:
    """Owns jobs, coalesces submissions, retains completed results."""

    def __init__(
        self,
        stats: Optional[ServiceStats] = None,
        run_cache: Optional[RunCache] = None,
        max_done_jobs: int = 256,
    ) -> None:
        self.stats = stats if stats is not None else ServiceStats()
        self.run_cache = run_cache
        self.max_done_jobs = max(1, int(max_done_jobs))
        self.queue: "asyncio.Queue[Job]" = asyncio.Queue()
        #: key -> queued/running job (the coalescing tier).
        self._inflight: Dict[str, Job] = {}
        #: key -> completed job, LRU-bounded (the in-memory result tier).
        self._completed: "OrderedDict[str, Job]" = OrderedDict()
        #: id -> job, for status/event lookups; pruned with ``_completed``.
        self._jobs: Dict[str, Job] = {}
        self._counter = 0

    # -- submission -----------------------------------------------------------

    def submit(self, payload: Mapping[str, object]) -> Tuple[Job, str]:
        """Normalise one spec payload; returns ``(job, disposition)``.

        Raises :class:`~repro.harness.spec.SpecError` on an invalid payload
        (the HTTP layer maps it to a 400).
        """
        spec = ExperimentSpec.from_payload(payload)
        key = spec.cache_key()
        self.stats.submissions.inc()

        inflight = self._inflight.get(key)
        if inflight is not None and inflight.state in _INFLIGHT_STATES:
            inflight.subscribers += 1
            self.stats.coalesced.inc()
            return inflight, COALESCED

        completed = self._completed.get(key)
        if completed is not None and completed.state == DONE:
            self._completed.move_to_end(key)
            completed.subscribers += 1
            self.stats.result_cache_hits.inc()
            return completed, CACHED

        if self.run_cache is not None:
            cached_payload = self.run_cache.get(
                key, label="service/%s" % spec.experiment
            )
            if cached_payload is not None:
                job = self._new_job(spec, key)
                job.record_event("queued", {"experiment": spec.experiment})
                job.mark_running()
                job.finish(canonical_result_bytes(cached_payload))
                job.record_event("done", {"cached": True})
                self.stats.result_cache_hits.inc()
                self._retain(job)
                return job, CACHED

        job = self._new_job(spec, key)
        self._inflight[key] = job
        job.record_event("queued", {"experiment": spec.experiment})
        self.queue.put_nowait(job)
        return job, ACCEPTED

    def _new_job(self, spec: ExperimentSpec, key: str) -> Job:
        self._counter += 1
        job = Job("job-%06d-%s" % (self._counter, key[:8]), spec, key)
        self._jobs[job.id] = job
        return job

    # -- lookups --------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    # -- worker-side transitions (called on the loop thread) -------------------

    def record_progress(self, job: Job, event: Mapping[str, object]) -> None:
        """One runner progress event arriving from the worker thread."""
        kind = event.get("kind")
        payload = {name: value for name, value in event.items() if name != "kind"}
        job.record_event(str(kind), payload)
        self.stats.progress_events.inc()

    def start(self, job: Job) -> None:
        job.mark_running()
        job.record_event("started", {})
        self.stats.runs.inc()

    def finish(self, job: Job, result: bytes) -> None:
        job.finish(result)
        job.record_event("done", {"cached": False})
        self.stats.completed.inc()
        self._inflight.pop(job.key, None)
        self._retain(job)

    def fail(self, job: Job, error: str) -> None:
        job.fail(error)
        job.record_event("failed", {"error": error})
        self.stats.failed.inc()
        self._inflight.pop(job.key, None)

    def finalize_cancel(self, job: Job) -> None:
        job.mark_cancelled()
        job.record_event("cancelled", {})
        self.stats.cancelled.inc()
        self._inflight.pop(job.key, None)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; queued jobs cancel immediately.

        Cancellation is cooperative at cell granularity for running jobs:
        the worker observes the flag at its next progress event and aborts.
        It applies to the *job*, i.e. every coalesced subscriber.
        """
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if job.terminal:
            return job
        job.request_cancel()
        if job.state == QUEUED:
            self.finalize_cancel(job)
        return job

    def _retain(self, job: Job) -> None:
        self._completed[job.key] = job
        self._completed.move_to_end(job.key)
        while len(self._completed) > self.max_done_jobs:
            _key, evicted = self._completed.popitem(last=False)
            if evicted.id != job.id:
                self._jobs.pop(evicted.id, None)
