"""Synergy (HPCA 2018) reproduction: secure-memory / reliability co-design.

Public API highlights
---------------------

Functional plane (real bytes, real crypto):

* :class:`repro.secure.memory.SecureMemory` — counter-mode encrypted,
  MAC-protected, integrity-tree-verified memory over a simulated ECC-DIMM.
* :class:`repro.core.synergy.SynergyMemory` — the paper's contribution:
  MAC-in-ECC-chip co-location plus RAID-3 parity correction with the
  upward-detect / downward-correct tree traversal.
* :mod:`repro.dimm` — 9-chip x8 ECC-DIMM layout and chip-fault injection.

Timing plane (performance evaluation):

* :class:`repro.sim.system.SystemSimulator` — 4-core trace-driven system
  with DDR3 memory model and per-design security metadata traffic.
* :mod:`repro.secure.designs` — NON_SECURE, SGX, SGX_O, SYNERGY, IVEC,
  LOT-ECC design descriptors (Table II).

Reliability plane:

* :mod:`repro.reliability` — FAULTSIM-style Monte-Carlo over the Sridharan
  field-study FIT rates (Table I).

Harness:

* :mod:`repro.harness.experiments` — one entry point per paper figure/table.
* :mod:`repro.parallel` — process-pool fan-out of experiment grids and
  Monte-Carlo shards, plus the content-addressed on-disk run cache.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
