"""Scoped simulation contexts: the execution-state container for one run.

Before this module existed the simulator leaned on *process-global* mutable
state — the telemetry registry stack, the event tracer, the runner's
trace/warm/cell memos, the workload generator's raw-word consumption hints,
and the execution-stats collector. That was fine while exactly one
simulation ran per process, but it is what forced the experiment service
down to a single worker thread: two concurrent simulations would interleave
registries, cross-pollinate memos and race on counters.

A :class:`SimContext` owns all of that state as instance attributes. The
*current* context is resolved through a :class:`contextvars.ContextVar`,
which gives exactly the isolation semantics the service needs:

* threads (and asyncio tasks) that never enter a context share the single
  process-default context — byte-for-byte the pre-context behaviour, so the
  CLI, the tests and every existing entry point are unaffected;
* a thread that enters :func:`sim_context` (or :func:`activate`) sees its
  own registry stack, tracer, memos and stats for the duration, invisible
  to every other thread — two simulations can now run concurrently in one
  process without sharing any mutable simulator state.

What deliberately stays process-wide (documented in DESIGN.md under
"Execution contexts & the concurrency model"): the telemetry *collection
enable* flag, the execution-policy defaults (``REPRO_JOBS`` /
``REPRO_CACHE``), the sanitizer switch, and the on-disk run cache (whose
writes are atomic-rename, hence concurrency-safe). None of those are
mutated per simulation.

This module imports nothing from the rest of ``repro`` — consumer modules
(``telemetry.registry``/``trace``/``aggregate``, ``parallel.instrument``,
``sim.runner``, ``workloads.generator``) lazily materialise their slice of
the context, which keeps the import graph acyclic.
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Default byte budget for the per-context cell-result memo (the former
#: unbounded ``sim.runner._RUN_MEMO``). Serialized cells are a few KiB of
#: JSON, so this retains thousands of cells while bounding a long-lived
#: service process. Overridable via ``REPRO_RUN_MEMO_BYTES``.
DEFAULT_RUN_MEMO_BYTES = 32 * 1024 * 1024


def _run_memo_budget() -> int:
    value = os.environ.get("REPRO_RUN_MEMO_BYTES", "")
    if value:
        try:
            return max(0, int(value))
        except ValueError:
            return DEFAULT_RUN_MEMO_BYTES
    return DEFAULT_RUN_MEMO_BYTES


class BoundedBytesMemo:
    """A string-to-string LRU memo bounded by approximate byte size.

    Sizes are approximated as ``len(key) + len(value)`` (the values are
    ASCII-dominated JSON, so characters ~ bytes). ``put`` evicts from the
    least-recently-used end until the budget holds and returns how many
    entries were evicted, so callers can count evictions into their stats.
    A budget of 0 disables the memo entirely (every ``get`` misses).
    """

    __slots__ = ("max_bytes", "used_bytes", "evictions", "_entries")

    def __init__(self, max_bytes: int = DEFAULT_RUN_MEMO_BYTES) -> None:
        self.max_bytes = max(0, int(max_bytes))
        self.used_bytes = 0
        #: Lifetime eviction count (mirrors ``exec.memo_evictions``).
        self.evictions = 0
        self._entries: "OrderedDict[str, str]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[str]:
        """The memoised value (refreshing its recency), or None."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: str, value: str) -> int:
        """Store ``key -> value``; returns the number of entries evicted."""
        if self.max_bytes <= 0:
            return 0
        size = len(key) + len(value)
        if size > self.max_bytes:
            # A single over-budget entry can never be retained; storing it
            # would immediately evict everything including itself.
            return 0
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.used_bytes -= len(key) + len(previous)
        self._entries[key] = value
        self.used_bytes += size
        evicted = 0
        while self.used_bytes > self.max_bytes and self._entries:
            old_key, old_value = self._entries.popitem(last=False)
            self.used_bytes -= len(old_key) + len(old_value)
            evicted += 1
        self.evictions += evicted
        return evicted

    def clear(self) -> None:
        """Drop every entry (eviction counters are lifetime, kept)."""
        self._entries.clear()
        self.used_bytes = 0


class SimContext:
    """Everything one simulation scope owns that used to be process-global.

    Attributes start empty/None and are materialised lazily by the modules
    that own each concern (keeping this module import-free):

    * ``registry_stack`` — ``telemetry.registry``'s scope stack; the bottom
      entry is the scope-default registry.
    * ``tracer`` — ``telemetry.trace``'s :class:`EventTracer`.
    * ``stats`` — ``parallel.instrument``'s :class:`ExecutionStats`.
    * ``aggregate`` — ``telemetry.aggregate``'s :class:`TelemetryAggregate`.
    * ``trace_memo`` / ``warm_memo`` — ``sim.runner``'s generated-trace and
      post-warmup-cache memos (bounded by wholesale clearing, as before).
    * ``run_memo`` — the cell-result memo, now LRU-by-bytes bounded.
    * ``words_hint`` — ``workloads.generator``'s exact raw-word consumption
      hints, formerly an unbounded shared module dict.
    """

    __slots__ = (
        "name",
        "registry_stack",
        "tracer",
        "stats",
        "aggregate",
        "trace_memo",
        "warm_memo",
        "run_memo",
        "words_hint",
    )

    def __init__(self, name: str = "", run_memo_bytes: Optional[int] = None) -> None:
        self.name = name
        self.registry_stack: List[Any] = []
        self.tracer: Optional[Any] = None
        self.stats: Optional[Any] = None
        self.aggregate: Optional[Any] = None
        self.trace_memo: Dict[Tuple[object, ...], Any] = {}
        self.warm_memo: Dict[Tuple[object, ...], Any] = {}
        self.run_memo = BoundedBytesMemo(
            _run_memo_budget() if run_memo_bytes is None else run_memo_bytes
        )
        self.words_hint: Dict[Tuple[object, ...], int] = {}

    def clear_memos(self) -> None:
        """Drop every perf-only memo (results are never observable in them)."""
        self.trace_memo.clear()
        self.warm_memo.clear()
        self.run_memo.clear()
        self.words_hint.clear()

    def owns(self, container: object) -> bool:
        """Whether ``container`` is one of this context's owned values.

        Identity comparison against every slot (and each entry of the
        registry stack) — the check the sanitizer's owner-context rule
        uses to prove a memo/registry mutation is landing in the scope
        that created it, not leaking across workers.
        """
        for value in (
            self.registry_stack,
            self.tracer,
            self.stats,
            self.aggregate,
            self.trace_memo,
            self.warm_memo,
            self.run_memo,
            self.words_hint,
        ):
            if container is value:
                return True
        return any(container is entry for entry in self.registry_stack)

    def __repr__(self) -> str:
        return "SimContext(%r)" % (self.name or "anonymous",)


#: The process-default context: shared by every thread that never enters a
#: scope, exactly like the module-global state it replaced.
_DEFAULT = SimContext(name="process-default")

_CURRENT: "ContextVar[Optional[SimContext]]" = ContextVar(
    "repro_sim_context", default=None
)


def default_context() -> SimContext:
    """The shared process-default context."""
    return _DEFAULT


def current_context() -> SimContext:
    """The active context: the innermost activated one, else the default."""
    return _CURRENT.get() or _DEFAULT


@contextlib.contextmanager
def activate(context: SimContext) -> Iterator[SimContext]:
    """Make ``context`` the current context for the duration of the block.

    Scopes nest, and — because the backing store is a ``ContextVar`` — an
    activation is visible only to the activating thread (or asyncio task),
    never to its siblings. The service's worker pool reuses one long-lived
    context per worker slot through this entry point, so a worker keeps its
    memos warm across jobs while staying invisible to the other workers.
    """
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def sim_context(
    name: str = "", run_memo_bytes: Optional[int] = None
) -> Iterator[SimContext]:
    """Enter a *fresh* :class:`SimContext` for the duration of the block.

    The common one-shot form of :func:`activate`: everything the block
    simulates records into (and memoises through) the new context, which is
    garbage once the block exits.
    """
    with activate(SimContext(name=name, run_memo_bytes=run_memo_bytes)) as context:
        yield context
