"""FR-FCFS scheduling with write-drain watermarks (USIMM-style policy).

Reads have priority; writes are buffered and drained in bursts once the
write queue crosses its high watermark, continuing until the low watermark.
Within a class, First-Ready (row hit) requests go first, ties broken by age
— the classic FR-FCFS policy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dram.channel import ChannelState
from repro.telemetry import get_registry


class FrFcfsScheduler:
    """Pick the next request for one channel."""

    __slots__ = (
        "drain_high",
        "drain_low",
        "draining",
        "_t_drain_bursts",
        "_t_write_queue_depth",
    )

    def __init__(self, drain_high: int, drain_low: int):
        self.drain_high = drain_high
        self.drain_low = drain_low
        self.draining = False
        registry = get_registry()
        self._t_drain_bursts = registry.counter("dram.write_drain_bursts")
        self._t_write_queue_depth = registry.histogram(
            "dram.write_queue_depth", (0, 1, 2, 4, 8, 16, 32, 64, 128)
        )

    def update_drain_mode(self, write_queue_depth: int, read_queue_depth: int) -> None:
        """Hysteresis: enter drain at HIGH, leave at LOW (or when reads wait)."""
        was_draining = self.draining
        if self.draining:
            if write_queue_depth <= self.drain_low:
                self.draining = False
        else:
            if write_queue_depth >= self.drain_high:
                self.draining = True
        if read_queue_depth == 0 and write_queue_depth > 0:
            # Opportunistic writes when the channel would otherwise idle.
            self.draining = True
        if self.draining and not was_draining:
            self._t_drain_bursts.inc()
            self._t_write_queue_depth.record(write_queue_depth)

    def choose(
        self,
        channel: ChannelState,
        reads: List,
        writes: List,
    ) -> Optional[object]:
        """Select the next request (from ``reads``/``writes``) or None.

        Request objects must expose .rank/.bank/.row/.arrival attributes.
        """
        self.update_drain_mode(len(writes), len(reads))
        queue = writes if (self.draining and writes) else reads
        if not queue:
            queue = writes if writes else reads
        if not queue:
            return None
        best = None
        best_key = None
        for request in queue:
            hit = channel.is_row_hit(request.rank, request.bank, request.row)
            key = (0 if hit else 1, request.arrival)
            if best_key is None or key < best_key:
                best, best_key = request, key
        return best
