"""FR-FCFS scheduling with write-drain watermarks (USIMM-style policy).

Reads have priority; writes are buffered and drained in bursts once the
write queue crosses its high watermark, continuing until the low watermark.
Within a class, First-Ready (row hit) requests go first, ties broken by age
— the classic FR-FCFS policy.

Two choosers implement that policy:

* :meth:`FrFcfsScheduler.choose` — the reference scan over plain request
  lists, O(queue) per decision. Kept as the oracle for the randomized
  equivalence test and for small ad-hoc callers.
* :meth:`FrFcfsScheduler.choose_indexed` — decision over two
  :class:`BankIndexedPool` structures in O(log queue) amortised: a lazy
  age heap answers "oldest request", a lazy row-hit heap answers "oldest
  request whose row is open", and per-bank / per-(bank, row) FIFO
  sub-queues keep both heaps fed as requests are admitted, scheduled, and
  banks switch rows.

Index invariants (checked by the randomized cross-test; see also
DESIGN.md "Performance engineering"):

* every live entry is in ``age_heap`` exactly once;
* for every bank whose open row has queued requests, the *oldest* such
  request is in ``hit_heap`` (younger same-row entries need not be — they
  cannot win while their elder lives);
* heaps never contain an entry that predates its FIFO position: stale
  entries (scheduled, or hit entries whose bank moved rows) are flagged
  and skipped lazily at pop time.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional

from repro.dram.channel import ChannelState
from repro.telemetry import get_registry


class _IndexEntry:
    """One queued request inside a :class:`BankIndexedPool`.

    Wraps the request with the admission stamp used for age tie-breaks and
    the lazy-deletion flags the heaps rely on (``dead`` once scheduled,
    ``in_hit`` while the entry sits in the row-hit heap).
    """

    __slots__ = ("arrival", "stamp", "request", "fb", "row", "row_key", "dead", "in_hit")

    def __init__(self, request, stamp: int):
        self.arrival = request.arrival
        self.stamp = stamp
        self.request = request
        self.fb = request.flat_bank
        self.row = request.row
        self.row_key = (request.flat_bank << 40) | request.row
        self.dead = False
        self.in_hit = False


class BankIndexedPool:
    """Indexed scheduling pool for one channel direction (reads or writes).

    Holds queued requests in per-``flat_bank`` FIFO sub-queues plus
    per-(bank, row) FIFOs, with two lazy heaps over them so the FR-FCFS
    question "oldest row hit, else oldest request" is answered without
    scanning. Requests must expose ``arrival``/``flat_bank``/``row``
    attributes; age ties are broken by admission order (the reference
    scan's first-scanned-wins rule).

    The pool reads the channel's live ``open_rows`` table (shared by
    reference, not copied); the owner must call :meth:`notify_row_change`
    whenever a bank's open row moves so newly-hit FIFO heads enter the
    hit heap.
    """

    __slots__ = (
        "open_rows",
        "by_bank",
        "by_row",
        "age_heap",
        "hit_heap",
        "_by_request",
        "_stamp",
        "_len",
    )

    def __init__(self, open_rows: List[int]):
        self.open_rows = open_rows
        self.by_bank: Dict[int, Deque[_IndexEntry]] = {}
        self.by_row: Dict[int, Deque[_IndexEntry]] = {}
        self.age_heap: List = []
        self.hit_heap: List = []
        self._by_request: Dict[int, _IndexEntry] = {}
        self._stamp = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def add(self, request) -> None:
        """Admit a request (FIFO position = admission order)."""
        self._stamp = stamp = self._stamp + 1
        entry = _IndexEntry(request, stamp)
        self._by_request[id(request)] = entry
        self._len += 1
        heappush(self.age_heap, (entry.arrival, stamp, entry))
        bank_q = self.by_bank.get(entry.fb)
        if bank_q is None:
            self.by_bank[entry.fb] = deque((entry,))
        else:
            bank_q.append(entry)
        row_q = self.by_row.get(entry.row_key)
        if row_q is None:
            self.by_row[entry.row_key] = deque((entry,))
            # New (bank, row) FIFO head: enters the hit heap iff its row
            # is currently open. (A non-empty FIFO already has its head
            # covered — this entry is younger and cannot win yet.)
            if self.open_rows[entry.fb] == entry.row:
                entry.in_hit = True
                heappush(self.hit_heap, (entry.arrival, stamp, entry))
        else:
            row_q.append(entry)

    def remove(self, request) -> None:
        """Retire a request (typically the one just scheduled)."""
        entry = self._by_request.pop(id(request))
        entry.dead = True
        self._len -= 1
        row_q = self.by_row[entry.row_key]
        if row_q[0] is entry:
            row_q.popleft()
            while row_q and row_q[0].dead:
                row_q.popleft()
            if row_q:
                # Successor becomes the (bank, row) head; if the row is
                # open it is now the bank's oldest hit candidate.
                head = row_q[0]
                if not head.in_hit and self.open_rows[head.fb] == head.row:
                    head.in_hit = True
                    heappush(self.hit_heap, (head.arrival, head.stamp, head))
            else:
                del self.by_row[entry.row_key]
        # else: middle removal — purged lazily when elders retire.
        bank_q = self.by_bank[entry.fb]
        if bank_q[0] is entry:
            bank_q.popleft()
            while bank_q and bank_q[0].dead:
                bank_q.popleft()
            if not bank_q:
                del self.by_bank[entry.fb]

    def notify_row_change(self, flat_bank: int, new_row: int) -> None:
        """A bank's open row moved: surface the newly-hit FIFO head.

        Entries that *stopped* being hits are invalidated lazily at
        :meth:`choose` time against the shared ``open_rows`` table.
        """
        row_q = self.by_row.get((flat_bank << 40) | new_row)
        if row_q:
            head = row_q[0]
            if not head.in_hit:
                head.in_hit = True
                heappush(self.hit_heap, (head.arrival, head.stamp, head))

    def bank_head(self, flat_bank: int):
        """Oldest queued request for one bank, or None."""
        bank_q = self.by_bank.get(flat_bank)
        return bank_q[0].request if bank_q else None

    def choose(self):
        """Oldest row hit if any, else oldest request; None when empty.

        Two lazy heap peeks: stale tops (scheduled entries, or hit
        entries whose bank has since moved rows) are popped on the way.
        """
        open_rows = self.open_rows
        hit_heap = self.hit_heap
        while hit_heap:
            entry = hit_heap[0][2]
            if entry.dead:
                heappop(hit_heap)
                continue
            if open_rows[entry.fb] != entry.row:
                # No longer a hit; may re-enter via notify_row_change.
                entry.in_hit = False
                heappop(hit_heap)
                continue
            return entry.request
        age_heap = self.age_heap
        while age_heap:
            entry = age_heap[0][2]
            if entry.dead:
                heappop(age_heap)
                continue
            return entry.request
        return None


class FrFcfsScheduler:
    """Pick the next request for one channel."""

    __slots__ = (
        "drain_high",
        "drain_low",
        "draining",
        "_t_drain_bursts",
        "_t_write_queue_depth",
    )

    def __init__(self, drain_high: int, drain_low: int):
        self.drain_high = drain_high
        self.drain_low = drain_low
        self.draining = False
        registry = get_registry()
        self._t_drain_bursts = registry.counter("dram.write_drain_bursts")
        self._t_write_queue_depth = registry.histogram(
            "dram.write_queue_depth", (0, 1, 2, 4, 8, 16, 32, 64, 128)
        )

    def update_drain_mode(self, write_queue_depth: int, read_queue_depth: int) -> None:
        """Hysteresis: enter drain at HIGH, leave at LOW (or when reads wait)."""
        was_draining = self.draining
        if self.draining:
            if write_queue_depth <= self.drain_low:
                self.draining = False
        else:
            if write_queue_depth >= self.drain_high:
                self.draining = True
        if read_queue_depth == 0 and write_queue_depth > 0:
            # Opportunistic writes when the channel would otherwise idle.
            self.draining = True
        if self.draining and not was_draining:
            self._t_drain_bursts.inc()
            self._t_write_queue_depth.record(write_queue_depth)

    def choose(
        self,
        channel: ChannelState,
        reads: List,
        writes: List,
    ) -> Optional[object]:
        """Select the next request (from ``reads``/``writes``) or None.

        Reference O(queue) scan, kept as the oracle the indexed chooser is
        cross-checked against. Request objects must expose
        .flat_bank/.row/.arrival attributes. Row-hit classification reads
        the channel's flat ``open_rows`` table (one index + compare per
        candidate) instead of chasing per-bank state.
        """
        self.update_drain_mode(len(writes), len(reads))
        queue = writes if (self.draining and writes) else reads
        if not queue:
            queue = writes if writes else reads
        if not queue:
            return None
        open_rows = channel.open_rows
        best = None
        best_key = None
        for request in queue:
            hit = open_rows[request.flat_bank] == request.row
            key = (0 if hit else 1, request.arrival)
            if best_key is None or key < best_key:
                best, best_key = request, key
        return best

    def choose_indexed(
        self,
        read_pool: BankIndexedPool,
        write_pool: BankIndexedPool,
    ) -> Optional[object]:
        """Indexed FR-FCFS decision — same policy as :meth:`choose`.

        Drain-mode selection is identical (same hysteresis side effects);
        within the selected pool the (row-hit, oldest) pick resolves by
        heap peeks instead of a scan.
        """
        self.update_drain_mode(len(write_pool), len(read_pool))
        pool = write_pool if (self.draining and len(write_pool)) else read_pool
        if not len(pool):
            pool = write_pool if len(write_pool) else read_pool
        return pool.choose()
