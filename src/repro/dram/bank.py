"""Per-bank state: open row and earliest next-command time.

Open-page policy: a row stays open after an access until a conflicting
access precharges it. The bank exposes the three-way row-hit / row-miss /
closed classification the FR-FCFS scheduler prioritises on.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramTiming
from repro.telemetry import get_registry


class BankState:
    """Timing state of one DRAM bank (open-page policy)."""

    def __init__(self, timing: DramTiming):
        self.timing = timing
        self.open_row: Optional[int] = None
        self.ready_at = 0  #: earliest cycle the next command may start
        self.activated_at = 0  #: when the current row was opened (tRAS)
        self.row_hits = 0
        self.row_misses = 0
        # Shared across all banks created under the same registry scope.
        self._t_activations = get_registry().counter("dram.bank_activations")

    def classify(self, row: int) -> str:
        """'hit', 'miss' (conflict), or 'closed'."""
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "miss"

    def access_latency(self, row: int, is_write: bool) -> int:
        """Command-start to first-data-beat latency for accessing ``row``."""
        timing = self.timing
        column = timing.t_cwl if is_write else timing.t_cl
        kind = self.classify(row)
        if kind == "hit":
            return column
        if kind == "closed":
            return timing.t_rcd + column
        return timing.t_rp + timing.t_rcd + column

    def begin_access(self, row: int, start: int, is_write: bool) -> None:
        """Commit an access starting at ``start``; updates row + ready time."""
        timing = self.timing
        kind = self.classify(row)
        if kind != "hit":
            self.row_misses += 1
            self._t_activations.inc()
            if kind == "miss":
                # Must respect tRAS of the previously open row before PRE;
                # the caller accounted for PRE+ACT in the latency already.
                activate_time = start + timing.t_rp
            else:
                activate_time = start
            self.activated_at = activate_time
            self.open_row = row
        else:
            self.row_hits += 1
        recovery = timing.t_wr if is_write else 0
        self.ready_at = start + self.access_latency(row, is_write) - (
            timing.t_cwl if is_write else timing.t_cl
        ) + timing.t_ccd + recovery

    def earliest_start(self, now: int) -> int:
        """Earliest cycle a new command to this bank may start."""
        return max(now, self.ready_at)
