"""Per-bank state: open row and earliest next-command time.

Open-page policy: a row stays open after an access until a conflicting
access precharges it. The bank exposes the three-way row-hit / row-miss /
closed classification the FR-FCFS scheduler prioritises on.

Hot-path notes: the scheduler reads ``open_row``/``ready_at`` directly in
its candidate scan (millions of probes per cell), so the class is
``__slots__`` and the latency arithmetic is precomputed per timing
configuration instead of re-derived per access.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramTiming
from repro.telemetry import get_registry


class BankState:
    """Timing state of one DRAM bank (open-page policy)."""

    __slots__ = (
        "timing",
        "open_row",
        "ready_at",
        "activated_at",
        "row_hits",
        "row_misses",
        "_t_activations",
        "_lat_hit_read",
        "_lat_hit_write",
        "_lat_closed_read",
        "_lat_closed_write",
        "_lat_miss_read",
        "_lat_miss_write",
        "_ready_delta_read",
        "_ready_delta_write",
        "_t_rp",
        "_synced_activations",
    )

    def __init__(self, timing: DramTiming):
        self.timing = timing
        self.open_row: Optional[int] = None
        self.ready_at = 0  #: earliest cycle the next command may start
        self.activated_at = 0  #: when the current row was opened (tRAS)
        self.row_hits = 0
        self.row_misses = 0
        # Precomputed latency table: classification x direction.
        self._lat_hit_read = timing.t_cl
        self._lat_hit_write = timing.t_cwl
        self._lat_closed_read = timing.t_rcd + timing.t_cl
        self._lat_closed_write = timing.t_rcd + timing.t_cwl
        self._lat_miss_read = timing.t_rp + timing.t_rcd + timing.t_cl
        self._lat_miss_write = timing.t_rp + timing.t_rcd + timing.t_cwl
        # After an access the bank is ready again at start + tCCD (+ tWR
        # write recovery) — the row is open by then, so the column latency
        # cancels out of the original formulation.
        self._ready_delta_read = timing.t_ccd
        self._ready_delta_write = timing.t_ccd + timing.t_wr
        self._t_rp = timing.t_rp
        # Shared across all banks created under the same registry scope.
        self._t_activations = get_registry().counter("dram.bank_activations")
        self._synced_activations = 0

    def classify(self, row: int) -> str:
        """'hit', 'miss' (conflict), or 'closed'."""
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "miss"

    def access_latency(self, row: int, is_write: bool) -> int:
        """Command-start to first-data-beat latency for accessing ``row``."""
        open_row = self.open_row
        if open_row is None:
            return self._lat_closed_write if is_write else self._lat_closed_read
        if open_row == row:
            return self._lat_hit_write if is_write else self._lat_hit_read
        return self._lat_miss_write if is_write else self._lat_miss_read

    def begin_access(self, row: int, start: int, is_write: bool) -> Optional[int]:
        """Commit an access starting at ``start``; updates row + ready time.

        Returns the row that was open *before* this access (``None`` for a
        closed bank) so the channel can maintain its flat open-row table
        without re-reading bank state around the call.
        """
        open_row = self.open_row
        if open_row == row:
            self.row_hits += 1
        else:
            # One activation per row miss; the telemetry counter is synced
            # from ``row_misses`` at snapshot time (sync_telemetry).
            self.row_misses += 1
            if open_row is not None:
                # Must respect tRAS of the previously open row before PRE;
                # the caller accounted for PRE+ACT in the latency already.
                self.activated_at = start + self._t_rp
            else:
                self.activated_at = start
            self.open_row = row
        self.ready_at = start + (
            self._ready_delta_write if is_write else self._ready_delta_read
        )
        return open_row

    def earliest_start(self, now: int) -> int:
        """Earliest cycle a new command to this bank may start."""
        ready = self.ready_at
        return ready if ready > now else now

    def sync_telemetry(self) -> None:
        """Reconcile the activation counter with ``row_misses`` (idempotent).

        Banks under one registry scope share the ``dram.bank_activations``
        counter; each bank contributes its own delta, so syncing every
        bank once sums to the per-event total the hot path used to record.
        """
        delta = self.row_misses - self._synced_activations
        if delta:
            self._t_activations.inc(delta)
            self._synced_activations = self.row_misses
