"""DDR3 memory-system timing model (USIMM-like substrate).

* :mod:`repro.dram.timing` — DDR3 timing/config parameters (Table III).
* :mod:`repro.dram.address` — line address -> (channel, rank, bank, row, col).
* :mod:`repro.dram.bank` — per-bank open-row state and ready times.
* :mod:`repro.dram.channel` — a channel: banks + shared data bus.
* :mod:`repro.dram.scheduler` — FR-FCFS with write-drain watermarks.
* :mod:`repro.dram.controller` — the event-driven memory controller.
* :mod:`repro.dram.power` — Micron-style DRAM energy accounting.

Time unit throughout: memory-bus cycles (800 MHz in the baseline config;
the CPU runs at 3.2 GHz = 4 CPU cycles per memory cycle).
"""

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.controller import MemoryController, Request, RequestKind
from repro.dram.timing import DramTiming, MemoryConfig

__all__ = [
    "AddressMapper",
    "DecodedAddress",
    "MemoryController",
    "Request",
    "RequestKind",
    "DramTiming",
    "MemoryConfig",
]
