"""Physical address mapping: line address -> channel/rank/bank/row/column.

The mapping interleaves consecutive cachelines across channels first (to
maximise channel-level parallelism for streams), then across banks, keeping
``lines_per_row`` consecutive per-bank lines in one row for row-buffer
locality:

    line = [ row | rank | bank | column | channel ]

This is USIMM's default-style interleaving; the sensitivity study of
Fig. 12 only varies the channel count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import MemoryConfig


@dataclass(frozen=True)
class DecodedAddress:
    """Location of one cacheline in the DRAM organisation."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Bidirectional line-address <-> DRAM-coordinate mapping."""

    def __init__(self, config: MemoryConfig):
        self.config = config

    def decode(self, line_address: int) -> DecodedAddress:
        """Split a line address into DRAM coordinates (wraps modulo size)."""
        config = self.config
        remaining = line_address % config.total_lines
        channel = remaining % config.channels
        remaining //= config.channels
        column = remaining % config.lines_per_row
        remaining //= config.lines_per_row
        bank = remaining % config.banks_per_rank
        remaining //= config.banks_per_rank
        rank = remaining % config.ranks_per_channel
        remaining //= config.ranks_per_channel
        row = remaining % config.rows_per_bank
        decoded = DecodedAddress(channel, rank, bank, row, column)
        return decoded

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode`."""
        config = self.config
        value = decoded.row
        value = value * config.ranks_per_channel + decoded.rank
        value = value * config.banks_per_rank + decoded.bank
        value = value * config.lines_per_row + decoded.column
        value = value * config.channels + decoded.channel
        return value
