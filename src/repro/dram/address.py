"""Physical address mapping: line address -> channel/rank/bank/row/column.

The mapping interleaves consecutive cachelines across channels first (to
maximise channel-level parallelism for streams), then across banks, keeping
``lines_per_row`` consecutive per-bank lines in one row for row-buffer
locality:

    line = [ row | rank | bank | column | channel ]

This is USIMM's default-style interleaving; the sensitivity study of
Fig. 12 only varies the channel count.

``decode_fast`` is the controller's per-request entry point: it returns a
plain tuple and, when every geometry factor is a power of two (the default
and every configuration in the paper), uses precomputed shifts and masks
instead of div/mod chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dram.timing import MemoryConfig
from repro.util.units import is_power_of_two, log2_int


@dataclass(frozen=True)
class DecodedAddress:
    """Location of one cacheline in the DRAM organisation."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Bidirectional line-address <-> DRAM-coordinate mapping."""

    __slots__ = (
        "config",
        "_pow2",
        "_total_mask",
        "_channel_mask",
        "_channel_shift",
        "_column_mask",
        "_column_shift",
        "_bank_mask",
        "_bank_shift",
        "_rank_mask",
        "_rank_shift",
        "_row_mask",
    )

    def __init__(self, config: MemoryConfig):
        self.config = config
        factors = (
            config.channels,
            config.lines_per_row,
            config.banks_per_rank,
            config.ranks_per_channel,
            config.rows_per_bank,
        )
        self._pow2 = all(is_power_of_two(factor) for factor in factors)
        if self._pow2:
            self._total_mask = config.total_lines - 1
            self._channel_mask = config.channels - 1
            self._channel_shift = log2_int(config.channels)
            self._column_mask = config.lines_per_row - 1
            self._column_shift = log2_int(config.lines_per_row)
            self._bank_mask = config.banks_per_rank - 1
            self._bank_shift = log2_int(config.banks_per_rank)
            self._rank_mask = config.ranks_per_channel - 1
            self._rank_shift = log2_int(config.ranks_per_channel)
            self._row_mask = config.rows_per_bank - 1

    def decode_fast(self, line_address: int) -> Tuple[int, int, int, int, int]:
        """``(channel, rank, bank, row, column)`` of a line, as a tuple."""
        if self._pow2:
            remaining = line_address & self._total_mask
            channel = remaining & self._channel_mask
            remaining >>= self._channel_shift
            column = remaining & self._column_mask
            remaining >>= self._column_shift
            bank = remaining & self._bank_mask
            remaining >>= self._bank_shift
            rank = remaining & self._rank_mask
            remaining >>= self._rank_shift
            row = remaining & self._row_mask
            return channel, rank, bank, row, column
        config = self.config
        remaining = line_address % config.total_lines
        channel = remaining % config.channels
        remaining //= config.channels
        column = remaining % config.lines_per_row
        remaining //= config.lines_per_row
        bank = remaining % config.banks_per_rank
        remaining //= config.banks_per_rank
        rank = remaining % config.ranks_per_channel
        remaining //= config.ranks_per_channel
        row = remaining % config.rows_per_bank
        return channel, rank, bank, row, column

    def decode(self, line_address: int) -> DecodedAddress:
        """Split a line address into DRAM coordinates (wraps modulo size)."""
        return DecodedAddress(*self.decode_fast(line_address))

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode`."""
        config = self.config
        value = decoded.row
        value = value * config.ranks_per_channel + decoded.rank
        value = value * config.banks_per_rank + decoded.bank
        value = value * config.lines_per_row + decoded.column
        value = value * config.channels + decoded.channel
        return value
