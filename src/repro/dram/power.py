"""Micron-style DRAM energy accounting.

Energy is accumulated from event counts the controller already tracks:
row activations (ACT+PRE pair), column reads/writes (including I/O), and a
static background component proportional to wall-clock time. Constants are
representative DDR3 x8 values scaled to a 9-chip rank; absolute joules are
not the point — the *relative* energy of designs with different traffic
volumes is, which is what Fig. 10 and Fig. 16/17 plot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramEnergyParams:
    """Per-event and static energy constants for one channel's DIMMs."""

    activate_nj: float = 22.0  #: ACT + PRE energy per row activation
    read_nj: float = 14.0  #: column read incl. I/O, per 64B line
    write_nj: float = 16.0  #: column write incl. ODT, per 64B line
    background_mw_per_rank: float = 120.0  #: static + refresh per rank
    memory_clock_ghz: float = 0.8


@dataclass
class DramEnergyReport:
    """Broken-down DRAM energy for one simulation."""

    activate_nj: float
    read_nj: float
    write_nj: float
    background_nj: float

    @property
    def total_nj(self) -> float:
        """Total DRAM energy in nanojoules."""
        return self.activate_nj + self.read_nj + self.write_nj + self.background_nj


def dram_energy(
    activations: int,
    reads: int,
    writes: int,
    elapsed_cycles: int,
    ranks: int,
    params: DramEnergyParams = DramEnergyParams(),
) -> DramEnergyReport:
    """Compute DRAM energy from event counts and elapsed memory cycles."""
    elapsed_ns = elapsed_cycles / params.memory_clock_ghz
    background = params.background_mw_per_rank * ranks * elapsed_ns * 1e-3
    return DramEnergyReport(
        activate_nj=activations * params.activate_nj,
        read_nj=reads * params.read_nj,
        write_nj=writes * params.write_nj,
        background_nj=background,
    )
