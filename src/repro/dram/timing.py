"""DDR3 timing and organisation parameters.

Values are representative DDR3-1600 timings expressed in memory-bus cycles
(800 MHz clock, 1.25 ns per cycle) and the organisation of Table III:
2 channels x 2 ranks x 8 banks, 64K rows per bank, 128 cachelines per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DramTiming:
    """Core DDR3 timing constraints, in memory-bus cycles."""

    t_rcd: int = 11  #: ACT to column command
    t_rp: int = 11  #: PRE to ACT
    t_cl: int = 11  #: read column command to first data beat
    t_cwl: int = 8  #: write column command to first data beat
    t_burst: int = 4  #: data-bus occupancy per 64B line (8 beats, DDR)
    t_ccd: int = 4  #: column command to column command, same bank group
    t_ras: int = 28  #: ACT to PRE (row must stay open this long)
    t_wr: int = 12  #: write recovery before PRE
    t_wtr: int = 6  #: write-to-read turnaround penalty
    t_rtw: int = 2  #: read-to-write turnaround penalty
    t_refi: int = 6240  #: average refresh interval (7.8 us at 800 MHz)
    t_rfc: int = 208  #: refresh cycle time (4Gb-class device)
    t_faw: int = 32  #: four-activate window per rank
    t_rrd: int = 5  #: activate-to-activate, same rank

    @property
    def row_hit_read(self) -> int:
        """Column latency for a read that hits the open row."""
        return self.t_cl

    @property
    def row_miss_read(self) -> int:
        """Latency when a different row is open (PRE + ACT + CAS)."""
        return self.t_rp + self.t_rcd + self.t_cl

    @property
    def row_closed_read(self) -> int:
        """Latency when the bank is idle (ACT + CAS)."""
        return self.t_rcd + self.t_cl


@dataclass(frozen=True)
class MemoryConfig:
    """Organisation + queueing parameters (Table III defaults)."""

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    rows_per_bank: int = 64 * 1024
    lines_per_row: int = 128  #: 128 cachelines (columns) per row
    timing: DramTiming = field(default_factory=DramTiming)
    read_queue_capacity: int = 64
    write_queue_capacity: int = 64
    write_drain_high: int = 40  #: start exclusive write drain
    write_drain_low: int = 20  #: stop draining
    #: model periodic refresh (tREFI/tRFC rank blackouts)
    model_refresh: bool = True
    #: model the four-activate window (tFAW) and tRRD per rank
    model_faw: bool = True

    #: CPU clock runs this many times faster than the memory bus clock
    #: (3.2 GHz vs 800 MHz in Table III).
    cpu_clock_multiplier: int = 4

    @property
    def banks_per_channel(self) -> int:
        """Independent banks reachable on one channel."""
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def total_lines(self) -> int:
        """Cacheline capacity of the whole memory system."""
        return (
            self.channels
            * self.ranks_per_channel
            * self.banks_per_rank
            * self.rows_per_bank
            * self.lines_per_row
        )
