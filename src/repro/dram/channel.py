"""One memory channel: a set of banks sharing a command/data bus.

The channel tracks per-bank state plus data-bus occupancy and computes, for
a candidate request, the earliest (start, data_start, completion) triple that
respects bank timing, bus availability, and read/write turnaround.

Hot-path notes: ``plan``/``commit`` run once per scheduled request; the
timing constants they consult are bound to attributes in ``__init__`` and
row classification reads ``open_row`` directly instead of going through the
string-returning ``classify``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.sanitizer import get_sanitizer
from repro.dram.bank import BankState
from repro.dram.timing import DramTiming, MemoryConfig


class ChannelState:
    """Timing state of one channel (banks + shared data bus)."""

    __slots__ = (
        "config",
        "timing",
        "banks",
        "open_rows",
        "closed_banks",
        "bus_free_at",
        "last_was_write",
        "busy_cycles",
        "_recent_activates",
        "refresh_stall_cycles",
        "_banks_per_rank",
        "_model_refresh",
        "_model_faw",
        "_t_refi",
        "_t_rfc",
        "_t_rrd",
        "_t_faw",
        "_t_wtr",
        "_t_rtw",
        "_t_burst",
        "_sanitizer",
    )

    def __init__(self, config: MemoryConfig):
        self.config = config
        self.timing: DramTiming = config.timing
        self.banks: List[BankState] = [
            BankState(config.timing) for _ in range(config.banks_per_channel)
        ]
        #: Open-row table: ``open_rows[flat_bank]`` mirrors the bank's
        #: ``open_row`` with -1 for closed. Schedulers classify candidates
        #: against this flat list (one index + compare) instead of chasing
        #: per-bank attributes, and the controller's row-hit index keys off
        #: it. Maintained exclusively by :meth:`commit`.
        self.open_rows: List[int] = [-1] * config.banks_per_channel
        #: Banks whose row buffer has never been opened. Monotone to zero
        #: (open-page policy never precharges without activating), which
        #: makes ``closed_banks == 0`` a cheap "every candidate classifies
        #: hit-or-miss" predicate for scheduler fast paths.
        self.closed_banks = config.banks_per_channel
        self.bus_free_at = 0
        self.last_was_write = False
        self.busy_cycles = 0  #: data-bus occupancy accumulator (utilisation)
        #: per-rank recent activate times (tFAW/tRRD bookkeeping)
        self._recent_activates: List[List[int]] = [
            [] for _ in range(config.ranks_per_channel)
        ]
        self.refresh_stall_cycles = 0
        # Bound once: consulted on every plan/commit.
        timing = config.timing
        self._banks_per_rank = config.banks_per_rank
        self._model_refresh = config.model_refresh
        self._model_faw = config.model_faw
        self._t_refi = timing.t_refi
        self._t_rfc = timing.t_rfc
        self._t_rrd = timing.t_rrd
        self._t_faw = timing.t_faw
        self._t_wtr = timing.t_wtr
        self._t_rtw = timing.t_rtw
        self._t_burst = timing.t_burst
        # None unless REPRO_SANITIZE is on; commit() checks the plan against
        # pre-mutation state when set (see repro.analysis.sanitizer).
        self._sanitizer = get_sanitizer()

    def flat_bank(self, rank: int, bank: int) -> int:
        """Flatten (rank, bank) into a channel-local bank index."""
        return rank * self._banks_per_rank + bank

    # -- refresh ------------------------------------------------------------

    def _after_refresh(self, start: int) -> int:
        """Push ``start`` out of any periodic refresh blackout window.

        All banks of a rank are unavailable for tRFC every tREFI; we model
        the blackout as channel-wide (ranks refresh staggered in reality —
        a second-order detail).
        """
        if not self._model_refresh:
            return start
        phase = start % self._t_refi
        if phase < self._t_rfc:
            shifted = start + (self._t_rfc - phase)
            self.refresh_stall_cycles += shifted - start
            return shifted
        return start

    # -- activation window ----------------------------------------------------

    def _after_faw(self, rank: int, start: int, will_activate: bool) -> int:
        """Respect tFAW (max 4 ACTs per rolling window) and tRRD."""
        if not self._model_faw or not will_activate:
            return start
        history = self._recent_activates[rank]
        if history:
            after_rrd = history[-1] + self._t_rrd
            if after_rrd > start:
                start = after_rrd
            if len(history) >= 4:
                after_faw = history[-4] + self._t_faw
                if after_faw > start:
                    start = after_faw
        return start

    def plan(
        self, rank: int, bank: int, row: int, is_write: bool, now: int
    ) -> Tuple[int, int, int]:
        """Earliest (command_start, data_start, completion) for a request.

        Does not commit bank/bus state (only the refresh-stall accounting
        mutates, exactly as the ``_after_refresh`` helper it inlines). The
        body is self-contained — one call per scheduling decision instead
        of four — but computes the identical sequence: bank-ready clamp,
        refresh blackout, tFAW/tRRD, latency class, bus turnaround.
        """
        bank_state = self.banks[rank * self._banks_per_rank + bank]
        ready = bank_state.ready_at
        start = ready if ready > now else now
        open_row = bank_state.open_row
        if self._model_refresh:
            phase = start % self._t_refi
            if phase < self._t_rfc:
                shifted = start + (self._t_rfc - phase)
                self.refresh_stall_cycles += shifted - start
                start = shifted
        if open_row != row:
            if self._model_faw:
                history = self._recent_activates[rank]
                if history:
                    after_rrd = history[-1] + self._t_rrd
                    if after_rrd > start:
                        start = after_rrd
                    if len(history) >= 4:
                        after_faw = history[-4] + self._t_faw
                        if after_faw > start:
                            start = after_faw
            if open_row is None:
                latency = (
                    bank_state._lat_closed_write
                    if is_write
                    else bank_state._lat_closed_read
                )
            else:
                latency = (
                    bank_state._lat_miss_write
                    if is_write
                    else bank_state._lat_miss_read
                )
        else:
            latency = (
                bank_state._lat_hit_write if is_write else bank_state._lat_hit_read
            )
        data_start = start + latency
        if is_write:
            turnaround = 0 if self.last_was_write else self._t_rtw
        else:
            turnaround = self._t_wtr if self.last_was_write else 0
        earliest_bus = self.bus_free_at + turnaround
        if data_start < earliest_bus:
            shift = earliest_bus - data_start
            start += shift
            data_start += shift
        completion = data_start + self._t_burst
        return start, data_start, completion

    def commit(
        self, rank: int, bank: int, row: int, is_write: bool, plan: Tuple[int, int, int]
    ) -> None:
        """Apply a previously planned access to bank and bus state."""
        if self._sanitizer is not None:
            self._sanitizer.check_dram_commit(self, rank, bank, row, is_write, plan)
        start, data_start, completion = plan
        flat = rank * self._banks_per_rank + bank
        bank_state = self.banks[flat]
        # Inlined BankState.begin_access (kept as a method for unit tests):
        # identical row-hit/miss accounting, activation tracking, and
        # ready-time update, merged with the open-row table maintenance.
        open_row = bank_state.open_row
        if open_row == row:
            bank_state.row_hits += 1
        else:
            if self._model_faw:
                history = self._recent_activates[rank]
                history.append(start)
                if len(history) > 8:
                    del history[:-8]
            bank_state.row_misses += 1
            if open_row is not None:
                bank_state.activated_at = start + bank_state._t_rp
            else:
                bank_state.activated_at = start
                self.closed_banks -= 1
            bank_state.open_row = row
            self.open_rows[flat] = row
        bank_state.ready_at = start + (
            bank_state._ready_delta_write if is_write else bank_state._ready_delta_read
        )
        self.bus_free_at = completion
        self.last_was_write = is_write
        self.busy_cycles += completion - data_start

    def is_row_hit(self, rank: int, bank: int, row: int) -> bool:
        """Does ``row`` currently sit in the bank's row buffer?"""
        return self.banks[rank * self._banks_per_rank + bank].open_row == row

    @property
    def row_hit_rate(self) -> float:
        """Aggregate row-buffer hit rate across banks."""
        hits = sum(b.row_hits for b in self.banks)
        misses = sum(b.row_misses for b in self.banks)
        total = hits + misses
        return hits / total if total else 0.0
