"""One memory channel: a set of banks sharing a command/data bus.

The channel tracks per-bank state plus data-bus occupancy and computes, for
a candidate request, the earliest (start, data_start, completion) triple that
respects bank timing, bus availability, and read/write turnaround.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dram.bank import BankState
from repro.dram.timing import DramTiming, MemoryConfig


class ChannelState:
    """Timing state of one channel (banks + shared data bus)."""

    def __init__(self, config: MemoryConfig):
        self.config = config
        self.timing: DramTiming = config.timing
        self.banks: List[BankState] = [
            BankState(config.timing) for _ in range(config.banks_per_channel)
        ]
        self.bus_free_at = 0
        self.last_was_write = False
        self.busy_cycles = 0  #: data-bus occupancy accumulator (utilisation)
        #: per-rank recent activate times (tFAW/tRRD bookkeeping)
        self._recent_activates: List[List[int]] = [
            [] for _ in range(config.ranks_per_channel)
        ]
        self.refresh_stall_cycles = 0

    def flat_bank(self, rank: int, bank: int) -> int:
        """Flatten (rank, bank) into a channel-local bank index."""
        return rank * self.config.banks_per_rank + bank

    # -- refresh ------------------------------------------------------------

    def _after_refresh(self, start: int) -> int:
        """Push ``start`` out of any periodic refresh blackout window.

        All banks of a rank are unavailable for tRFC every tREFI; we model
        the blackout as channel-wide (ranks refresh staggered in reality —
        a second-order detail).
        """
        if not self.config.model_refresh:
            return start
        timing = self.timing
        phase = start % timing.t_refi
        if phase < timing.t_rfc:
            shifted = start + (timing.t_rfc - phase)
            self.refresh_stall_cycles += shifted - start
            return shifted
        return start

    # -- activation window ----------------------------------------------------

    def _after_faw(self, rank: int, start: int, will_activate: bool) -> int:
        """Respect tFAW (max 4 ACTs per rolling window) and tRRD."""
        if not self.config.model_faw or not will_activate:
            return start
        timing = self.timing
        history = self._recent_activates[rank]
        if history:
            start = max(start, history[-1] + timing.t_rrd)
        if len(history) >= 4:
            start = max(start, history[-4] + timing.t_faw)
        return start

    def plan(
        self, rank: int, bank: int, row: int, is_write: bool, now: int
    ) -> Tuple[int, int, int]:
        """Earliest (command_start, data_start, completion) for a request.

        Pure computation — does not commit any state.
        """
        timing = self.timing
        bank_state = self.banks[self.flat_bank(rank, bank)]
        start = bank_state.earliest_start(now)
        will_activate = bank_state.classify(row) != "hit"
        start = self._after_refresh(start)
        start = self._after_faw(rank, start, will_activate)
        latency = bank_state.access_latency(row, is_write)
        data_start = start + latency
        turnaround = 0
        if self.last_was_write and not is_write:
            turnaround = timing.t_wtr
        elif not self.last_was_write and is_write:
            turnaround = timing.t_rtw
        earliest_bus = self.bus_free_at + turnaround
        if data_start < earliest_bus:
            shift = earliest_bus - data_start
            start += shift
            data_start += shift
        completion = data_start + timing.t_burst
        return start, data_start, completion

    def commit(
        self, rank: int, bank: int, row: int, is_write: bool, plan: Tuple[int, int, int]
    ) -> None:
        """Apply a previously planned access to bank and bus state."""
        start, data_start, completion = plan
        bank_state = self.banks[self.flat_bank(rank, bank)]
        if self.config.model_faw and bank_state.classify(row) != "hit":
            history = self._recent_activates[rank]
            history.append(start)
            if len(history) > 8:
                del history[:-8]
        bank_state.begin_access(row, start, is_write)
        self.bus_free_at = completion
        self.last_was_write = is_write
        self.busy_cycles += completion - data_start

    def is_row_hit(self, rank: int, bank: int, row: int) -> bool:
        """Does ``row`` currently sit in the bank's row buffer?"""
        return self.banks[self.flat_bank(rank, bank)].classify(row) == "hit"

    @property
    def row_hit_rate(self) -> float:
        """Aggregate row-buffer hit rate across banks."""
        hits = sum(b.row_hits for b in self.banks)
        misses = sum(b.row_misses for b in self.banks)
        total = hits + misses
        return hits / total if total else 0.0
