"""Event-driven memory controller with FR-FCFS scheduling.

Co-simulation contract: producers (the system simulator) enqueue timestamped
requests; :meth:`MemoryController.process` then schedules everything that
has been enqueued, in causal order, assigning each request its completion
cycle. The system alternates "cores run until blocked" and "controller
schedules" epochs — cores can only block on their own outstanding reads, so
by the time ``process`` runs, every request that could contend is present.

Scheduling approximates FR-FCFS: at each decision the controller picks the
queued request with the earliest achievable data transfer (row hits
naturally win), with age as tie-break, and drains writes in bursts governed
by watermarks. Command-bus serialisation is modelled at one command per
cycle; rank-level constraints (tFAW/tRRD) are intentionally omitted
(second-order for the traffic-volume effects this reproduction targets —
see DESIGN.md).

Hot-path notes: ``enqueue`` and the per-decision ``_choose`` loop run once
per memory request and once per scheduling decision respectively — millions
of times per grid cell. Request is a ``__slots__`` class with ``is_write``
precomputed, per-(category, kind) stat counters are bound once in a lookup
table instead of string-formatted per request, the candidate scan reads
bank state directly against precomputed latency constants, and the pools
are deques so removing the chosen request near the head is O(WINDOW), not
O(queue).
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.dram.address import AddressMapper
from repro.dram.channel import ChannelState
from repro.dram.scheduler import FrFcfsScheduler
from repro.dram.timing import MemoryConfig
from repro.telemetry import get_registry
from repro.util.stats import StatGroup

#: Telemetry bucket edges: queue depths in requests, latencies in memory
#: cycles (fixed so per-cell histograms merge across workers).
QUEUE_DEPTH_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)
LATENCY_EDGES = (16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 4096)


class RequestKind(enum.Enum):
    """Memory request direction."""

    READ = "read"
    WRITE = "write"


_WRITE = RequestKind.WRITE


class Request:
    """One cacheline-sized memory request."""

    __slots__ = (
        "kind",
        "line_address",
        "arrival",
        "category",
        "core",
        "channel",
        "rank",
        "bank",
        "row",
        "flat_bank",
        "completion",
        "sequence",
        "is_write",
    )

    def __init__(
        self,
        kind: RequestKind,
        line_address: int,
        arrival: int,
        category: str = "data",  #: data | counter | mac | parity | tree
        core: int = 0,
        channel: int = 0,
        rank: int = 0,
        bank: int = 0,
        row: int = 0,
        flat_bank: int = 0,  #: channel-local bank index, precomputed
        completion: Optional[int] = None,
        sequence: int = 0,
    ):
        self.kind = kind
        self.line_address = line_address
        self.arrival = arrival
        self.category = category
        self.core = core
        self.channel = channel
        self.rank = rank
        self.bank = bank
        self.row = row
        self.flat_bank = flat_bank
        self.completion = completion
        self.sequence = sequence
        self.is_write = kind is _WRITE

    def __repr__(self) -> str:
        return "Request(%s line=%d arrival=%d category=%s completion=%s)" % (
            self.kind.value,
            self.line_address,
            self.arrival,
            self.category,
            self.completion,
        )


class _ChannelQueues:
    __slots__ = ("incoming", "reads", "writes", "last_command_start")

    def __init__(self) -> None:
        self.incoming: List = []  # heap of (arrival, seq, req)
        self.reads: Deque[Request] = deque()
        self.writes: Deque[Request] = deque()
        self.last_command_start = -1


class MemoryController:
    """Schedules requests over the configured channels."""

    __slots__ = (
        "config",
        "mapper",
        "_pow2_decode",
        "channels",
        "schedulers",
        "_queues",
        "_sequence",
        "_banks_per_rank",
        "stats",
        "_traffic_counters",
        "_h_read_latency",
        "_h_write_latency",
        "_c_data_bus_cycles",
        "_lat_hit_read",
        "_lat_hit_write",
        "_lat_closed_read",
        "_lat_closed_write",
        "_lat_miss_read",
        "_lat_miss_write",
        "_t_row_hits",
        "_t_row_misses",
        "_synced_rows",
        "_t_queue_depth",
        "_t_read_latency",
        "_t_write_latency",
        "_depth_acc",
        "_read_lat_acc",
        "_write_lat_acc",
        "_dec_total_mask",
        "_dec_channel_mask",
        "_dec_bank_shift",
        "_dec_bank_mask",
        "_dec_rank_shift",
        "_dec_rank_mask",
        "_dec_row_shift",
        "_dec_row_mask",
    )

    def __init__(self, config: MemoryConfig):
        self.config = config
        self.mapper = AddressMapper(config)
        # Inlined power-of-two decode for enqueue: same arithmetic as
        # AddressMapper.decode_fast, but with the channel/column shifts
        # folded together (enqueue never needs the column) and no call.
        mapper = self.mapper
        self._pow2_decode = getattr(mapper, "_pow2", False)
        if self._pow2_decode:
            self._dec_total_mask = mapper._total_mask
            self._dec_channel_mask = mapper._channel_mask
            self._dec_bank_shift = mapper._channel_shift + mapper._column_shift
            self._dec_bank_mask = mapper._bank_mask
            self._dec_rank_shift = self._dec_bank_shift + mapper._bank_shift
            self._dec_rank_mask = mapper._rank_mask
            self._dec_row_shift = self._dec_rank_shift + mapper._rank_shift
            self._dec_row_mask = mapper._row_mask
        self.channels = [ChannelState(config) for _ in range(config.channels)]
        self.schedulers = [
            FrFcfsScheduler(config.write_drain_high, config.write_drain_low)
            for _ in range(config.channels)
        ]
        self._queues = [_ChannelQueues() for _ in range(config.channels)]
        self._sequence = 0
        self._banks_per_rank = config.banks_per_rank
        self.stats = StatGroup("memory_controller")
        #: (category, kind) -> (requests_<kind>, traffic_<category>_<kind>)
        #: counters, built lazily so enqueue never string-formats.
        self._traffic_counters: Dict[Tuple[str, RequestKind], Tuple] = {}
        # Per-direction latency stats, bound once instead of per record.
        self._h_read_latency = self.stats.histogram("read_latency")
        self._h_write_latency = self.stats.histogram("write_latency")
        self._c_data_bus_cycles = self.stats.counter("data_bus_cycles")
        # Candidate-scan latency constants (identical across banks; see
        # BankState.access_latency).
        timing = config.timing
        self._lat_hit_read = timing.t_cl
        self._lat_hit_write = timing.t_cwl
        self._lat_closed_read = timing.t_rcd + timing.t_cl
        self._lat_closed_write = timing.t_rcd + timing.t_cwl
        self._lat_miss_read = timing.t_rp + timing.t_rcd + timing.t_cl
        self._lat_miss_write = timing.t_rp + timing.t_rcd + timing.t_cwl
        registry = get_registry()
        self._t_row_hits = registry.counter("dram.row_hits")
        self._t_row_misses = registry.counter("dram.row_misses")
        # Deferred-telemetry watermarks (see record_telemetry).
        self._synced_rows = [0, 0]
        self._t_queue_depth = registry.histogram(
            "dram.queue_depth", QUEUE_DEPTH_EDGES
        )
        self._t_read_latency = registry.histogram(
            "dram.read_latency_cycles", LATENCY_EDGES
        )
        self._t_write_latency = registry.histogram(
            "dram.write_latency_cycles", LATENCY_EDGES
        )
        # Deferred histogram accumulators: the hot path tallies integer
        # observations as value -> weight and record_telemetry flushes them
        # weight-batched. All three record int cycles/depths, so the
        # batched sums are bit-identical to per-event recording.
        self._depth_acc: Dict[int, int] = {}
        self._read_lat_acc: Dict[int, int] = {}
        self._write_lat_acc: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def _counters_for(self, category: str, kind: RequestKind) -> Tuple:
        """Bind the request/traffic counters for one (category, kind)."""
        counters = (
            self.stats.counter("requests_%s" % kind.value),
            self.stats.counter("traffic_%s_%s" % (category, kind.value)),
        )
        self._traffic_counters[(category, kind)] = counters
        return counters

    def enqueue(
        self,
        kind: RequestKind,
        line_address: int,
        arrival: int,
        category: str = "data",
        core: int = 0,
    ) -> Request:
        """Add a request; its ``completion`` is set by :meth:`process`."""
        if self._pow2_decode:
            masked = line_address & self._dec_total_mask
            channel = masked & self._dec_channel_mask
            bank = (masked >> self._dec_bank_shift) & self._dec_bank_mask
            rank = (masked >> self._dec_rank_shift) & self._dec_rank_mask
            row = (masked >> self._dec_row_shift) & self._dec_row_mask
        else:
            channel, rank, bank, row, _column = self.mapper.decode_fast(
                line_address
            )
        sequence = self._sequence + 1
        self._sequence = sequence
        request = Request(
            kind,
            line_address,
            arrival,
            category,
            core,
            channel,
            rank,
            bank,
            row,
            rank * self._banks_per_rank + bank,
            None,
            sequence,
        )
        queues = self._queues[channel]
        heapq.heappush(queues.incoming, (arrival, sequence, request))
        try:
            counters = self._traffic_counters[(category, kind)]
        except KeyError:
            counters = self._counters_for(category, kind)
        # Unit increments: bump the slots directly, skipping Counter.add's
        # sign check on the per-request path.
        counters[0].value += 1
        counters[1].value += 1
        return request

    # ------------------------------------------------------------------

    def process(self) -> None:
        """Schedule every enqueued request, assigning completions."""
        for channel_index in range(self.config.channels):
            self._process_channel(channel_index)

    def _process_channel(self, channel_index: int) -> None:
        channel = self.channels[channel_index]
        scheduler = self.schedulers[channel_index]
        queues = self._queues[channel_index]
        incoming = queues.incoming
        reads = queues.reads
        writes = queues.writes
        heappop = heapq.heappop
        choose = self._choose
        depth_acc = self._depth_acc

        while incoming or reads or writes:
            if not reads and not writes:
                # Idle: jump to the next arrival.
                arrival, _seq, request = heappop(incoming)
                (writes if request.is_write else reads).append(request)
                horizon = arrival
            else:
                horizon = queues.last_command_start + 1
            # Admit everything that has arrived by the current horizon.
            while incoming and incoming[0][0] <= horizon:
                _arrival, _seq, request = heappop(incoming)
                (writes if request.is_write else reads).append(request)

            chosen, choice = choose(channel, scheduler, queues, horizon)
            if chosen is None:
                continue
            plan, pool, pool_index = choice
            # Late arrivals before the chosen command start could alter the
            # decision; admit them and re-choose once.
            if incoming and incoming[0][0] <= plan[0]:
                until = plan[0]
                while incoming and incoming[0][0] <= until:
                    _arrival, _seq, request = heappop(incoming)
                    (writes if request.is_write else reads).append(request)
                chosen, choice = choose(channel, scheduler, queues, horizon)
                if chosen is None:
                    continue
                plan, pool, pool_index = choice

            depth = len(reads) + len(writes)
            try:
                depth_acc[depth] += 1
            except KeyError:
                depth_acc[depth] = 1
            channel.commit(chosen.rank, chosen.bank, chosen.row, chosen.is_write, plan)
            chosen.completion = plan[2]
            queues.last_command_start = plan[0]
            if pool_index == 0:
                pool.popleft()
            else:
                del pool[pool_index]
            self._record(chosen, plan)

    def _admit(self, queues: _ChannelQueues, request: Request) -> None:
        (queues.writes if request.is_write else queues.reads).append(request)

    def _admit_until(self, queues: _ChannelQueues, horizon: int) -> None:
        incoming = queues.incoming
        reads = queues.reads
        writes = queues.writes
        heappop = heapq.heappop
        while incoming and incoming[0][0] <= horizon:
            _arrival, _seq, request = heappop(incoming)
            (writes if request.is_write else reads).append(request)

    #: Scheduler candidate window: only the oldest WINDOW queued requests
    #: are considered per decision (real FR-FCFS pickers have bounded
    #: associative search too). Keeps each decision O(WINDOW).
    WINDOW = 16

    def _choose(self, channel, scheduler, queues, horizon):
        """Pick the request with the earliest achievable data start.

        The key is estimated cheaply from bank state alone (the data-bus
        shift is common to all candidates); the full plan is computed once,
        for the winner. The candidate scan is the single hottest loop in
        the simulator — it binds everything it touches to locals and reads
        bank state directly rather than through method calls.
        """
        writes = queues.writes
        reads = queues.reads
        # Drain hysteresis inlined from FrFcfsScheduler.update_drain_mode
        # (same transitions, same telemetry on entering a drain burst).
        write_depth = len(writes)
        draining = scheduler.draining
        was_draining = draining
        if draining:
            if write_depth <= scheduler.drain_low:
                draining = False
        else:
            if write_depth >= scheduler.drain_high:
                draining = True
        if write_depth and not reads:
            # Opportunistic writes when the channel would otherwise idle.
            draining = True
        if draining != was_draining:
            scheduler.draining = draining
            if draining:
                scheduler._t_drain_bursts.inc()
                scheduler._t_write_queue_depth.record(write_depth)
        pool = writes if (draining and write_depth) else reads
        if not pool:
            pool = writes or reads
        if not pool:
            return None, None
        banks = channel.banks
        if len(pool) == 1:
            # Single candidate: no scan, straight to the plan.
            best = pool[0]
            earliest = best.arrival
            if horizon > earliest:
                earliest = horizon
            plan = channel.plan(
                best.rank, best.bank, best.row, best.is_write, earliest
            )
            return best, (plan, pool, 0)
        window = self.WINDOW
        lat_hit_read = self._lat_hit_read
        lat_hit_write = self._lat_hit_write
        lat_closed_read = self._lat_closed_read
        lat_closed_write = self._lat_closed_write
        lat_miss_read = self._lat_miss_read
        lat_miss_write = self._lat_miss_write
        best = None
        best_index = -1
        best_estimate = best_arrival = best_sequence = 0
        index = 0
        for request in pool:
            if index >= window:
                break
            bank = banks[request.flat_bank]
            arrival = request.arrival
            earliest = arrival if arrival > horizon else horizon
            ready = bank.ready_at
            if ready > earliest:
                earliest = ready
            open_row = bank.open_row
            is_write = request.is_write
            if open_row is None:
                latency = lat_closed_write if is_write else lat_closed_read
            elif open_row == request.row:
                latency = lat_hit_write if is_write else lat_hit_read
            else:
                latency = lat_miss_write if is_write else lat_miss_read
            estimate = earliest + latency
            if (
                best is None
                or estimate < best_estimate
                or (
                    estimate == best_estimate
                    and (
                        arrival < best_arrival
                        or (
                            arrival == best_arrival
                            and request.sequence < best_sequence
                        )
                    )
                )
            ):
                best = request
                best_index = index
                best_estimate = estimate
                best_arrival = arrival
                best_sequence = request.sequence
            index += 1
        earliest = best.arrival
        if horizon > earliest:
            earliest = horizon
        plan = channel.plan(best.rank, best.bank, best.row, best.is_write, earliest)
        return best, (plan, pool, best_index)

    def _record(self, request: Request, plan) -> None:
        _start, data_start, completion = plan
        latency = completion - request.arrival
        if request.is_write:
            self._h_write_latency.record(latency)
            acc = self._write_lat_acc
        else:
            self._h_read_latency.record(latency)
            acc = self._read_lat_acc
        try:
            acc[latency] += 1
        except KeyError:
            acc[latency] = 1
        # Always-positive increment: bump the slot directly, skipping the
        # Counter.add sign check on the per-request path.
        self._c_data_bus_cycles.value += completion - data_start

    # ------------------------------------------------------------------

    def traffic_by_category(self) -> Dict[str, int]:
        """Access counts keyed by '<category>_<read|write>'."""
        result: Dict[str, int] = {}
        for name, stat in self.stats:
            if name.startswith("traffic_"):
                result[name[len("traffic_") :]] = stat.value  # type: ignore[attr-defined]
        return result

    @property
    def last_completion(self) -> int:
        """Latest data-bus release across channels (end of simulation)."""
        return max(channel.bus_free_at for channel in self.channels)

    def record_telemetry(self) -> None:
        """End-of-run gauges: bus utilisation and per-bank access balance.

        Gauges aggregate as count/sum/min/max, so the per-bank observations
        expose utilisation imbalance (hot banks) after merging, not just
        the mean.

        Row-hit/miss and activation telemetry is recorded deferred: the
        hot path bumps the per-bank plain ints and this reconciles the
        registry counters (idempotently) before the snapshot. A scheduled
        request is a row hit at decision time iff its bank access commits
        as one, so the bank sums equal the per-decision counts.
        """
        row_hits = 0
        row_misses = 0
        for channel_state in self.channels:
            for bank in channel_state.banks:
                row_hits += bank.row_hits
                row_misses += bank.row_misses
                bank.sync_telemetry()
        synced = self._synced_rows
        self._t_row_hits.inc(row_hits - synced[0])
        self._t_row_misses.inc(row_misses - synced[1])
        synced[0] = row_hits
        synced[1] = row_misses
        # Flush the deferred histogram accumulators (weight-batched; all
        # integer observations, so batching is bit-exact).
        for acc, histogram in (
            (self._depth_acc, self._t_queue_depth),
            (self._read_lat_acc, self._t_read_latency),
            (self._write_lat_acc, self._t_write_latency),
        ):
            for value, weight in acc.items():
                histogram.record(value, weight)
            acc.clear()
        registry = get_registry()
        last = self.last_completion
        if last > 0:
            bus_cycles = 0
            if "data_bus_cycles" in self.stats:
                bus_cycles = self.stats["data_bus_cycles"].value  # type: ignore[attr-defined]
            registry.gauge("dram.bus_utilisation").set(
                bus_cycles / (last * self.config.channels)
            )
        bank_gauge = registry.gauge("dram.bank_accesses")
        for channel in self.channels:
            for bank in channel.banks:
                bank_gauge.set(bank.row_hits + bank.row_misses)

    def activation_counts(self) -> Dict[str, int]:
        """Row activations and accesses for the energy model."""
        activations = sum(
            bank.row_misses for channel in self.channels for bank in channel.banks
        )
        hits = sum(
            bank.row_hits for channel in self.channels for bank in channel.banks
        )
        return {"activations": activations, "row_hits": hits}
