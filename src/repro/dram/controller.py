"""Event-driven memory controller with FR-FCFS scheduling.

Co-simulation contract: producers (the system simulator) enqueue timestamped
requests; :meth:`MemoryController.process` then schedules everything that
has been enqueued, in causal order, assigning each request its completion
cycle. The system alternates "cores run until blocked" and "controller
schedules" epochs — cores can only block on their own outstanding reads, so
by the time ``process`` runs, every request that could contend is present.

Scheduling approximates FR-FCFS: at each decision the controller picks the
queued request with the earliest achievable data transfer (row hits
naturally win), with age as tie-break, and drains writes in bursts governed
by watermarks. Command-bus serialisation is modelled at one command per
cycle; rank-level constraints (tFAW/tRRD) are intentionally omitted
(second-order for the traffic-volume effects this reproduction targets —
see DESIGN.md).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.address import AddressMapper
from repro.dram.channel import ChannelState
from repro.dram.scheduler import FrFcfsScheduler
from repro.dram.timing import MemoryConfig
from repro.telemetry import get_registry
from repro.util.stats import StatGroup

#: Telemetry bucket edges: queue depths in requests, latencies in memory
#: cycles (fixed so per-cell histograms merge across workers).
QUEUE_DEPTH_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)
LATENCY_EDGES = (16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 4096)


class RequestKind(enum.Enum):
    """Memory request direction."""

    READ = "read"
    WRITE = "write"


@dataclass
class Request:
    """One cacheline-sized memory request."""

    kind: RequestKind
    line_address: int
    arrival: int
    category: str = "data"  #: data | counter | mac | parity | tree
    core: int = 0
    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: int = 0
    flat_bank: int = 0  #: channel-local bank index, precomputed
    completion: Optional[int] = None
    sequence: int = 0

    @property
    def is_write(self) -> bool:
        """Whether this is a write."""
        return self.kind is RequestKind.WRITE


@dataclass
class _ChannelQueues:
    incoming: List = field(default_factory=list)  # heap of (arrival, seq, req)
    reads: List[Request] = field(default_factory=list)
    writes: List[Request] = field(default_factory=list)
    last_command_start: int = -1


class MemoryController:
    """Schedules requests over the configured channels."""

    def __init__(self, config: MemoryConfig):
        self.config = config
        self.mapper = AddressMapper(config)
        self.channels = [ChannelState(config) for _ in range(config.channels)]
        self.schedulers = [
            FrFcfsScheduler(config.write_drain_high, config.write_drain_low)
            for _ in range(config.channels)
        ]
        self._queues = [_ChannelQueues() for _ in range(config.channels)]
        self._sequence = 0
        self.stats = StatGroup("memory_controller")
        registry = get_registry()
        self._t_row_hits = registry.counter("dram.row_hits")
        self._t_row_misses = registry.counter("dram.row_misses")
        self._t_queue_depth = registry.histogram(
            "dram.queue_depth", QUEUE_DEPTH_EDGES
        )
        self._t_read_latency = registry.histogram(
            "dram.read_latency_cycles", LATENCY_EDGES
        )
        self._t_write_latency = registry.histogram(
            "dram.write_latency_cycles", LATENCY_EDGES
        )

    # ------------------------------------------------------------------

    def enqueue(
        self,
        kind: RequestKind,
        line_address: int,
        arrival: int,
        category: str = "data",
        core: int = 0,
    ) -> Request:
        """Add a request; its ``completion`` is set by :meth:`process`."""
        decoded = self.mapper.decode(line_address)
        self._sequence += 1
        request = Request(
            kind=kind,
            line_address=line_address,
            arrival=arrival,
            category=category,
            core=core,
            channel=decoded.channel,
            rank=decoded.rank,
            bank=decoded.bank,
            row=decoded.row,
            flat_bank=decoded.rank * self.config.banks_per_rank + decoded.bank,
            sequence=self._sequence,
        )
        queues = self._queues[decoded.channel]
        heapq.heappush(queues.incoming, (arrival, request.sequence, request))
        self.stats.counter("requests_%s" % kind.value).add()
        self.stats.counter("traffic_%s_%s" % (category, kind.value)).add()
        return request

    # ------------------------------------------------------------------

    def process(self) -> None:
        """Schedule every enqueued request, assigning completions."""
        for channel_index in range(self.config.channels):
            self._process_channel(channel_index)

    def _process_channel(self, channel_index: int) -> None:
        channel = self.channels[channel_index]
        scheduler = self.schedulers[channel_index]
        queues = self._queues[channel_index]

        while queues.incoming or queues.reads or queues.writes:
            if not queues.reads and not queues.writes:
                # Idle: jump to the next arrival.
                arrival, _seq, request = heapq.heappop(queues.incoming)
                self._admit(queues, request)
                horizon = arrival
            else:
                horizon = queues.last_command_start + 1
            # Admit everything that has arrived by the current horizon.
            self._admit_until(queues, horizon)

            chosen, choice = self._choose(channel, scheduler, queues, horizon)
            if chosen is None:
                continue
            plan, pool, pool_index = choice
            # Late arrivals before the chosen command start could alter the
            # decision; admit them and re-choose once.
            if queues.incoming and queues.incoming[0][0] <= plan[0]:
                self._admit_until(queues, plan[0])
                chosen, choice = self._choose(channel, scheduler, queues, horizon)
                if chosen is None:
                    continue
                plan, pool, pool_index = choice

            self._t_queue_depth.record(len(queues.reads) + len(queues.writes))
            if channel.banks[chosen.flat_bank].classify(chosen.row) == "hit":
                self._t_row_hits.inc()
            else:
                self._t_row_misses.inc()
            channel.commit(chosen.rank, chosen.bank, chosen.row, chosen.is_write, plan)
            chosen.completion = plan[2]
            queues.last_command_start = plan[0]
            pool.pop(pool_index)
            self._record(chosen, plan)

    def _admit(self, queues: _ChannelQueues, request: Request) -> None:
        (queues.writes if request.is_write else queues.reads).append(request)

    def _admit_until(self, queues: _ChannelQueues, horizon: int) -> None:
        while queues.incoming and queues.incoming[0][0] <= horizon:
            _arrival, _seq, request = heapq.heappop(queues.incoming)
            self._admit(queues, request)

    #: Scheduler candidate window: only the oldest WINDOW queued requests
    #: are considered per decision (real FR-FCFS pickers have bounded
    #: associative search too). Keeps each decision O(WINDOW).
    WINDOW = 16

    def _choose(self, channel, scheduler, queues, horizon):
        """Pick the request with the earliest achievable data start.

        The key is estimated cheaply from bank state alone (the data-bus
        shift is common to all candidates); the full plan is computed once,
        for the winner.
        """
        scheduler.update_drain_mode(len(queues.writes), len(queues.reads))
        use_writes = scheduler.draining and queues.writes
        pool = queues.writes if use_writes else queues.reads
        if not pool:
            pool = queues.writes or queues.reads
        if not pool:
            return None, None
        banks = channel.banks
        best = None
        best_index = -1
        best_key = None
        for index, request in enumerate(pool[: self.WINDOW]):
            bank = banks[request.flat_bank]
            earliest = request.arrival
            if horizon > earliest:
                earliest = horizon
            if bank.ready_at > earliest:
                earliest = bank.ready_at
            estimate = earliest + bank.access_latency(request.row, request.is_write)
            key = (estimate, request.arrival, request.sequence)
            if best_key is None or key < best_key:
                best, best_index, best_key = request, index, key
        earliest = max(horizon, best.arrival)
        plan = channel.plan(best.rank, best.bank, best.row, best.is_write, earliest)
        return best, (plan, pool, best_index)

    def _record(self, request: Request, plan) -> None:
        start, data_start, completion = plan
        del start
        latency = completion - request.arrival
        if request.is_write:
            self.stats.histogram("write_latency").record(latency)
            self._t_write_latency.record(latency)
        else:
            self.stats.histogram("read_latency").record(latency)
            self._t_read_latency.record(latency)
        self.stats.counter("data_bus_cycles").add(completion - data_start)

    # ------------------------------------------------------------------

    def traffic_by_category(self) -> Dict[str, int]:
        """Access counts keyed by '<category>_<read|write>'."""
        result: Dict[str, int] = {}
        for name, stat in self.stats:
            if name.startswith("traffic_"):
                result[name[len("traffic_") :]] = stat.value  # type: ignore[attr-defined]
        return result

    @property
    def last_completion(self) -> int:
        """Latest data-bus release across channels (end of simulation)."""
        return max(channel.bus_free_at for channel in self.channels)

    def record_telemetry(self) -> None:
        """End-of-run gauges: bus utilisation and per-bank access balance.

        Gauges aggregate as count/sum/min/max, so the per-bank observations
        expose utilisation imbalance (hot banks) after merging, not just
        the mean.
        """
        registry = get_registry()
        last = self.last_completion
        if last > 0:
            bus_cycles = 0
            if "data_bus_cycles" in self.stats:
                bus_cycles = self.stats["data_bus_cycles"].value  # type: ignore[attr-defined]
            registry.gauge("dram.bus_utilisation").set(
                bus_cycles / (last * self.config.channels)
            )
        bank_gauge = registry.gauge("dram.bank_accesses")
        for channel in self.channels:
            for bank in channel.banks:
                bank_gauge.set(bank.row_hits + bank.row_misses)

    def activation_counts(self) -> Dict[str, int]:
        """Row activations and accesses for the energy model."""
        activations = sum(
            bank.row_misses for channel in self.channels for bank in channel.banks
        )
        hits = sum(
            bank.row_hits for channel in self.channels for bank in channel.banks
        )
        return {"activations": activations, "row_hits": hits}
