"""Event-driven memory controller with FR-FCFS scheduling.

Co-simulation contract: producers (the system simulator) enqueue timestamped
requests; :meth:`MemoryController.process` then schedules everything that
has been enqueued, in causal order, assigning each request its completion
cycle. The system alternates "cores run until blocked" and "controller
schedules" epochs — cores can only block on their own outstanding reads, so
by the time ``process`` runs, every request that could contend is present.

Scheduling approximates FR-FCFS: at each decision the controller picks the
queued request with the earliest achievable data transfer (row hits
naturally win), with age as tie-break, and drains writes in bursts governed
by watermarks. Command-bus serialisation is modelled at one command per
cycle; rank-level constraints (tFAW/tRRD) are intentionally omitted
(second-order for the traffic-volume effects this reproduction targets —
see DESIGN.md).

Hot-path notes: ``enqueue`` and the per-decision scheduling loop run once
per memory request and once per scheduling decision respectively — millions
of times per grid cell. Request is a ``__slots__`` class with ``is_write``
and the row-index key precomputed, per-(category, kind) stat counters are
bound once in a lookup table instead of string-formatted per request, and
``incoming`` is a plain list sorted once per ``process`` epoch (one Timsort
over an almost-sorted list beats a heap pop per request).

The decision itself is indexed, not scanned: each pool keeps an incremental
row-hit census (``_PoolRowIndex``) so the common cases resolve in O(1) —

* pool has no row hits and every bank is open: all candidates are
  same-latency row misses, so the oldest request (the pool head) wins
  outright, no scan;
* otherwise the bounded window scan runs, but exits as soon as the current
  best is a ready row hit (unbeatable) and prunes on arrival order (pools
  are age-sorted, so once ``arrival >= best_estimate - lat_hit`` no later
  candidate can win).

The same census powers the late-arrival re-choose: admissions that cannot
have changed the scanned window (same pool object, window already full or
length unchanged) reuse the first decision instead of rescanning.
Invariants of the index are sanitizer-checked (REPRO_SANITIZE=1) against a
fresh queue scan; see ``repro.analysis.sanitizer.check_scheduler_index``.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.sanitizer import get_sanitizer

from repro.dram.address import AddressMapper
from repro.dram.channel import ChannelState
from repro.dram.scheduler import FrFcfsScheduler
from repro.dram.timing import MemoryConfig
from repro.telemetry import get_registry
from repro.util.stats import StatGroup

#: Telemetry bucket edges: queue depths in requests, latencies in memory
#: cycles (fixed so per-cell histograms merge across workers).
QUEUE_DEPTH_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)
LATENCY_EDGES = (16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 4096)


class RequestKind(enum.Enum):
    """Memory request direction."""

    READ = "read"
    WRITE = "write"


_WRITE = RequestKind.WRITE

#: Batch size at which enqueue_batch switches to the columnar numpy
#: decode; below this the fixed numpy setup cost beats the savings.
_BATCH_DECODE_MIN = 48


class Request:
    """One cacheline-sized memory request."""

    __slots__ = (
        "kind",
        "line_address",
        "arrival",
        "category",
        "core",
        "channel",
        "rank",
        "bank",
        "row",
        "flat_bank",
        "row_key",
        "completion",
        "sequence",
        "is_write",
    )

    def __init__(
        self,
        kind: RequestKind,
        line_address: int,
        arrival: int,
        category: str = "data",  #: data | counter | mac | parity | tree
        core: int = 0,
        channel: int = 0,
        rank: int = 0,
        bank: int = 0,
        row: int = 0,
        flat_bank: int = 0,  #: channel-local bank index, precomputed
        completion: Optional[int] = None,
        sequence: int = 0,
    ):
        self.kind = kind
        self.line_address = line_address
        self.arrival = arrival
        self.category = category
        self.core = core
        self.channel = channel
        self.rank = rank
        self.bank = bank
        self.row = row
        self.flat_bank = flat_bank
        # Row-index key: (flat_bank, row) packed into one int so the
        # per-pool row census needs a single dict probe per event. Rows are
        # far below 2**40 for any modelled geometry.
        self.row_key = (flat_bank << 40) | row
        self.completion = completion
        self.sequence = sequence
        self.is_write = kind is _WRITE

    def __repr__(self) -> str:
        return "Request(%s line=%d arrival=%d category=%s completion=%s)" % (
            self.kind.value,
            self.line_address,
            self.arrival,
            self.category,
            self.completion,
        )


class _PoolRowIndex:
    """Incremental open-row census for one scheduling pool.

    ``row_counts[row_key]`` is the number of queued requests targeting that
    (flat_bank, row); ``hits`` is the number of queued requests whose row is
    currently open in their bank. Both are maintained on admit/remove and
    re-based when a commit moves a bank's open row, so the scheduler can ask
    "does this pool contain any row hit?" in O(1) instead of scanning.
    """

    __slots__ = ("row_counts", "hits")

    def __init__(self) -> None:
        self.row_counts: Dict[int, int] = {}
        self.hits = 0


class _ChannelQueues:
    __slots__ = (
        "incoming",
        "reads",
        "writes",
        "read_index",
        "write_index",
        "last_command_start",
    )

    def __init__(self) -> None:
        self.incoming: List = []  # (arrival, seq, req); sorted per epoch
        self.reads: Deque[Request] = deque()
        self.writes: Deque[Request] = deque()
        self.read_index = _PoolRowIndex()
        self.write_index = _PoolRowIndex()
        self.last_command_start = -1


class MemoryController:
    """Schedules requests over the configured channels."""

    __slots__ = (
        "config",
        "mapper",
        "_pow2_decode",
        "channels",
        "schedulers",
        "_queues",
        "_sequence",
        "_banks_per_rank",
        "stats",
        "_read_counters",
        "_write_counters",
        "_h_read_latency",
        "_h_write_latency",
        "_c_data_bus_cycles",
        "_lat_hit_read",
        "_lat_hit_write",
        "_lat_closed_read",
        "_lat_closed_write",
        "_lat_miss_read",
        "_lat_miss_write",
        "_t_row_hits",
        "_t_row_misses",
        "_synced_rows",
        "_t_queue_depth",
        "_t_read_latency",
        "_t_write_latency",
        "_depth_acc",
        "_read_lat_acc",
        "_write_lat_acc",
        "_dec_total_mask",
        "_dec_channel_mask",
        "_dec_bank_shift",
        "_dec_bank_mask",
        "_dec_rank_shift",
        "_dec_rank_mask",
        "_dec_row_shift",
        "_dec_row_mask",
        "_sanitizer",
        "_san_tick",
    )

    def __init__(self, config: MemoryConfig):
        self.config = config
        self.mapper = AddressMapper(config)
        # Inlined power-of-two decode for enqueue: same arithmetic as
        # AddressMapper.decode_fast, but with the channel/column shifts
        # folded together (enqueue never needs the column) and no call.
        mapper = self.mapper
        self._pow2_decode = getattr(mapper, "_pow2", False)
        if self._pow2_decode:
            self._dec_total_mask = mapper._total_mask
            self._dec_channel_mask = mapper._channel_mask
            self._dec_bank_shift = mapper._channel_shift + mapper._column_shift
            self._dec_bank_mask = mapper._bank_mask
            self._dec_rank_shift = self._dec_bank_shift + mapper._bank_shift
            self._dec_rank_mask = mapper._rank_mask
            self._dec_row_shift = self._dec_rank_shift + mapper._rank_shift
            self._dec_row_mask = mapper._row_mask
        self.channels = [ChannelState(config) for _ in range(config.channels)]
        self.schedulers = [
            FrFcfsScheduler(config.write_drain_high, config.write_drain_low)
            for _ in range(config.channels)
        ]
        self._queues = [_ChannelQueues() for _ in range(config.channels)]
        self._sequence = 0
        self._banks_per_rank = config.banks_per_rank
        self.stats = StatGroup("memory_controller")
        #: category -> (requests_<kind>, traffic_<category>_<kind>) counter
        #: pairs, one dict per direction, built lazily so enqueue never
        #: string-formats. Keyed by the category string alone (str hashes
        #: are cached; hashing the (category, kind) tuple re-ran the
        #: enum's Python-level __hash__ on every request).
        self._read_counters: Dict[str, Tuple] = {}
        self._write_counters: Dict[str, Tuple] = {}
        # Per-direction latency stats, bound once instead of per record.
        self._h_read_latency = self.stats.histogram("read_latency")
        self._h_write_latency = self.stats.histogram("write_latency")
        self._c_data_bus_cycles = self.stats.counter("data_bus_cycles")
        # Candidate-scan latency constants (identical across banks; see
        # BankState.access_latency).
        timing = config.timing
        self._lat_hit_read = timing.t_cl
        self._lat_hit_write = timing.t_cwl
        self._lat_closed_read = timing.t_rcd + timing.t_cl
        self._lat_closed_write = timing.t_rcd + timing.t_cwl
        self._lat_miss_read = timing.t_rp + timing.t_rcd + timing.t_cl
        self._lat_miss_write = timing.t_rp + timing.t_rcd + timing.t_cwl
        registry = get_registry()
        self._t_row_hits = registry.counter("dram.row_hits")
        self._t_row_misses = registry.counter("dram.row_misses")
        # Deferred-telemetry watermarks (see record_telemetry).
        self._synced_rows = [0, 0]
        self._t_queue_depth = registry.histogram(
            "dram.queue_depth", QUEUE_DEPTH_EDGES
        )
        self._t_read_latency = registry.histogram(
            "dram.read_latency_cycles", LATENCY_EDGES
        )
        self._t_write_latency = registry.histogram(
            "dram.write_latency_cycles", LATENCY_EDGES
        )
        # Deferred histogram accumulators: the hot path tallies integer
        # observations as value -> weight and record_telemetry flushes them
        # weight-batched. All three record int cycles/depths, so the
        # batched sums are bit-identical to per-event recording.
        self._depth_acc: Dict[int, int] = {}
        self._read_lat_acc: Dict[int, int] = {}
        self._write_lat_acc: Dict[int, int] = {}
        # None unless REPRO_SANITIZE is on; when set, the row-hit index is
        # cross-checked against a fresh queue scan (sampled per decision and
        # at every process() epoch boundary).
        self._sanitizer = get_sanitizer()
        self._san_tick = 0

    # ------------------------------------------------------------------

    def _counters_for(self, category: str, kind: RequestKind) -> Tuple:
        """Bind the request/traffic counters for one (category, kind)."""
        counters = (
            self.stats.counter("requests_%s" % kind.value),
            self.stats.counter("traffic_%s_%s" % (category, kind.value)),
        )
        table = self._write_counters if kind is _WRITE else self._read_counters
        table[category] = counters
        return counters

    def enqueue(
        self,
        kind: RequestKind,
        line_address: int,
        arrival: int,
        category: str = "data",
        core: int = 0,
    ) -> Request:
        """Add a request; its ``completion`` is set by :meth:`process`."""
        if self._pow2_decode:
            masked = line_address & self._dec_total_mask
            channel = masked & self._dec_channel_mask
            bank = (masked >> self._dec_bank_shift) & self._dec_bank_mask
            rank = (masked >> self._dec_rank_shift) & self._dec_rank_mask
            row = (masked >> self._dec_row_shift) & self._dec_row_mask
        else:
            channel, rank, bank, row, _column = self.mapper.decode_fast(
                line_address
            )
        sequence = self._sequence + 1
        self._sequence = sequence
        # Build the request through __new__ + direct slot writes: ~2.5x
        # cheaper than the __init__ call on this per-request path.
        request = Request.__new__(Request)
        request.kind = kind
        request.line_address = line_address
        request.arrival = arrival
        request.category = category
        request.core = core
        request.channel = channel
        request.rank = rank
        request.bank = bank
        request.row = row
        flat_bank = rank * self._banks_per_rank + bank
        request.flat_bank = flat_bank
        request.row_key = (flat_bank << 40) | row
        request.completion = None
        request.sequence = sequence
        request.is_write = kind is _WRITE
        queues = self._queues[channel]
        # Plain append: _process_channel sorts the backlog once per epoch.
        # Arrivals are emitted almost-sorted, so the Timsort is near-linear
        # and strictly cheaper than a heap operation per request.
        queues.incoming.append((arrival, sequence, request))
        table = self._write_counters if kind is _WRITE else self._read_counters
        try:
            counters = table[category]
        except KeyError:
            counters = self._counters_for(category, kind)
        # Unit increments: bump the slots directly, skipping Counter.add's
        # sign check on the per-request path.
        counters[0].value += 1
        counters[1].value += 1
        return request

    def enqueue_batch(
        self, specs: List[Tuple[RequestKind, int, int, str, int]]
    ) -> List[Request]:
        """Enqueue ``(kind, line, arrival, category, core)`` specs in order.

        Sequence numbers are assigned in list order, exactly as the same
        calls made one by one — producers that expand one event into
        several requests (the secure engine's metadata expansion) buffer
        their emissions and flush through here to amortise the per-call
        binding without perturbing arbitration order.
        """
        if not self._pow2_decode:
            enqueue = self.enqueue
            return [
                enqueue(kind, line, arrival, category, core)
                for kind, line, arrival, category, core in specs
            ]
        count = len(specs)
        if count >= _BATCH_DECODE_MIN:
            return self._enqueue_batch_columnar(specs, count)
        total_mask = self._dec_total_mask
        channel_mask = self._dec_channel_mask
        bank_shift = self._dec_bank_shift
        bank_mask = self._dec_bank_mask
        rank_shift = self._dec_rank_shift
        rank_mask = self._dec_rank_mask
        row_shift = self._dec_row_shift
        row_mask = self._dec_row_mask
        banks_per_rank = self._banks_per_rank
        queues = self._queues
        read_counters = self._read_counters
        write_counters = self._write_counters
        write = _WRITE
        sequence = self._sequence
        new = Request.__new__
        out: List[Request] = []
        append = out.append
        for kind, line_address, arrival, category, core in specs:
            masked = line_address & total_mask
            channel = masked & channel_mask
            bank = (masked >> bank_shift) & bank_mask
            rank = (masked >> rank_shift) & rank_mask
            row = (masked >> row_shift) & row_mask
            sequence += 1
            request = new(Request)
            request.kind = kind
            request.line_address = line_address
            request.arrival = arrival
            request.category = category
            request.core = core
            request.channel = channel
            request.rank = rank
            request.bank = bank
            request.row = row
            flat_bank = rank * banks_per_rank + bank
            request.flat_bank = flat_bank
            request.row_key = (flat_bank << 40) | row
            request.completion = None
            request.sequence = sequence
            is_write = kind is write
            request.is_write = is_write
            queues[channel].incoming.append((arrival, sequence, request))
            table = write_counters if is_write else read_counters
            try:
                counters = table[category]
            except KeyError:
                counters = self._counters_for(category, kind)
            counters[0].value += 1
            counters[1].value += 1
            append(request)
        self._sequence = sequence
        return out

    def _enqueue_batch_columnar(self, specs, count: int) -> List[Request]:
        """Large-batch enqueue: one numpy pass decodes every address.

        The channel/rank/bank/row/flat_bank/row_key columns for the whole
        batch come out of a handful of vectorised integer ops (identical
        arithmetic to the scalar decode, so the resulting requests are
        bit-identical); the remaining per-request loop only materialises
        the Request objects and routes them. Roughly 4x cheaper per spec
        than the scalar decode at epoch-flush batch sizes.
        """
        lines = np.fromiter(
            (spec[1] for spec in specs), dtype=np.int64, count=count
        )
        masked = lines & self._dec_total_mask
        rank = (masked >> self._dec_rank_shift) & self._dec_rank_mask
        bank = (masked >> self._dec_bank_shift) & self._dec_bank_mask
        row = (masked >> self._dec_row_shift) & self._dec_row_mask
        flat = rank * self._banks_per_rank + bank
        channel_col = (masked & self._dec_channel_mask).tolist()
        rank_col = rank.tolist()
        bank_col = bank.tolist()
        row_col = row.tolist()
        flat_col = flat.tolist()
        row_key_col = ((flat << 40) | row).tolist()
        queues = self._queues
        incoming_appends = [q.incoming.append for q in queues]
        write = _WRITE
        sequence = self._sequence
        new = Request.__new__
        out: List[Request] = []
        append = out.append
        # Accounting is tallied locally and flushed once per batch: the
        # tally dict keeps first-seen order, so lazily created counters
        # appear in the stats group in exactly the order serial enqueues
        # would have created them. Keyed (is_write, category) — hashing
        # a bool is a no-op, hashing the RequestKind enum is a Python
        # __hash__ call per request.
        tally: Dict[Tuple[bool, str], int] = {}
        for (
            (kind, line_address, arrival, category, core),
            channel,
            rank_v,
            bank_v,
            row_v,
            flat_bank,
            row_key,
        ) in zip(
            specs, channel_col, rank_col, bank_col, row_col, flat_col,
            row_key_col,
        ):
            sequence += 1
            request = new(Request)
            request.kind = kind
            request.line_address = line_address
            request.arrival = arrival
            request.category = category
            request.core = core
            request.channel = channel
            request.rank = rank_v
            request.bank = bank_v
            request.row = row_v
            request.flat_bank = flat_bank
            request.row_key = row_key
            request.completion = None
            request.sequence = sequence
            is_write = kind is write
            request.is_write = is_write
            incoming_appends[channel]((arrival, sequence, request))
            key = (is_write, category)
            try:
                tally[key] += 1
            except KeyError:
                tally[key] = 1
            append(request)
        self._sequence = sequence
        read_counters = self._read_counters
        write_counters = self._write_counters
        for (is_write, category), count in tally.items():
            table = write_counters if is_write else read_counters
            try:
                counters = table[category]
            except KeyError:
                counters = self._counters_for(
                    category, write if is_write else RequestKind.READ
                )
            counters[0].value += count
            counters[1].value += count
        return out

    # ------------------------------------------------------------------

    def process(self) -> None:
        """Schedule every enqueued request, assigning completions."""
        for channel_index in range(self.config.channels):
            self._process_channel(channel_index)
        if self._sanitizer is not None:
            # Epoch boundary: the row-hit index must agree with a fresh
            # scan of the (now drained) queues and the open-row tables
            # must mirror bank state.
            self._sanitizer.check_scheduler_index(self)

    def _process_channel(self, channel_index: int) -> None:
        queues = self._queues[channel_index]
        incoming = queues.incoming
        reads = queues.reads
        writes = queues.writes
        if not incoming and not reads and not writes:
            return  # idle channel: skip the prologue entirely
        channel = self.channels[channel_index]
        scheduler = self.schedulers[channel_index]
        read_index = queues.read_index
        write_index = queues.write_index
        open_rows = channel.open_rows
        banks = channel.banks
        plan_fn = channel.plan
        lat_hit_read = self._lat_hit_read
        lat_hit_write = self._lat_hit_write
        lat_miss_read = self._lat_miss_read
        lat_miss_write = self._lat_miss_write
        select_pool = self._select_pool
        scan = self._scan
        depth_acc = self._depth_acc
        read_lat_acc = self._read_lat_acc
        write_lat_acc = self._write_lat_acc
        bus_counter = self._c_data_bus_cycles
        sanitizer = self._sanitizer
        window = self.WINDOW
        drain_high = scheduler.drain_high

        # One near-linear Timsort per epoch replaces a heap pop per request
        # (producers emit almost-sorted arrivals; (arrival, seq) is unique).
        if incoming:
            incoming.sort()
        cursor = 0
        backlog = len(incoming)

        # Admission is inlined at its three sites (hot path): route into
        # the pool and maintain its row census — count the (bank, row)
        # key, and tally a hit when that bank currently holds the
        # request's row open.
        reads_append = reads.append
        writes_append = writes.append
        read_counts = read_index.row_counts
        write_counts = write_index.row_counts

        while cursor < backlog or reads or writes:
            if not reads and not writes:
                # Idle: jump to the next arrival.
                entry = incoming[cursor]
                cursor += 1
                request = entry[2]
                if request.is_write:
                    writes_append(request)
                    index = write_index
                    row_counts = write_counts
                else:
                    reads_append(request)
                    index = read_index
                    row_counts = read_counts
                key = request.row_key
                row_counts[key] = row_counts.get(key, 0) + 1
                if open_rows[request.flat_bank] == request.row:
                    index.hits += 1
                horizon = entry[0]
            else:
                horizon = queues.last_command_start + 1
            # Admit everything that has arrived by the current horizon.
            while cursor < backlog and incoming[cursor][0] <= horizon:
                request = incoming[cursor][2]
                cursor += 1
                if request.is_write:
                    writes_append(request)
                    index = write_index
                    row_counts = write_counts
                else:
                    reads_append(request)
                    index = read_index
                    row_counts = read_counts
                key = request.row_key
                row_counts[key] = row_counts.get(key, 0) + 1
                if open_rows[request.flat_bank] == request.row:
                    index.hits += 1

            # Pool selection fast path: steady non-drain state with reads
            # pending and the write queue below the high watermark cannot
            # transition (no side effects) and always picks reads.
            if not scheduler.draining and reads and len(writes) < drain_high:
                pool = reads
            else:
                pool = select_pool(scheduler, reads, writes)
                if pool is None:
                    continue
            pool_len = len(pool)
            # Inline first-scan decision: same estimate policy as _scan
            # (max(arrival, horizon, ready) + latency class) with the pool
            # row census splitting the dominant steady state into an
            # all-miss scan and a two-way hit/miss scan.
            head = pool[0]
            is_write_pool = head.is_write
            if pool_len == 1:
                chosen = head
                pool_index = 0
                earliest = head.arrival
                if horizon > earliest:
                    earliest = horizon
                plan = plan_fn(
                    head.rank, head.bank, head.row, is_write_pool, earliest
                )
            elif channel.closed_banks == 0:
                if is_write_pool:
                    lat_hit = lat_hit_write
                    lat_miss = lat_miss_write
                    index = write_index
                else:
                    lat_hit = lat_hit_read
                    lat_miss = lat_miss_read
                    index = read_index
                if index.hits == 0:
                    # All candidates are equal-latency row misses, so the
                    # estimate ordering is the earliest-start ordering: the
                    # oldest candidate startable at the horizon wins
                    # outright, else the oldest with the smallest start
                    # (strict < keeps the first-scanned-wins tie-break).
                    chosen = head
                    pool_index = 0
                    best_earliest = 1 << 62
                    position = 0
                    for request in pool:
                        if position >= window:
                            break
                        arrival = request.arrival
                        earliest = arrival if arrival > horizon else horizon
                        ready = banks[request.flat_bank].ready_at
                        if ready > earliest:
                            earliest = ready
                        if earliest <= horizon:
                            chosen = request
                            pool_index = position
                            break
                        if earliest < best_earliest:
                            chosen = request
                            pool_index = position
                            best_earliest = earliest
                        position += 1
                else:
                    # Hit-or-miss two-way scan; a ready row hit (estimate
                    # at the floor) is unbeatable, so stop there.
                    floor = horizon + lat_hit
                    chosen = head
                    pool_index = 0
                    best_estimate = 1 << 62
                    position = 0
                    for request in pool:
                        if position >= window:
                            break
                        arrival = request.arrival
                        earliest = arrival if arrival > horizon else horizon
                        bank = banks[request.flat_bank]
                        ready = bank.ready_at
                        if ready > earliest:
                            earliest = ready
                        estimate = earliest + (
                            lat_hit if bank.open_row == request.row else lat_miss
                        )
                        if estimate < best_estimate:
                            chosen = request
                            pool_index = position
                            best_estimate = estimate
                            if estimate <= floor:
                                break
                        position += 1
                earliest = chosen.arrival
                if horizon > earliest:
                    earliest = horizon
                plan = plan_fn(
                    chosen.rank, chosen.bank, chosen.row, is_write_pool, earliest
                )
            else:
                # Warm-up (some banks still closed): three-way latency
                # classes — take the general scan.
                chosen, plan, pool_index = scan(
                    channel, pool,
                    write_index if pool is writes else read_index,
                    horizon,
                )
            # Late arrivals before the chosen command start could alter the
            # decision; admit them and re-choose once. The rescan is
            # skipped when it provably cannot differ: same pool object and
            # either the candidate window was already full (appends land
            # beyond it) or nothing was admitted into this pool.
            if cursor < backlog and incoming[cursor][0] <= plan[0]:
                until = plan[0]
                while cursor < backlog and incoming[cursor][0] <= until:
                    request = incoming[cursor][2]
                    cursor += 1
                    if request.is_write:
                        writes_append(request)
                        index = write_index
                        row_counts = write_counts
                    else:
                        reads_append(request)
                        index = read_index
                        row_counts = read_counts
                    key = request.row_key
                    row_counts[key] = row_counts.get(key, 0) + 1
                    if open_rows[request.flat_bank] == request.row:
                        index.hits += 1
                if not scheduler.draining and reads and len(writes) < drain_high:
                    pool2 = reads
                else:
                    pool2 = select_pool(scheduler, reads, writes)
                if pool2 is not pool or (
                    pool_len < window and len(pool2) != pool_len
                ):
                    pool = pool2
                    chosen, plan, pool_index = scan(
                        channel, pool,
                        write_index if pool is writes else read_index,
                        horizon,
                    )

            depth = len(reads) + len(writes)
            try:
                depth_acc[depth] += 1
            except KeyError:
                depth_acc[depth] = 1
            fb = chosen.flat_bank
            old_row = open_rows[fb]
            new_row = chosen.row
            channel.commit(chosen.rank, chosen.bank, new_row, chosen.is_write, plan)
            if old_row != new_row:
                # The bank's open row moved: re-base both pools' hit
                # tallies — requests on the new row become hits, requests
                # on the old row (none existed while it was closed) stop
                # being hits.
                base = fb << 40
                key_new = base | new_row
                for index in (read_index, write_index):
                    row_counts = index.row_counts
                    delta = row_counts.get(key_new, 0)
                    if old_row >= 0:
                        delta -= row_counts.get(base | old_row, 0)
                    if delta:
                        index.hits += delta
            chosen.completion = plan[2]
            queues.last_command_start = plan[0]
            index = write_index if pool is writes else read_index
            row_counts = index.row_counts
            key = chosen.row_key
            count = row_counts[key] - 1
            if count:
                row_counts[key] = count
            else:
                del row_counts[key]
            # After the commit the chosen request's row is open in its
            # bank, so its removal always decrements the hit tally.
            index.hits -= 1
            if pool_index == 0:
                pool.popleft()
            else:
                del pool[pool_index]
            # Latency accounting: tally value -> weight; record_telemetry
            # flushes into both the stats and registry histograms (integer
            # weights, so batching is bit-exact).
            completion = plan[2]
            latency = completion - chosen.arrival
            acc = write_lat_acc if chosen.is_write else read_lat_acc
            try:
                acc[latency] += 1
            except KeyError:
                acc[latency] = 1
            bus_counter.value += completion - plan[1]
            if sanitizer is not None:
                # Sampled mid-stream consistency check (every 64 decisions)
                # so maintenance bugs surface near the offending commit.
                self._san_tick = tick = (self._san_tick + 1) & 63
                if tick == 0:
                    sanitizer.check_scheduler_index(self)
        del incoming[:]

    #: Scheduler candidate window: only the oldest WINDOW queued requests
    #: are considered per decision (real FR-FCFS pickers have bounded
    #: associative search too). Keeps each decision O(WINDOW).
    WINDOW = 16

    def _select_pool(self, scheduler, reads, writes):
        """Drain-hysteresis pool selection (side effects preserved).

        Inlined from FrFcfsScheduler.update_drain_mode: same transitions,
        same telemetry on entering a drain burst. Runs once per decision
        and again on a late-arrival re-choose — the burst accounting is
        part of the bit-identical contract, so the re-choose path must
        execute it even when the rescan itself is skipped.
        """
        write_depth = len(writes)
        draining = scheduler.draining
        was_draining = draining
        if draining:
            if write_depth <= scheduler.drain_low:
                draining = False
        else:
            if write_depth >= scheduler.drain_high:
                draining = True
        if write_depth and not reads:
            # Opportunistic writes when the channel would otherwise idle.
            draining = True
        if draining != was_draining:
            scheduler.draining = draining
            if draining:
                scheduler._t_drain_bursts.inc()
                scheduler._t_write_queue_depth.record(write_depth)
        pool = writes if (draining and write_depth) else reads
        if not pool:
            pool = writes or reads
        return pool if pool else None

    def _scan(self, channel, pool, index, horizon):
        """Pick the pool request with the earliest achievable data start.

        Returns ``(request, plan, pool_index)``. The estimate is computed
        from bank state alone (the data-bus shift is common to all
        candidates); the full plan is computed once, for the winner.

        Fast paths, each provably equal to the windowed reference scan:

        * **head**: no row hit in the pool (``index.hits == 0``) and no
          closed bank on the channel means every candidate is a row miss
          with the same latency, so the estimate ordering degenerates to
          ``max(arrival, ready_at, horizon)`` — and when the pool head is
          both arrived and bank-ready, it is the minimum with the oldest
          (arrival, sequence), i.e. the scan's winner, without scanning.
        * **ready-hit exit**: once the running best is a row hit starting
          at the horizon (estimate == horizon + lat_hit) nothing later can
          beat it (estimates are bounded below by exactly that) and later
          ties lose on age, so the scan stops.
        * **arrival prune**: pools are age-ordered, so once a candidate's
          arrival reaches ``best_estimate - lat_hit`` its estimate (and
          every later one's) is >= the best, with older tie-break — stop.

        The scan itself exploits the age order too: (arrival, sequence)
        is strictly increasing along the pool, so a later candidate can
        never win a tie — the reference's composite tie-break reduces to
        a single strict ``estimate < best_estimate`` compare.
        """
        banks = channel.banks
        head = pool[0]
        is_write_pool = head.is_write
        if len(pool) == 1:
            # Single candidate: no scan, straight to the plan.
            earliest = head.arrival
            if horizon > earliest:
                earliest = horizon
            plan = channel.plan(
                head.rank, head.bank, head.row, is_write_pool, earliest
            )
            return head, plan, 0
        if (
            index.hits == 0
            and channel.closed_banks == 0
            and head.arrival <= horizon
            and banks[head.flat_bank].ready_at <= horizon
        ):
            plan = channel.plan(
                head.rank, head.bank, head.row, is_write_pool, horizon
            )
            return head, plan, 0
        window = self.WINDOW
        if is_write_pool:
            lat_hit = self._lat_hit_write
            lat_closed = self._lat_closed_write
            lat_miss = self._lat_miss_write
        else:
            lat_hit = self._lat_hit_read
            lat_closed = self._lat_closed_read
            lat_miss = self._lat_miss_read
        floor = horizon + lat_hit
        best = None
        best_index = -1
        best_estimate = 1 << 62
        prune = 1 << 62
        position = 0
        if channel.closed_banks == 0:
            # Every bank holds an open row: candidates are hit or miss,
            # never closed — one compare decides the latency class.
            for request in pool:
                if position >= window:
                    break
                arrival = request.arrival
                if arrival >= prune:
                    break
                bank = banks[request.flat_bank]
                earliest = arrival if arrival > horizon else horizon
                ready = bank.ready_at
                if ready > earliest:
                    earliest = ready
                estimate = earliest + (
                    lat_hit if bank.open_row == request.row else lat_miss
                )
                if estimate < best_estimate:
                    best = request
                    best_index = position
                    best_estimate = estimate
                    if estimate <= floor:
                        break
                    prune = estimate - lat_hit
                position += 1
        else:
            for request in pool:
                if position >= window:
                    break
                arrival = request.arrival
                if arrival >= prune:
                    break
                bank = banks[request.flat_bank]
                earliest = arrival if arrival > horizon else horizon
                ready = bank.ready_at
                if ready > earliest:
                    earliest = ready
                open_row = bank.open_row
                if open_row is None:
                    latency = lat_closed
                elif open_row == request.row:
                    latency = lat_hit
                else:
                    latency = lat_miss
                estimate = earliest + latency
                if estimate < best_estimate:
                    best = request
                    best_index = position
                    best_estimate = estimate
                    if estimate <= floor:
                        break
                    prune = estimate - lat_hit
                position += 1
        earliest = best.arrival
        if horizon > earliest:
            earliest = horizon
        plan = channel.plan(best.rank, best.bank, best.row, is_write_pool, earliest)
        return best, plan, best_index

    # ------------------------------------------------------------------

    def traffic_by_category(self) -> Dict[str, int]:
        """Access counts keyed by '<category>_<read|write>'."""
        result: Dict[str, int] = {}
        for name, stat in self.stats:
            if name.startswith("traffic_"):
                result[name[len("traffic_") :]] = stat.value  # type: ignore[attr-defined]
        return result

    @property
    def last_completion(self) -> int:
        """Latest data-bus release across channels (end of simulation)."""
        return max(channel.bus_free_at for channel in self.channels)

    def record_telemetry(self) -> None:
        """End-of-run gauges: bus utilisation and per-bank access balance.

        Gauges aggregate as count/sum/min/max, so the per-bank observations
        expose utilisation imbalance (hot banks) after merging, not just
        the mean.

        Row-hit/miss and activation telemetry is recorded deferred: the
        hot path bumps the per-bank plain ints and this reconciles the
        registry counters (idempotently) before the snapshot. A scheduled
        request is a row hit at decision time iff its bank access commits
        as one, so the bank sums equal the per-decision counts.
        """
        row_hits = 0
        row_misses = 0
        for channel_state in self.channels:
            for bank in channel_state.banks:
                row_hits += bank.row_hits
                row_misses += bank.row_misses
                bank.sync_telemetry()
        synced = self._synced_rows
        self._t_row_hits.inc(row_hits - synced[0])
        self._t_row_misses.inc(row_misses - synced[1])
        synced[0] = row_hits
        synced[1] = row_misses
        # Flush the deferred histogram accumulators (weight-batched; all
        # integer observations, so batching is bit-exact). The latency
        # accumulators feed both the per-controller stats histograms and
        # the telemetry registry.
        for value, weight in self._depth_acc.items():
            self._t_queue_depth.record(value, weight)
        self._depth_acc.clear()
        for acc, histograms in (
            (self._read_lat_acc, (self._t_read_latency, self._h_read_latency)),
            (self._write_lat_acc, (self._t_write_latency, self._h_write_latency)),
        ):
            for value, weight in acc.items():
                for histogram in histograms:
                    histogram.record(value, weight)
            acc.clear()
        registry = get_registry()
        last = self.last_completion
        if last > 0:
            bus_cycles = 0
            if "data_bus_cycles" in self.stats:
                bus_cycles = self.stats["data_bus_cycles"].value  # type: ignore[attr-defined]
            registry.gauge("dram.bus_utilisation").set(
                bus_cycles / (last * self.config.channels)
            )
        bank_gauge = registry.gauge("dram.bank_accesses")
        for channel in self.channels:
            for bank in channel.banks:
                bank_gauge.set(bank.row_hits + bank.row_misses)

    def activation_counts(self) -> Dict[str, int]:
        """Row activations and accesses for the energy model."""
        activations = sum(
            bank.row_misses for channel in self.channels for bank in channel.banks
        )
        hits = sum(
            bank.row_hits for channel in self.channels for bank in channel.banks
        )
        return {"activations": activations, "row_hits": hits}
