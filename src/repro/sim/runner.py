"""Run design x workload grids and collect results for the harness.

``run_suite`` is the fan-out point for every performance figure: each
(design, workload) cell is an independent pure function of its arguments,
so cells run across a process pool (``jobs``) and bit-identical results
merge in grid order regardless of completion order. Finished cells are
stored in the content-addressed run cache (see ``repro.parallel.runcache``)
and reused across figures — the SGX_O baseline recurs in Figs. 8/9/10/13/14
but is simulated once per code version.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.sanitizer import get_sanitizer
from repro.cpu.trace import Trace
from repro.parallel import parallel_map, resolve_cache, resolve_jobs
from repro.parallel.runcache import RunCache, cache_key
from repro.secure.designs import SecureDesign
from repro.sim.config import SystemConfig
from repro.sim.energy import SystemEnergyParams, system_energy
from repro.sim.results import ResultTable, RunResult
from repro.sim.system import SystemSimulator
from repro.telemetry import TELEMETRY_AGGREGATE, cell_scope, get_tracer
from repro.workloads.generator import generate_trace
from repro.workloads.mixes import MIXES
from repro.workloads.profiles import WorkloadProfile, profile_by_name


#: Process-local memo for generated traces. Grid runs regenerate the same
#: per-core traces for every design sharing a workload (designs outer,
#: workloads inner), and trace synthesis is a measurable slice of each
#: cell; generate_trace is a pure function of the key below, and traces
#: are immutable (columnar numpy arrays that no consumer mutates), so
#: sharing one instance across
#: simulators is safe. Bounded by wholesale clearing — the access pattern
#: is a small working set per experiment, not an LRU-worthy stream.
_TRACE_MEMO: Dict[Tuple[object, ...], Trace] = {}
_TRACE_MEMO_MAX = 256


def _memoised_trace(
    profile: WorkloadProfile,
    accesses: int,
    core: int,
    base_line: int,
    seed_salt: object,
    scale_divisor: int,
) -> Trace:
    key = (profile, accesses, core, base_line, seed_salt, scale_divisor)
    try:
        trace = _TRACE_MEMO.get(key)
    except TypeError:  # unhashable profile or salt: just generate
        key = None
        trace = None
    if trace is None:
        trace = generate_trace(
            profile,
            accesses,
            core_id=core,
            base_line=base_line,
            seed_salt=seed_salt,
            scale_divisor=scale_divisor,
        )
        if key is not None:
            if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
                _TRACE_MEMO.clear()
            _TRACE_MEMO[key] = trace
    return trace


def _traces_for(
    workload: Union[str, WorkloadProfile],
    config: SystemConfig,
    seed_salt: object = "trace",
) -> Tuple[str, List[Trace]]:
    """Per-core traces: rate mode for a profile, one-each for a mix name."""
    if isinstance(workload, str) and workload in MIXES:
        names = MIXES[workload]
        profiles = [profile_by_name(name) for name in names]
        label = workload
    else:
        profile = (
            profile_by_name(workload) if isinstance(workload, str) else workload
        )
        profiles = [profile] * config.num_cores
        label = profile.name
    traces = [
        _memoised_trace(
            profiles[core],
            config.accesses_per_core,
            core,
            core * config.lines_per_core,
            seed_salt,
            config.cache_scale,
        )
        for core in range(config.num_cores)
    ]
    return label, traces


def run_workload(
    design: SecureDesign,
    workload: Union[str, WorkloadProfile],
    config: SystemConfig = SystemConfig(),
    energy_params: Optional[SystemEnergyParams] = None,
) -> RunResult:
    """Simulate one (design, workload) pair and package the result.

    The simulation runs under its own telemetry scope: every instrumented
    component constructed here registers into a fresh per-cell registry,
    and the snapshot rides on :attr:`RunResult.telemetry` — into the run
    cache and back across process-pool boundaries.
    """
    label, traces = _traces_for(workload, config)
    _label, warmup_traces = _traces_for(workload, config, seed_salt="warmup")
    cell = "%s/%s" % (design.name, label)
    tracer = get_tracer()
    with cell_scope(cell=cell) as registry:
        tracer.emit("cell_start", design=design.name, workload=label)
        sim = SystemSimulator(design, traces, config).run(warmup_traces)
        energy = system_energy(sim, energy_params or SystemEnergyParams())
        tracer.emit(
            "cell_end",
            design=design.name,
            workload=label,
            ipc=sim.ipc,
            cpu_cycles=sim.cpu_cycles,
        )
        telemetry = registry.snapshot().deterministic().to_payload()
    return RunResult(
        design=design.name,
        workload=label,
        ipc=sim.ipc,
        cpu_cycles=sim.cpu_cycles,
        instructions=sim.total_instructions,
        traffic=sim.traffic(),
        origin_traffic={
            key: value
            for key, value in sim.engine.stats.as_dict().items()
            if key.startswith(("demand_", "writeback_"))
        },
        energy_j=energy.total_j,
        power_w=energy.average_power_w,
        edp=energy.edp,
        llc_hit_rate=sim.hierarchy.llc.hit_rate,
        metadata_hit_rate=sim.hierarchy.metadata_cache.hit_rate,
        telemetry=telemetry,
    )


def _workload_label(workload: Union[str, WorkloadProfile]) -> str:
    return workload if isinstance(workload, str) else workload.name


def _cell_key(
    design: SecureDesign,
    workload: Union[str, WorkloadProfile],
    config: SystemConfig,
    energy_params: Optional[SystemEnergyParams],
) -> str:
    """Content address of one grid cell (see repro.parallel.runcache)."""
    return cache_key(
        "run_workload",
        design=design,
        workload=workload,
        config=config,
        energy=energy_params or SystemEnergyParams(),
    )


def _run_cell(
    task: Tuple[
        SecureDesign,
        Union[str, WorkloadProfile],
        SystemConfig,
        Optional[SystemEnergyParams],
    ]
) -> RunResult:
    """Module-level worker entry so cells pickle into pool processes."""
    design, workload, config, energy_params = task
    return run_workload(design, workload, config, energy_params)


def run_suite(
    designs: Iterable[SecureDesign],
    workloads: Iterable[Union[str, WorkloadProfile]],
    config: SystemConfig = SystemConfig(),
    energy_params: Optional[SystemEnergyParams] = None,
    jobs: Optional[int] = None,
    cache: Union[None, bool, str, RunCache] = None,
) -> ResultTable:
    """Run every design on every workload, fanned over ``jobs`` processes.

    ``jobs``/``cache`` default to the process execution context (CLI
    ``--jobs`` / ``--no-cache``, or ``REPRO_JOBS`` / ``REPRO_CACHE``).
    Results are returned in grid order — designs outer, workloads inner —
    whatever the completion order, and are bit-identical to a serial run.
    """
    designs = list(designs)
    workloads = list(workloads)
    jobs = resolve_jobs(jobs)
    run_cache = resolve_cache(cache)

    cells = [(design, workload) for design in designs for workload in workloads]
    finished = {}
    pending = []
    for design, workload in cells:
        label = "%s/%s" % (design.name, _workload_label(workload))
        key = (
            _cell_key(design, workload, config, energy_params)
            if run_cache is not None
            else None
        )
        if key is not None:
            payload = run_cache.get(key, label=label)
            if payload is not None:
                sanitizer = get_sanitizer()
                if sanitizer is not None:
                    sanitizer.check_cached_payload(
                        label,
                        payload,
                        lambda d=design, w=workload: run_workload(
                            d, w, config, energy_params
                        ).to_payload(),
                    )
                finished[(design, workload)] = RunResult.from_payload(payload)
                continue
        pending.append(((design, workload), key, label))

    if pending:
        results = parallel_map(
            _run_cell,
            [
                (design, workload, config, energy_params)
                for (design, workload), _key, _label in pending
            ],
            jobs=jobs,
            labels=[label for _cell, _key, label in pending],
        )
        for (cell, key, _label), result in zip(pending, results):
            finished[cell] = result
            if run_cache is not None and key is not None:
                run_cache.put(key, result.to_payload())

    table = ResultTable()
    for cell in cells:
        result = finished[cell]
        table.add(result)
        # Grid order + commutative merge => the aggregate is independent of
        # completion order, and warm cache hits still contribute metrics.
        TELEMETRY_AGGREGATE.add(result.design, result.telemetry)
    return table
