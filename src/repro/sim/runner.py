"""Run design x workload grids and collect results for the harness."""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.secure.designs import SecureDesign
from repro.sim.config import SystemConfig
from repro.sim.energy import SystemEnergyParams, system_energy
from repro.sim.results import ResultTable, RunResult
from repro.sim.system import SystemSimulator
from repro.workloads.generator import generate_trace
from repro.workloads.mixes import MIXES
from repro.workloads.profiles import WorkloadProfile, profile_by_name


def _traces_for(
    workload: Union[str, WorkloadProfile],
    config: SystemConfig,
    seed_salt: object = "trace",
):
    """Per-core traces: rate mode for a profile, one-each for a mix name."""
    if isinstance(workload, str) and workload in MIXES:
        names = MIXES[workload]
        profiles = [profile_by_name(name) for name in names]
        label = workload
    else:
        profile = (
            profile_by_name(workload) if isinstance(workload, str) else workload
        )
        profiles = [profile] * config.num_cores
        label = profile.name
    traces = [
        generate_trace(
            profiles[core],
            config.accesses_per_core,
            core_id=core,
            base_line=core * config.lines_per_core,
            seed_salt=seed_salt,
            scale_divisor=config.cache_scale,
        )
        for core in range(config.num_cores)
    ]
    return label, traces


def run_workload(
    design: SecureDesign,
    workload: Union[str, WorkloadProfile],
    config: SystemConfig = SystemConfig(),
    energy_params: Optional[SystemEnergyParams] = None,
) -> RunResult:
    """Simulate one (design, workload) pair and package the result."""
    label, traces = _traces_for(workload, config)
    _label, warmup_traces = _traces_for(workload, config, seed_salt="warmup")
    sim = SystemSimulator(design, traces, config).run(warmup_traces)
    energy = system_energy(sim, energy_params or SystemEnergyParams())
    return RunResult(
        design=design.name,
        workload=label,
        ipc=sim.ipc,
        cpu_cycles=sim.cpu_cycles,
        instructions=sim.total_instructions,
        traffic=sim.traffic(),
        origin_traffic={
            key: value
            for key, value in sim.engine.stats.as_dict().items()
            if key.startswith(("demand_", "writeback_"))
        },
        energy_j=energy.total_j,
        power_w=energy.average_power_w,
        edp=energy.edp,
        llc_hit_rate=sim.hierarchy.llc.hit_rate,
        metadata_hit_rate=sim.hierarchy.metadata_cache.hit_rate,
    )


def run_suite(
    designs: Iterable[SecureDesign],
    workloads: Iterable[Union[str, WorkloadProfile]],
    config: SystemConfig = SystemConfig(),
    energy_params: Optional[SystemEnergyParams] = None,
) -> ResultTable:
    """Run every design on every workload."""
    table = ResultTable()
    workloads = list(workloads)
    for design in designs:
        for workload in workloads:
            table.add(run_workload(design, workload, config, energy_params))
    return table
