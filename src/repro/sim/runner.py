"""Run design x workload grids and collect results for the harness.

``run_suite`` is the fan-out point for every performance figure: each
(design, workload) cell is an independent pure function of its arguments,
so cells run across a process pool (``jobs``) and bit-identical results
merge in grid order regardless of completion order. Finished cells are
stored in the content-addressed run cache (see ``repro.parallel.runcache``)
and reused across figures — the SGX_O baseline recurs in Figs. 8/9/10/13/14
but is simulated once per code version.
"""

from __future__ import annotations

import contextlib
import json
import threading
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.analysis.sanitizer import get_sanitizer
from repro.cpu.trace import Trace
from repro.parallel import (
    current_stats,
    parallel_map,
    resolve_cache,
    resolve_jobs,
)
from repro.parallel.runcache import RunCache, cache_key, cost_key
from repro.secure.designs import SecureDesign
from repro.sim.config import SystemConfig
from repro.sim.energy import SystemEnergyParams, system_energy
from repro.sim.results import ResultTable, RunResult
from repro.sim.system import SystemSimulator
from repro.simcontext import current_context
from repro.telemetry import (
    MetricsSnapshot,
    cell_scope,
    current_aggregate,
    get_tracer,
)
from repro.workloads.generator import generate_trace
from repro.workloads.mixes import MIXES
from repro.workloads.profiles import WorkloadProfile, profile_by_name


#: One progress event: plain JSON-able dict. Kinds emitted by run_suite:
#: ``suite`` (total cells, pending count) once per call, then one ``cell``
#: per finished cell — label, done/total counters, whether it was a cache
#: hit, worker seconds, and the cell's deterministic telemetry headline.
ProgressCallback = Callable[[Dict[str, object]], None]

#: Per-thread progress hook. Thread-local (not a plain global) because the
#: experiment service runs specs on an executor thread while other threads
#: may run their own suites; each installation only ever sees its own
#: thread's cells.
_PROGRESS = threading.local()


@contextlib.contextmanager
def cell_progress(callback: Optional[ProgressCallback]) -> Iterator[None]:
    """Install ``callback`` as this thread's progress hook for the block.

    Every ``run_suite`` call on this thread (however deep inside an
    experiment function) streams its per-cell completion events through the
    callback — the mechanism the experiment service uses for live job
    progress. Events arrive in deterministic order (grid-scan order for
    cache hits, submission order for executed cells) at any ``jobs`` count.
    An exception raised by the callback aborts the suite — cooperative
    cancellation.
    """
    previous = getattr(_PROGRESS, "callback", None)
    _PROGRESS.callback = callback
    try:
        yield
    finally:
        _PROGRESS.callback = previous


def emit_progress(event: Dict[str, object]) -> None:
    """Send one event through this thread's progress hook, if installed.

    Public so long-running experiments outside ``run_suite`` (Monte-Carlo
    sweeps, custom loops) can report progress and observe cancellation.
    """
    callback = getattr(_PROGRESS, "callback", None)
    if callback is not None:
        callback(dict(event))


def _active_progress(
    explicit: Optional[ProgressCallback],
) -> Optional[ProgressCallback]:
    if explicit is not None:
        return explicit
    return getattr(_PROGRESS, "callback", None)


#: Context-local memo for generated traces (``SimContext.trace_memo``).
#: Grid runs regenerate the same per-core traces for every design sharing a
#: workload (designs outer, workloads inner), and trace synthesis is a
#: measurable slice of each cell; generate_trace is a pure function of the
#: key below, and traces are immutable (columnar numpy arrays that no
#: consumer mutates), so sharing one instance across simulators is safe.
#: Bounded by wholesale clearing — the access pattern is a small working
#: set per experiment, not an LRU-worthy stream.
_TRACE_MEMO_MAX = 256


def _memoised_trace(
    profile: WorkloadProfile,
    accesses: int,
    core: int,
    base_line: int,
    seed_salt: object,
    scale_divisor: int,
) -> Trace:
    memo = current_context().trace_memo
    key = (profile, accesses, core, base_line, seed_salt, scale_divisor)
    try:
        trace = memo.get(key)
    except TypeError:  # unhashable profile or salt: just generate
        key = None
        trace = None
    if trace is None:
        trace = generate_trace(
            profile,
            accesses,
            core_id=core,
            base_line=base_line,
            seed_salt=seed_salt,
            scale_divisor=scale_divisor,
        )
        if key is not None:
            sanitizer = get_sanitizer()
            if sanitizer is not None:
                sanitizer.check_context_owner(memo, "trace memo")
            if len(memo) >= _TRACE_MEMO_MAX:
                memo.clear()
            memo[key] = trace
    return trace


def _traces_for(
    workload: Union[str, WorkloadProfile],
    config: SystemConfig,
    seed_salt: object = "trace",
) -> Tuple[str, List[Trace]]:
    """Per-core traces: rate mode for a profile, one-each for a mix name."""
    if isinstance(workload, str) and workload in MIXES:
        names = MIXES[workload]
        profiles = [profile_by_name(name) for name in names]
        label = workload
    else:
        profile = (
            profile_by_name(workload) if isinstance(workload, str) else workload
        )
        profiles = [profile] * config.num_cores
        label = profile.name
    traces = [
        _memoised_trace(
            profiles[core],
            config.accesses_per_core,
            core,
            core * config.lines_per_core,
            seed_salt,
            config.cache_scale,
        )
        for core in range(config.num_cores)
    ]
    return label, traces


#: Context-local memo for post-warmup cache state (``SimContext.warm_memo``).
#: Warmup is a pure
#: function of (warm traces, cache geometry, the design flags that steer
#: the metadata walk): designs sharing those flags reach byte-identical
#: cache dictionaries, so grid runs restore the snapshot instead of
#: replaying the warm traces. Snapshot dicts are private copies — the
#: restore copies them into the simulator's own set dictionaries
#: (preserving insertion order, which *is* the LRU state).
_WARM_MEMO_MAX = 64


def _warm_key(
    design: SecureDesign,
    label: str,
    config: SystemConfig,
    seed: Optional[int],
):
    """Memo key: everything the post-warmup cache state depends on."""
    caches = config.caches
    return (
        label,
        seed,
        config.num_cores,
        config.accesses_per_core,
        config.lines_per_core,
        config.num_data_lines,
        config.cache_scale,
        caches.llc_bytes,
        caches.llc_associativity,
        caches.metadata_bytes,
        caches.metadata_associativity,
        design.encrypted,
        design.counters_in_llc,
        design.mac_location,
        design.macs_cached,
        design.macs_in_llc,
        design.tree_kind,
        design.counter_mode,
    )


def _warm_simulator(
    sim: SystemSimulator,
    design: SecureDesign,
    label: str,
    config: SystemConfig,
    warmup_traces: List[Trace],
    seed: Optional[int] = None,
) -> None:
    """Warm ``sim``'s caches, through the memo when a snapshot exists."""
    memo = current_context().warm_memo
    key = _warm_key(design, label, config, seed)
    cached = memo.get(key)
    llc_sets = sim.hierarchy.llc._sets
    md_sets = sim.hierarchy.metadata_cache._sets
    if cached is None:
        sim.warmup(warmup_traces)
        sanitizer = get_sanitizer()
        if sanitizer is not None:
            sanitizer.check_context_owner(memo, "warm memo")
        if len(memo) >= _WARM_MEMO_MAX:
            memo.clear()
        memo[key] = (
            [dict(ways) for ways in llc_sets],
            [dict(ways) for ways in md_sets],
        )
        return
    # Fresh caches are empty, so update() reproduces the snapshot's
    # entries in insertion order — bit-identical LRU state. Stats stay
    # zero, exactly where warmup's trailing resets would leave them.
    for ways, snapshot in zip(llc_sets, cached[0]):
        ways.update(snapshot)
    for ways, snapshot in zip(md_sets, cached[1]):
        ways.update(snapshot)


# The in-memory L1 in front of the persistent run cache, keyed by the same
# content address, lives on the context too (``SimContext.run_memo``). The
# evaluation figures share grid cells wholesale (the SGX_O/SGX/Synergy
# baseline grid recurs in Figs. 8/9/10, Fig. 12's two-channel leg, and
# Fig. 13's monolithic leg), and each cell is a pure function of its key —
# so within one scope the second figure replays the first figure's result
# instead of re-simulating. Unlike the disk cache this cannot go stale (it
# dies with the context and never spans a code version), so it stays on
# even when the persistent cache is disabled. Values are JSON strings: hits
# round-trip through ``json.loads`` so every consumer sees the same payload
# types as a disk-cache hit, and no two figures share mutable result state.
# The memo is a byte-budgeted LRU (``BoundedBytesMemo``): long-lived
# service processes stream unbounded distinct specs through it, and each
# eviction is counted as ``exec.memo_evictions`` on the scope's stats.


def clear_run_memos() -> None:
    """Drop the active context's memos (traces, warm state, cell results).

    Tests that assert on execution counts call this first; nothing in the
    memos is observable in results — cells are pure — so clearing is
    always safe, merely slower.
    """
    current_context().clear_memos()


def _memo_put(key: str, serialized: str) -> None:
    """Store one cell in the context memo, counting any LRU evictions."""
    memo = current_context().run_memo
    sanitizer = get_sanitizer()
    if sanitizer is not None:
        sanitizer.check_context_owner(memo, "run memo")
    evicted = memo.put(key, serialized)
    if evicted:
        current_stats().record_memo_evictions(evicted)


def run_workload(
    design: SecureDesign,
    workload: Union[str, WorkloadProfile],
    config: SystemConfig = SystemConfig(),
    energy_params: Optional[SystemEnergyParams] = None,
    seed: Optional[int] = None,
) -> RunResult:
    """Simulate one (design, workload) pair and package the result.

    The simulation runs under its own telemetry scope: every instrumented
    component constructed here registers into a fresh per-cell registry,
    and the snapshot rides on :attr:`RunResult.telemetry` — into the run
    cache and back across process-pool boundaries.

    ``seed`` re-salts the trace-synthesis streams (``None`` keeps the
    default salts): the ``grid`` experiment's way of asking for replicate
    runs over distinct, fully deterministic trace realisations.
    """
    trace_salt: object = "trace" if seed is None else ("trace", seed)
    warmup_salt: object = "warmup" if seed is None else ("warmup", seed)
    label, traces = _traces_for(workload, config, trace_salt)
    _label, warmup_traces = _traces_for(workload, config, seed_salt=warmup_salt)
    cell = "%s/%s" % (design.name, label)
    tracer = get_tracer()
    with cell_scope(cell=cell) as registry:
        tracer.emit("cell_start", design=design.name, workload=label)
        sim = SystemSimulator(design, traces, config)
        if config.warm_caches and warmup_traces:
            _warm_simulator(sim, design, label, config, warmup_traces, seed)
        sim.run()
        energy = system_energy(sim, energy_params or SystemEnergyParams())
        tracer.emit(
            "cell_end",
            design=design.name,
            workload=label,
            ipc=sim.ipc,
            cpu_cycles=sim.cpu_cycles,
        )
        telemetry = registry.snapshot().deterministic().to_payload()
    return RunResult(
        design=design.name,
        workload=label,
        ipc=sim.ipc,
        cpu_cycles=sim.cpu_cycles,
        instructions=sim.total_instructions,
        traffic=sim.traffic(),
        origin_traffic={
            key: value
            for key, value in sim.engine.stats.as_dict().items()
            if key.startswith(("demand_", "writeback_"))
        },
        energy_j=energy.total_j,
        power_w=energy.average_power_w,
        edp=energy.edp,
        llc_hit_rate=sim.hierarchy.llc.hit_rate,
        metadata_hit_rate=sim.hierarchy.metadata_cache.hit_rate,
        telemetry=telemetry,
    )


def _workload_label(workload: Union[str, WorkloadProfile]) -> str:
    return workload if isinstance(workload, str) else workload.name


def _cell_key(
    design: SecureDesign,
    workload: Union[str, WorkloadProfile],
    config: SystemConfig,
    energy_params: Optional[SystemEnergyParams],
    seed: Optional[int] = None,
) -> str:
    """Content address of one grid cell (see repro.parallel.runcache)."""
    return cache_key(
        "run_workload",
        design=design,
        workload=workload,
        config=config,
        energy=energy_params or SystemEnergyParams(),
        seed=seed,
    )


def cell_key(
    design: SecureDesign,
    workload: Union[str, WorkloadProfile],
    config: SystemConfig,
    energy_params: Optional[SystemEnergyParams] = None,
    seed: Optional[int] = None,
) -> str:
    """Public cell identity — what the whole-run planner dedups on.

    Exactly the key ``run_suite`` consults, so a cell the planner executed
    is a guaranteed memo/cache hit when a figure later assembles it.
    """
    return _cell_key(design, workload, config, energy_params, seed)


def cell_cost_key(
    design: SecureDesign,
    workload: Union[str, WorkloadProfile],
    config: SystemConfig,
    energy_params: Optional[SystemEnergyParams] = None,
    seed: Optional[int] = None,
) -> str:
    """Fingerprint-free identity for the cell's recorded wall time."""
    return cost_key(
        "run_workload",
        design=design,
        workload=workload,
        config=config,
        energy=energy_params or SystemEnergyParams(),
        seed=seed,
    )


def _store_result(
    run_cache: Optional[RunCache],
    memo_on: bool,
    key: Optional[str],
    task: Tuple,
    result: RunResult,
    seconds: float,
) -> None:
    """Persist one executed cell: disk entry (with wall-time metadata and
    the cost-model timing sidecar) plus the in-context memo."""
    if key is None:
        return
    payload = result.to_payload()
    if run_cache is not None:
        run_cache.put(key, payload, meta={"seconds": round(seconds, 6)})
        design, workload, config, energy_params, seed = task
        run_cache.record_timing(
            cell_cost_key(design, workload, config, energy_params, seed),
            seconds,
        )
    if memo_on:
        _memo_put(key, json.dumps(payload))


def _run_cell(
    task: Tuple[
        SecureDesign,
        Union[str, WorkloadProfile],
        SystemConfig,
        Optional[SystemEnergyParams],
        Optional[int],
    ]
) -> RunResult:
    """Module-level worker entry so cells pickle into pool processes."""
    design, workload, config, energy_params, seed = task
    return run_workload(design, workload, config, energy_params, seed)


def _cell_event(
    label: str,
    done: int,
    total: int,
    cached: bool,
    seconds: float,
    result: RunResult,
) -> Dict[str, object]:
    """One ``cell`` progress event (headline metrics are deterministic)."""
    return {
        "kind": "cell",
        "label": label,
        "done": done,
        "total": total,
        "cached": cached,
        "seconds": round(seconds, 6),
        "headline": MetricsSnapshot.from_payload(result.telemetry).headline(),
    }


def run_suite(
    designs: Iterable[SecureDesign],
    workloads: Iterable[Union[str, WorkloadProfile]],
    config: SystemConfig = SystemConfig(),
    energy_params: Optional[SystemEnergyParams] = None,
    jobs: Optional[int] = None,
    cache: Union[None, bool, str, RunCache] = None,
    seed: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> ResultTable:
    """Run every design on every workload, fanned over ``jobs`` processes.

    ``jobs``/``cache`` default to the process execution context (CLI
    ``--jobs`` / ``--no-cache``, or ``REPRO_JOBS`` / ``REPRO_CACHE``).
    Results are returned in grid order — designs outer, workloads inner —
    whatever the completion order, and are bit-identical to a serial run.

    ``seed`` re-salts trace synthesis per cell (see :func:`run_workload`).
    ``progress`` (or the thread's :func:`cell_progress` hook) receives one
    ``suite`` event, then one ``cell`` event per finished cell: cache hits
    in grid-scan order, executed cells in submission order — the same
    sequence at any ``jobs`` count, modulo the wall-clock ``seconds``
    field. A callback exception aborts the suite (cancellation).
    """
    designs = list(designs)
    workloads = list(workloads)
    jobs = resolve_jobs(jobs)
    run_cache = resolve_cache(cache)
    progress = _active_progress(progress)

    cells = [(design, workload) for design in designs for workload in workloads]
    total = len(cells)
    # The in-process memo stands down under the sanitizer: sanitize runs
    # recompute every cell so check_cached_payload exercises the full path.
    memo_on = get_sanitizer() is None
    run_memo = current_context().run_memo
    stats = current_stats()
    finished = {}
    hits = []
    pending = []
    for design, workload in cells:
        label = "%s/%s" % (design.name, _workload_label(workload))
        key = (
            _cell_key(design, workload, config, energy_params, seed)
            if run_cache is not None or memo_on
            else None
        )
        if key is not None and memo_on:
            serialized = run_memo.get(key)
            if serialized is not None:
                stats.record_cache_hit(label)
                result = RunResult.from_payload(json.loads(serialized))
                finished[(design, workload)] = result
                hits.append((label, result))
                continue
        if key is not None and run_cache is not None:
            payload = run_cache.get(key, label=label)
            if payload is not None:
                sanitizer = get_sanitizer()
                if sanitizer is not None:
                    sanitizer.check_cached_payload(
                        label,
                        payload,
                        lambda d=design, w=workload: run_workload(
                            d, w, config, energy_params, seed
                        ).to_payload(),
                    )
                else:
                    _memo_put(key, json.dumps(payload))
                result = RunResult.from_payload(payload)
                finished[(design, workload)] = result
                hits.append((label, result))
                continue
        pending.append(((design, workload), key, label))

    done = 0
    if progress is not None:
        progress(
            {"kind": "suite", "total": total, "pending": len(pending)}
        )
        for label, result in hits:
            done += 1
            progress(_cell_event(label, done, total, True, 0.0, result))

    if pending:
        emit = progress  # bind for the closure; progress stays Optional
        cell_seconds: List[float] = []

        def cell_progress_cb(index, label, result, elapsed):
            # Always capture the wall time (it feeds the stored entry's
            # metadata and the planner's cost model); forward to the user
            # callback only when one is installed.
            nonlocal done
            cell_seconds.append(elapsed)
            if emit is not None:
                done += 1
                emit(_cell_event(label, done, total, False, elapsed, result))

        tasks = [
            (design, workload, config, energy_params, seed)
            for (design, workload), _key, _label in pending
        ]
        results = parallel_map(
            _run_cell,
            tasks,
            jobs=jobs,
            labels=[label for _cell, _key, label in pending],
            progress=cell_progress_cb,
        )
        for (cell, key, _label), task, result, seconds in zip(
            pending, tasks, results, cell_seconds
        ):
            finished[cell] = result
            _store_result(run_cache, memo_on, key, task, result, seconds)

    table = ResultTable()
    for cell in cells:
        result = finished[cell]
        table.add(result)
        # Grid order + commutative merge => the aggregate is independent of
        # completion order, and warm cache hits still contribute metrics.
        current_aggregate().add(result.design, result.telemetry)
    return table


def run_cells(
    tasks: List[Tuple],
    labels: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    cache: Union[None, bool, str, RunCache] = None,
) -> List[RunResult]:
    """Execute grid cells *as given* and populate the memo + run cache.

    The whole-run planner's dispatch primitive: unlike :func:`run_suite`
    this neither probes nor dedups — the planner already did both — it
    fans the tasks (``(design, workload, config, energy_params, seed)``
    tuples) over ``jobs`` workers in the order supplied (the planner's
    LPT order), stores each result exactly as ``run_suite`` would (disk
    entry with wall-time metadata, cost-model timing, context memo), and
    returns results in submission order.

    Per-cell completion is streamed through the thread's
    :func:`cell_progress` hook as ``cell`` events (``planned: True``), so
    service jobs keep cell-granular progress and cancellation during a
    planned prefetch.
    """
    if not tasks:
        return []
    jobs = resolve_jobs(jobs)
    run_cache = resolve_cache(cache)
    memo_on = get_sanitizer() is None
    if labels is None:
        labels = [
            "%s/%s" % (task[0].name, _workload_label(task[1])) for task in tasks
        ]
    hook = _active_progress(None)
    total = len(tasks)
    cell_seconds: List[float] = []

    def on_cell(index, label, result, elapsed):
        cell_seconds.append(elapsed)
        if hook is not None:
            event = _cell_event(label, index + 1, total, False, elapsed, result)
            event["planned"] = True
            hook(event)

    results = parallel_map(
        _run_cell, tasks, jobs=jobs, labels=labels, progress=on_cell
    )
    for task, result, seconds in zip(tasks, results, cell_seconds):
        design, workload, config, energy_params, seed = task
        key = (
            _cell_key(design, workload, config, energy_params, seed)
            if run_cache is not None or memo_on
            else None
        )
        _store_result(run_cache, memo_on, key, task, result, seconds)
    return results
