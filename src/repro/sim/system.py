"""The full-system simulator: cores -> LLC -> secure engine -> DRAM.

Data reads look up the shared LLC; misses go through the secure timing
engine, which adds the design's metadata traffic. A read completes when the
data *and* all verification metadata have returned, plus a fixed
verification latency. Data writes allocate dirty in the LLC (write-validate,
no fetch); dirty evictions become memory writes with their own metadata
traffic — writes never block the cores.

Time units: cores run in CPU cycles (floats), the controller in memory
cycles; ``cpu_clock_multiplier`` converts at the boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.setassoc import ABSENT
from repro.cpu.multicore import MulticoreDriver
from repro.cpu.rob import AccessHandle, CoreModel
from repro.cpu.trace import Trace
from repro.dram.controller import MemoryController
from repro.secure.designs import SecureDesign
from repro.secure.timing_engine import SecureTimingEngine
from repro.sim.config import SystemConfig
from repro.telemetry import get_registry
from repro.util.stats import StatGroup

#: CPU-cycle buckets for end-to-end read-miss latency (LLC miss -> usable).
MISS_LATENCY_EDGES = (64, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 4096)


class SystemSimulator:
    """One design running one set of per-core traces to completion."""

    def __init__(
        self,
        design: SecureDesign,
        traces: List[Trace],
        config: SystemConfig = SystemConfig(),
    ):
        if not traces:
            raise ValueError("need at least one trace")
        self.design = design
        self.config = config
        memory_config = config.memory
        if design.chipkill_lockstep:
            # Lock-step pairs of channels (Fig. 1b): every access occupies
            # two physical channels, so the system behaves like one with
            # half the channels for scheduling purposes.
            from dataclasses import replace as _replace

            memory_config = _replace(
                memory_config, channels=max(1, memory_config.channels // 2)
            )
        self.controller = MemoryController(memory_config)
        self.hierarchy = CacheHierarchy(config.scaled_caches())
        self.engine = SecureTimingEngine(
            design, self.hierarchy, self.controller, config.num_data_lines
        )
        # Columnar timing plane: the engine buffers every emission of an
        # epoch and flushes once at the resolve boundary; blocking sets
        # are tracked as indices into that epoch batch (see _resolve).
        self.engine.begin_deferred()
        self.stats = StatGroup("system")
        self._traces = list(traces)
        self._unresolved: List[Tuple[AccessHandle, List[int], float]] = []
        self.cores = [
            CoreModel(core_id, trace, self._read, self._write, config.core)
            for core_id, trace in enumerate(traces)
        ]
        self.driver = MulticoreDriver(self.cores, self._resolve)
        self._mult = config.memory.cpu_clock_multiplier
        self._t_miss_latency = get_registry().histogram(
            "system.read_miss_latency_cpu", MISS_LATENCY_EDGES
        )
        # Hot-path bindings: one attribute fetch per access instead of a
        # per-event StatGroup name lookup.
        self._c_data_reads = self.stats.counter("data_reads")
        self._c_data_writes = self.stats.counter("data_writes")
        self._c_llc_hits = self.stats.counter("llc_hits")
        self._c_llc_misses = self.stats.counter("llc_misses")
        self._llc_latency = config.llc_latency_cpu
        self._access_data = self.hierarchy.access_data
        # LLC internals, bound once: _read/_write run per data access and
        # inline the set-dict probe (same ops as SetAssociativeCache.access,
        # same stat bumps — see that class for the LRU idiom).
        llc = self.hierarchy.llc
        self._llc = llc
        self._llc_sets = llc._sets
        self._llc_mask = llc._set_mask
        self._llc_shift = llc._set_shift
        self._llc_assoc = llc.associativity
        self._expand_miss = self.engine.expand_read_miss_deferred
        # Dirty-data evictions route through the fused writeback drain on
        # fast-path designs; the scalar drain elsewhere (same boundary as
        # miss expansion).
        self._writeback = self.engine.fast_writeback or self.engine.writeback

    # ------------------------------------------------------------------
    # Core-facing memory interface
    # ------------------------------------------------------------------

    def _read(self, line_address: int, cpu_time: float, core: int) -> AccessHandle:
        # Unit increments bump the counter slots directly (no method call).
        self._c_data_reads.value += 1
        set_index = line_address & self._llc_mask
        tag = line_address >> self._llc_shift
        ways = self._llc_sets[set_index]
        prev = ways.pop(tag, ABSENT)
        if prev is not ABSENT:
            self._llc.hits += 1
            ways[tag] = prev
            self._c_llc_hits.value += 1
            return AccessHandle(cpu_time + self._llc_latency)
        llc = self._llc
        llc.misses += 1
        writeback = None
        if len(ways) >= self._llc_assoc:
            victim_tag = next(iter(ways))
            victim_dirty = ways.pop(victim_tag)
            llc.evictions += 1
            if victim_dirty:
                llc.dirty_evictions += 1
                writeback = (victim_tag << self._llc_shift) | set_index
        ways[tag] = False
        self.hierarchy.data_llc_fills += 1
        self._c_llc_misses.value += 1
        mem_time = int(cpu_time // self._mult)
        if writeback is not None:
            self._writeback(writeback, mem_time, core)
        blocking = self._expand_miss(line_address, mem_time, core)
        handle = AccessHandle(None)
        self._unresolved.append((handle, blocking, cpu_time))
        return handle

    def _write(self, line_address: int, cpu_time: float, core: int) -> None:
        self._c_data_writes.value += 1
        set_index = line_address & self._llc_mask
        tag = line_address >> self._llc_shift
        ways = self._llc_sets[set_index]
        prev = ways.pop(tag, ABSENT)
        if prev is not ABSENT:
            self._llc.hits += 1
            ways[tag] = True
            return
        llc = self._llc
        llc.misses += 1
        writeback = None
        if len(ways) >= self._llc_assoc:
            victim_tag = next(iter(ways))
            victim_dirty = ways.pop(victim_tag)
            llc.evictions += 1
            if victim_dirty:
                llc.dirty_evictions += 1
                writeback = (victim_tag << self._llc_shift) | set_index
        ways[tag] = True
        self.hierarchy.data_llc_fills += 1
        if writeback is not None:
            mem_time = int(cpu_time // self._mult)
            self._writeback(writeback, mem_time, core)
        # Write-validate allocation: the store itself needs no memory fetch.

    # ------------------------------------------------------------------

    def _resolve(self) -> None:
        """Flush the epoch batch, schedule DRAM, fill in completions.

        The engine buffered this epoch's emissions; one ``flush_epoch``
        materialises them (same order/sequence numbers as immediate
        enqueues) and the blocking indices recorded at ``_read`` resolve
        against the returned request list.
        """
        requests = self.engine.flush_epoch()
        self.controller.process()
        verify = (
            self.config.verify_latency_cpu if self.design.encrypted else 0
        )
        if self.design.serial_tree_verification:
            # Non-Bonsai Merkle tree: one serial hash per level up to the
            # root before the data may be consumed (Fig. 16 mechanism).
            verify *= 1 + len(self.engine.map.tree_level_sizes)
        speculative = self.design.speculative_verification
        llc_latency = self._llc_latency
        mult = self._mult
        record_latency = self._t_miss_latency.record
        for handle, blocking, issue_cpu in self._unresolved:
            if speculative:
                # PoisonIvy-style: data usable on arrival; verification
                # (and its metadata fetches) retire off the critical path.
                # blocking[0] is always the data read itself.
                last_mem = requests[blocking[0]].completion
                latency_tail = llc_latency
            elif len(blocking) == 1:
                # Counter-hit majority: only the data read gates.
                last_mem = requests[blocking[0]].completion
                latency_tail = llc_latency + verify
            else:
                last_mem = max(requests[index].completion for index in blocking)
                latency_tail = llc_latency + verify
            completion = last_mem * mult
            if issue_cpu > completion:
                completion = issue_cpu
            completion += latency_tail
            handle.completion_cpu = completion
            record_latency(completion - issue_cpu)
        self._unresolved.clear()

    # ------------------------------------------------------------------

    def warmup(self, traces: List[Trace]) -> None:
        """Replay warmup traces through the caches, then reset stats.

        Warmup traces must share the measured traces' address distribution
        but not their exact addresses (different seed salt), so the caches
        reach steady-state occupancy without pre-loading the measured
        accesses themselves.
        """
        # Fused replay: the LLC probe is inlined with every stat bump
        # skipped — legal only here, because reset_stats/reset_fill_stats
        # below zero every counter warmup would have touched. Metadata
        # walks (the miss minority) still run through the engine.
        llc_sets = self._llc_sets
        llc_mask = self._llc_mask
        llc_shift = self._llc_shift
        llc_assoc = self._llc_assoc
        encrypted = self.design.encrypted
        # Fast-path designs use the fused warm walk (same state
        # transitions, stats skipped); MAC-tree/cached-MAC designs keep
        # the scalar walk — the same oracle boundary as miss expansion.
        warm_metadata = self.engine.fast_warm or self.engine.warm_miss_metadata
        absent = ABSENT
        for trace in traces:
            # Columnar iteration: plain (gap, is_write, line) ints — the
            # warmup replay skips TraceRecord construction entirely.
            for _gap, is_write, line in trace.iter_accesses():
                ways = llc_sets[line & llc_mask]
                tag = line >> llc_shift
                prev = ways.pop(tag, absent)
                if prev is not absent:
                    ways[tag] = True if is_write else prev
                    continue
                if len(ways) >= llc_assoc:
                    ways.pop(next(iter(ways)))
                ways[tag] = is_write != 0
                if encrypted:
                    warm_metadata(line, is_write != 0)
        self.hierarchy.llc.reset_stats()
        self.hierarchy.metadata_cache.reset_stats()
        self.hierarchy.reset_fill_stats()

    def run(self, warmup_traces: Optional[List[Trace]] = None) -> "SystemSimulator":
        """Drive the simulation to completion; returns self for chaining."""
        if self.config.warm_caches and warmup_traces:
            self.warmup(warmup_traces)
        self.driver.run()
        self._resolve()  # flush any trailing posted writes
        self.hierarchy.record_telemetry()
        self.controller.record_telemetry()
        self.engine.sync_telemetry()
        return self

    # -- results -----------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        """Instructions retired across all cores."""
        return self.driver.total_instructions

    @property
    def cpu_cycles(self) -> float:
        """Wall-clock CPU cycles (slowest core's retirement)."""
        return self.driver.finish_time_cpu

    @property
    def ipc(self) -> float:
        """Aggregate instructions per CPU cycle (the paper's metric)."""
        cycles = self.cpu_cycles
        return self.total_instructions / cycles if cycles else 0.0

    def traffic(self) -> Dict[str, int]:
        """Memory accesses keyed '<category>_<read|write>'."""
        return self.controller.traffic_by_category()

    def accesses_per_kilo_instruction(self) -> float:
        """Total memory accesses per 1000 retired instructions."""
        total = sum(self.traffic().values())
        instructions = self.total_instructions
        return 1000.0 * total / instructions if instructions else 0.0
