"""Full-system performance simulation.

* :mod:`repro.sim.config` — the Table III system configuration.
* :mod:`repro.sim.system` — cores + LLC + secure engine + DRAM, wired
  through the blocking-point co-simulation protocol.
* :mod:`repro.sim.energy` — system power/energy/EDP model (Fig. 10).
* :mod:`repro.sim.results` — per-run result records and normalisation.
* :mod:`repro.sim.runner` — run design x workload grids for the harness.
"""

from repro.sim.config import SystemConfig
from repro.sim.results import RunResult
from repro.sim.runner import run_workload, run_suite
from repro.sim.system import SystemSimulator

__all__ = [
    "SystemConfig",
    "RunResult",
    "run_workload",
    "run_suite",
    "SystemSimulator",
]
