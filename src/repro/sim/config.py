"""System configuration (Table III of the paper).

4 cores at 3.2 GHz, 192-entry ROB, width 4; shared 8MB/8-way LLC; 128KB
8-way metadata cache; 2 DDR3 channels x 2 ranks x 8 banks at 800 MHz.
``accesses_per_core`` scales the synthetic trace length (the paper uses
1B-instruction slices; pure-Python runs use shorter ones — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.hierarchy import CacheConfig
from repro.cpu.rob import CoreParams
from repro.dram.timing import MemoryConfig


@dataclass(frozen=True)
class SystemConfig:
    """Everything a system simulation needs besides design + workload."""

    num_cores: int = 4
    core: CoreParams = field(default_factory=CoreParams)
    caches: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: data region size (lines) shared by all cores' footprints
    num_data_lines: int = 1 << 24
    #: per-core footprint offset spacing (lines)
    lines_per_core: int = 1 << 22
    #: memory ops per core in the synthetic trace
    accesses_per_core: int = 30_000
    #: fixed verification latency added to secure reads (CPU cycles):
    #: AES pad XOR + GMAC check once all fetches arrive
    verify_latency_cpu: int = 40
    #: LLC hit latency (CPU cycles)
    llc_latency_cpu: int = 30
    #: replay same-distribution (different-seed) traces through the caches
    #: before timing, so short traces measure steady-state cache behaviour
    warm_caches: bool = True
    #: scaled simulation: caches, footprints and hot sets are all divided
    #: by this factor, preserving every capacity *ratio* the results depend
    #: on while letting short traces exercise full caches (see DESIGN.md)
    cache_scale: int = 16

    def scaled_caches(self) -> CacheConfig:
        """Cache configuration with the scale divisor applied.

        The metadata cache scales 4x more gently than the LLC: at the full
        divisor it would shrink to a few dozen lines, where conflict misses
        dominate in a way the real 2048-line cache never sees (calibrated
        against the paper's SGX-vs-SGX_O gap; see DESIGN.md).
        """
        metadata_divisor = max(1, self.cache_scale // 4)
        return replace(
            self.caches,
            llc_bytes=self.caches.llc_bytes // self.cache_scale,
            metadata_bytes=self.caches.metadata_bytes // metadata_divisor,
        )

    def with_channels(self, channels: int) -> "SystemConfig":
        """Copy with a different channel count (Fig. 12 sweep)."""
        return replace(self, memory=replace(self.memory, channels=channels))

    def with_accesses(self, accesses_per_core: int) -> "SystemConfig":
        """Copy with a different trace length (scale knob)."""
        return replace(self, accesses_per_core=accesses_per_core)
