"""Result records for design x workload runs, plus normalisation helpers."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.units import gmean


@dataclass
class RunResult:
    """Outcome of one (design, workload) simulation."""

    design: str
    workload: str
    ipc: float
    cpu_cycles: float
    instructions: int
    traffic: Dict[str, int] = field(default_factory=dict)
    #: engine-side accounting keyed '<demand|writeback>_<category>_<kind>'
    #: (Fig. 9 splits traffic by what *triggered* it)
    origin_traffic: Dict[str, float] = field(default_factory=dict)
    energy_j: float = 0.0
    power_w: float = 0.0
    edp: float = 0.0
    llc_hit_rate: float = 0.0
    metadata_hit_rate: float = 0.0
    #: per-cell metrics snapshot payload (``MetricsSnapshot.to_payload``);
    #: deterministic — no wall-clock timers — so serial/pooled cells match
    telemetry: Dict[str, object] = field(default_factory=dict)

    def traffic_per_kilo_instruction(self) -> Dict[str, float]:
        """Accesses per 1000 instructions by category."""
        if not self.instructions:
            return {}
        return {
            key: 1000.0 * value / self.instructions
            for key, value in self.traffic.items()
        }

    def origin_traffic_per_kilo_instruction(self) -> Dict[str, float]:
        """Trigger-attributed accesses per 1000 instructions (Fig. 9 axes)."""
        if not self.instructions:
            return {}
        return {
            key: 1000.0 * value / self.instructions
            for key, value in self.origin_traffic.items()
        }

    @property
    def total_accesses(self) -> int:
        """Total memory accesses."""
        return sum(self.traffic.values())

    @property
    def key(self) -> Tuple[str, str]:
        """The (design, workload) identity of this cell."""
        return (self.design, self.workload)

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready dict for the on-disk run cache."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_payload` output."""
        return cls(**payload)


class ResultTable:
    """A collection of results with speedup/normalisation queries."""

    def __init__(self, results: Iterable[RunResult] = ()):
        self.results: List[RunResult] = []
        self._index: Dict[Tuple[str, str], RunResult] = {}
        for result in results:
            self.add(result)

    def add(self, result: RunResult) -> None:
        """Append one result (first occurrence of a cell wins lookups)."""
        self.results.append(result)
        self._index.setdefault(result.key, result)

    def get(self, design: str, workload: str) -> RunResult:
        """Fetch one result; raises KeyError if absent."""
        try:
            return self._index[(design, workload)]
        except KeyError:
            raise KeyError(
                "no result for (%s, %s)" % (design, workload)
            ) from None

    def merge(self, *others: "ResultTable") -> "ResultTable":
        """Combine tables into a new one, stably sorted by (design, workload).

        Duplicate cells resolve to the first-seen result, and the output
        order is a deterministic function of the *contents* only — so a
        table assembled from parallel workers in any completion order
        always prints identical figure rows.
        """
        merged = ResultTable()
        for table in (self,) + others:
            for result in table.results:
                if result.key not in merged._index:
                    merged.add(result)
        merged.sort()
        return merged

    def sort(
        self,
        designs: Optional[Sequence[str]] = None,
        workloads: Optional[Sequence[str]] = None,
    ) -> "ResultTable":
        """Stable in-place sort on (design, workload).

        Optional explicit orderings pin rows to the figure's presentation
        order (the requested design/workload lists); anything not listed
        sorts lexicographically after the listed entries.
        """

        def rank(order: Optional[Sequence[str]], value: str) -> Tuple[int, str]:
            if order is not None:
                try:
                    return (list(order).index(value), value)
                except ValueError:
                    return (len(order), value)
            return (0, value)

        self.results.sort(
            key=lambda r: (rank(designs, r.design), rank(workloads, r.workload))
        )
        return self

    def workloads(self) -> List[str]:
        """Distinct workloads in insertion order."""
        seen: List[str] = []
        for result in self.results:
            if result.workload not in seen:
                seen.append(result.workload)
        return seen

    def designs(self) -> List[str]:
        """Distinct designs in insertion order."""
        seen: List[str] = []
        for result in self.results:
            if result.design not in seen:
                seen.append(result.design)
        return seen

    def speedup(self, design: str, baseline: str, workload: str) -> float:
        """IPC of ``design`` over ``baseline`` for one workload."""
        return self.get(design, workload).ipc / self.get(baseline, workload).ipc

    def gmean_speedup(self, design: str, baseline: str) -> float:
        """Geometric-mean speedup across all workloads (paper's summary)."""
        return gmean(
            self.speedup(design, baseline, workload)
            for workload in self.workloads()
        )

    def gmean_edp_ratio(self, design: str, baseline: str) -> float:
        """Geometric-mean EDP ratio across workloads."""
        return gmean(
            self.get(design, w).edp / self.get(baseline, w).edp
            for w in self.workloads()
        )
