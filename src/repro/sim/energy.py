"""System power, energy, and EDP (Fig. 10, Fig. 16, Fig. 17).

The system energy model combines:

* core power — a fixed per-core component while the workload runs;
* uncore/LLC power — fixed while the workload runs;
* DRAM energy — event-based (activations, column reads/writes) plus rank
  background power, from :mod:`repro.dram.power`.

Because core+uncore power dominates and is constant, total *power* stays
nearly flat across designs (as the paper observes) while *energy* tracks
execution time plus the memory-traffic delta, and EDP amplifies the
performance gap — exactly the structure of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.power import DramEnergyParams, dram_energy
from repro.sim.system import SystemSimulator


@dataclass(frozen=True)
class SystemEnergyParams:
    """Power constants for the non-DRAM parts of the system."""

    core_power_w: float = 6.0  #: per active core
    uncore_power_w: float = 4.0  #: LLC + interconnect + memory controller
    cpu_clock_ghz: float = 3.2
    dram: DramEnergyParams = DramEnergyParams()


@dataclass
class EnergyReport:
    """Energy breakdown of one finished simulation."""

    execution_seconds: float
    core_j: float
    uncore_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        """Total system energy in joules."""
        return self.core_j + self.uncore_j + self.dram_j

    @property
    def average_power_w(self) -> float:
        """Mean system power over the run."""
        if self.execution_seconds <= 0:
            return 0.0
        return self.total_j / self.execution_seconds

    @property
    def edp(self) -> float:
        """Energy-delay product (J*s) — the paper's system EDP metric."""
        return self.total_j * self.execution_seconds


def system_energy(
    sim: SystemSimulator, params: SystemEnergyParams = SystemEnergyParams()
) -> EnergyReport:
    """Compute the energy report for a completed simulation."""
    cpu_cycles = sim.cpu_cycles
    seconds = cpu_cycles / (params.cpu_clock_ghz * 1e9)
    num_cores = len(sim.cores)

    counts = sim.controller.activation_counts()
    traffic = sim.traffic()
    reads = sum(v for k, v in traffic.items() if k.endswith("_read"))
    writes = sum(v for k, v in traffic.items() if k.endswith("_write"))
    mem_cycles = int(cpu_cycles // sim.config.memory.cpu_clock_multiplier)
    ranks = sim.config.memory.channels * sim.config.memory.ranks_per_channel
    dram = dram_energy(
        activations=counts["activations"],
        reads=reads,
        writes=writes,
        elapsed_cycles=mem_cycles,
        ranks=ranks,
        params=params.dram,
    )
    return EnergyReport(
        execution_seconds=seconds,
        core_j=params.core_power_w * num_cores * seconds,
        uncore_j=params.uncore_power_w * seconds,
        dram_j=dram.total_nj * 1e-9,
    )
