"""Runtime invariant sanitizer (``REPRO_SANITIZE=1`` / ``--sanitize``).

Zero-cost-when-off design: hot components resolve :func:`get_sanitizer`
once in ``__init__`` and keep the result (``None`` when disabled) in a
slot; every hook site is a single ``if self._sanitizer is not None:``
branch, so the default path pays one predictable-false branch and the
golden bit-identity guarantees are untouched.  With the sanitizer *on*,
extra MAC computations and timing checks run, so telemetry counts and
wall-times differ — sanitizer runs validate invariants, they are not
bit-compared against goldens.

Invariants checked (paper cross-references in DESIGN.md):

* DRAM commit legality — bank ready time, classification latency
  (tRCD/tRP/tCL/tCWL), burst arithmetic, bus turnaround, tRRD/tFAW
  activation windows, refresh blackouts (Section VI methodology).
* RAID-3 reconstruction — the accepted chip hypothesis is the *only*
  one whose MAC verifies among the remaining candidates, and the
  repaired nine lanes XOR to zero against the active parity
  (Sections III-B, IV-A).
* Bonsai counter tree — after ``bump_chain`` every stored line re-reads
  to exactly the incremented counters and its MAC verifies under the
  *new* parent value (Section II-A4).
* Run cache — a replayed payload is byte-equal (canonical JSON) to a
  fresh recomputation of the same cell.
* Owner context — every mutation of a SimContext-owned container (trace/
  warm/run memos, word-consumption hints, the registry stack) lands in
  the active context's own container, never one that escaped another
  scope (the dynamic counterpart of raceguard's C403 rule).
* Scheduler index — at every controller ``process()`` epoch the
  incremental FR-FCFS structures (per-channel open-row table, closed-bank
  tally, per-pool row census) agree with a fresh scan of the queues
  against the actual bank states (the PR-5 indexed-chooser invariant).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Sanitizer",
    "SanitizerError",
    "configure_sanitizer",
    "get_sanitizer",
    "sanitized",
    "sanitizer_enabled",
]

ENV_VAR = "REPRO_SANITIZE"
_FALSEY = ("", "0", "false", "no", "off")


class SanitizerError(AssertionError):
    """An invariant the simulated hardware must uphold was violated."""


class Sanitizer:
    """Invariant checks; one instance shared process-wide while enabled."""

    __slots__ = ("checks", "last_check")

    def __init__(self) -> None:
        self.checks = 0  #: total invariant checks executed
        self.last_check = ""  #: name of the most recent check (introspection)

    def _enter(self, name: str) -> None:
        self.checks += 1
        self.last_check = name

    @staticmethod
    def _fail(message: str) -> None:
        raise SanitizerError(message)

    # ------------------------------------------------------------------
    # DRAM timing legality (hook: ChannelState.commit)
    # ------------------------------------------------------------------

    def check_dram_commit(
        self,
        channel: Any,
        rank: int,
        bank: int,
        row: int,
        is_write: bool,
        plan: Tuple[int, int, int],
    ) -> None:
        """Validate a planned access against the channel/bank state it is
        about to be committed over (must run *before* ``commit`` mutates)."""
        self._enter("dram_commit")
        start, data_start, completion = plan
        timing = channel.timing
        bank_state = channel.banks[channel.flat_bank(rank, bank)]
        where = f"ch rank={rank} bank={bank} row={row} start={start}"

        if start < bank_state.ready_at:
            self._fail(
                f"DRAM: command starts at {start} before bank ready_at "
                f"{bank_state.ready_at} (tCCD/tWR violation) [{where}]"
            )
        latency = bank_state.access_latency(row, is_write)
        if data_start - start < latency:
            self._fail(
                f"DRAM: data_start-start={data_start - start} < "
                f"classification latency {latency} (tRP/tRCD/CL violation) [{where}]"
            )
        if completion != data_start + timing.t_burst:
            self._fail(
                f"DRAM: completion {completion} != data_start {data_start} + "
                f"tBURST {timing.t_burst} [{where}]"
            )
        if is_write:
            turnaround = 0 if channel.last_was_write else timing.t_rtw
        else:
            turnaround = timing.t_wtr if channel.last_was_write else 0
        bus_bound = channel.bus_free_at + turnaround
        if data_start < bus_bound:
            self._fail(
                f"DRAM: data_start {data_start} under bus+turnaround bound "
                f"{bus_bound} [{where}]"
            )

        activating = bank_state.open_row != row
        history: Sequence[int] = ()
        if channel.config.model_faw and activating:
            history = channel._recent_activates[rank]
            if history:
                if start < history[-1] + timing.t_rrd:
                    self._fail(
                        f"DRAM: ACT at {start} violates tRRD after ACT at "
                        f"{history[-1]} [{where}]"
                    )
                if len(history) >= 4 and start < history[-4] + timing.t_faw:
                    self._fail(
                        f"DRAM: ACT at {start} is the 5th within tFAW of ACT "
                        f"at {history[-4]} [{where}]"
                    )

        if channel.config.model_refresh:
            phase = start % timing.t_refi
            if phase < timing.t_rfc:
                # plan() lifts start out of the blackout *before* the tFAW
                # and bus-turnaround stages, which may legitimately push it
                # into a later blackout; a start inside a blackout is only a
                # bug when no later constraint pinned it there.
                pinned_by_bus = data_start == bus_bound
                pinned_by_act = bool(history) and (
                    start == history[-1] + timing.t_rrd
                    or (len(history) >= 4 and start == history[-4] + timing.t_faw)
                )
                if not (pinned_by_bus or pinned_by_act):
                    self._fail(
                        f"DRAM: command at {start} inside refresh blackout "
                        f"(phase {phase} < tRFC {timing.t_rfc}) with no "
                        f"pinning constraint [{where}]"
                    )

    # ------------------------------------------------------------------
    # FR-FCFS row-hit index (hook: MemoryController.process / sampled
    # per-decision inside _process_channel)
    # ------------------------------------------------------------------

    def check_scheduler_index(self, controller: Any) -> None:
        """The controller's incremental scheduling indexes must agree with
        a fresh scan of ground truth: each channel's ``open_rows`` table
        and ``closed_banks`` tally mirror per-bank state, and each pool's
        row census (``row_counts``/``hits``) equals a recount of the queued
        requests. Runs at every ``process()`` epoch boundary and sampled
        between decisions, so index-maintenance bugs fail loudly instead
        of silently changing schedules."""
        self._enter("scheduler_index")
        for channel_index, channel in enumerate(controller.channels):
            open_rows = channel.open_rows
            closed = 0
            for flat, bank in enumerate(channel.banks):
                expected = -1 if bank.open_row is None else bank.open_row
                if open_rows[flat] != expected:
                    self._fail(
                        f"scheduler index: channel {channel_index} bank {flat} "
                        f"open-row table holds {open_rows[flat]}, bank state "
                        f"says {expected}"
                    )
                if bank.open_row is None:
                    closed += 1
            if closed != channel.closed_banks:
                self._fail(
                    f"scheduler index: channel {channel_index} closed_banks "
                    f"is {channel.closed_banks}, fresh count is {closed}"
                )
            queues = controller._queues[channel_index]
            for name, pool, index in (
                ("read", queues.reads, queues.read_index),
                ("write", queues.writes, queues.write_index),
            ):
                counts: Dict[int, int] = {}
                hits = 0
                for request in pool:
                    key = request.row_key
                    counts[key] = counts.get(key, 0) + 1
                    if open_rows[request.flat_bank] == request.row:
                        hits += 1
                if counts != index.row_counts:
                    self._fail(
                        f"scheduler index: channel {channel_index} {name} "
                        f"pool row_counts diverged from a fresh scan "
                        f"({len(index.row_counts)} keys vs {len(counts)})"
                    )
                if hits != index.hits:
                    self._fail(
                        f"scheduler index: channel {channel_index} {name} "
                        f"pool hit tally is {index.hits}, fresh scan "
                        f"counts {hits}"
                    )

    # ------------------------------------------------------------------
    # Columnar secure timing plane (hooks: SecureTimingEngine
    # expand_read_miss_deferred / flush_epoch)
    # ------------------------------------------------------------------

    def check_expansion_batch(
        self,
        engine: Any,
        data_line: int,
        when: int,
        core: int,
        base: int,
        blocking: Sequence[int],
    ) -> None:
        """Spot-check one deferred read-miss expansion (first of each epoch).

        The fused/deferred expansion must emit specs the scalar oracle
        would: the first gating request is the data line itself, every
        gating spec is a READ stamped with this miss's time and core, and
        each metadata address matches an independent recomputation from
        ``TimingMetadataMap`` (counter line, a prefix of the tree path,
        MAC line). The counter line must be resident in the dedicated
        metadata cache afterwards — the expansion just touched it."""
        self._enter("expansion_batch")
        from repro.dram.controller import RequestKind

        batch = engine._batch
        where = f"data_line={data_line:#x} when={when} base={base}"
        if not blocking or blocking[0] != base:
            self._fail(
                f"expansion: blocking[0] is {blocking[0] if blocking else None}, "
                f"expected batch base {base} (the data read) [{where}]"
            )
        if list(blocking) != sorted(set(blocking)) or blocking[-1] >= len(batch):
            self._fail(
                f"expansion: blocking indices {list(blocking)} not strictly "
                f"increasing within the epoch batch of {len(batch)} [{where}]"
            )
        map_ = engine.map
        design = engine.design
        counter_line = map_.counter_line(data_line)
        mac_line = map_.mac_line(data_line)
        counter_ok = {counter_line}
        counter_ok.update(map_.tree_path_from_counter(counter_line))
        mac_ok = {mac_line}
        mac_ok.update(map_.tree_path_from_mac(mac_line))
        for index in blocking:
            kind, line, at, category, who = batch[index]
            if kind is not RequestKind.READ or at != when or who != core:
                self._fail(
                    f"expansion: gating spec {index} is ({kind}, {at}, core "
                    f"{who}), expected a READ at {when} for core {core} [{where}]"
                )
            if category == "data":
                if line != data_line:
                    self._fail(
                        f"expansion: data read targets {line:#x}, expected "
                        f"{data_line:#x} [{where}]"
                    )
            elif category == "counter":
                if line not in counter_ok:
                    self._fail(
                        f"expansion: counter read {line:#x} is neither the "
                        f"counter line {counter_line:#x} nor on its tree "
                        f"path [{where}]"
                    )
            elif category == "mac":
                if line not in mac_ok:
                    self._fail(
                        f"expansion: mac read {line:#x} is neither the MAC "
                        f"line {mac_line:#x} nor on its MAC-tree path [{where}]"
                    )
        if design.encrypted and not engine.hierarchy.metadata_cache.probe(
            counter_line
        ):
            self._fail(
                f"expansion: counter line {counter_line:#x} absent from the "
                f"dedicated metadata cache right after its access [{where}]"
            )

    def check_epoch_flush(
        self, specs: Sequence[Tuple], requests: Sequence[Any]
    ) -> None:
        """The epoch flush must be a faithful 1:1 materialisation: one
        request per buffered spec, same fields in the same order, with
        consecutive sequence numbers — i.e. indistinguishable from the
        scalar engine enqueuing each spec the moment it was emitted."""
        self._enter("epoch_flush")
        if len(specs) != len(requests):
            self._fail(
                f"epoch flush: {len(specs)} buffered specs materialised "
                f"{len(requests)} requests"
            )
        if not requests:
            return
        first_sequence = requests[0].sequence
        for offset, (spec, request) in enumerate(zip(specs, requests)):
            kind, line, arrival, category, core = spec
            if (
                request.kind is not kind
                or request.line_address != line
                or request.arrival != arrival
                or request.category != category
                or request.core != core
            ):
                self._fail(
                    f"epoch flush: request {offset} is ({request.kind}, "
                    f"{request.line_address:#x}, {request.arrival}, "
                    f"{request.category}, core {request.core}), spec said "
                    f"({kind}, {line:#x}, {arrival}, {category}, core {core})"
                )
            if request.sequence != first_sequence + offset:
                self._fail(
                    f"epoch flush: request {offset} has sequence "
                    f"{request.sequence}, expected consecutive "
                    f"{first_sequence + offset}"
                )

    # ------------------------------------------------------------------
    # RAID-3 reconstruction (hooks: ReconstructionEngine.correct_*)
    # ------------------------------------------------------------------

    @staticmethod
    def _parity_is_zero(lanes: Sequence[bytes], parity: bytes) -> bool:
        from repro.ecc.parity import xor_parity

        return not any(xor_parity(list(lanes) + [bytes(parity)]))

    def check_counter_reconstruction(
        self,
        mac_calc: Any,
        address: int,
        parent_counter: int,
        accepted_counters: Sequence[int],
        repaired: Sequence[bytes],
        remaining: Sequence[Tuple[int, List[int], bytes]],
    ) -> None:
        """After a counter-line hypothesis is accepted: the repaired lanes
        must satisfy the RAID-3 parity, and every *remaining* hypothesis
        that also MAC-verifies must decode to the same counters — on an
        intact lane several hypotheses legitimately rebuild identical
        content, but two verifying hypotheses with *different* counters
        would make the correction ambiguous."""
        self._enter("counter_reconstruction")
        from repro.dimm.geometry import DATA_CHIPS, ECC_CHIP
        from repro.ecc.parity import xor_parity

        data_lanes = [repaired[i] for i in range(DATA_CHIPS)]
        if xor_parity(data_lanes) != bytes(repaired[ECC_CHIP]):
            self._fail(
                f"RAID-3: repaired counter line @{address:#x} fails the "
                "8-lane XOR against its ParityC lane"
            )
        accepted = list(accepted_counters)
        for chip, counters, mac in remaining:
            if list(counters) == accepted:
                continue
            if mac_calc.counter_line_mac_raw(address, parent_counter, counters) == mac:
                self._fail(
                    f"RAID-3: counter line @{address:#x} MAC verifies under "
                    f"chip-{chip} hypothesis with different counters — "
                    "correction is ambiguous"
                )

    def check_data_reconstruction(
        self,
        mac_calc: Any,
        address: int,
        counter: int,
        lanes: Sequence[bytes],
        active_parity: bytes,
        repaired: Sequence[bytes],
        remaining_chips: Sequence[int],
    ) -> None:
        """After a data-line hypothesis is accepted: the repaired nine lanes
        XOR to zero against the parity in use, and any remaining hypothesis
        that also MAC-verifies must rebuild the *same* nine lanes — on an
        intact lane several hypotheses legitimately coincide, but verifying
        hypotheses with different content would make correction ambiguous."""
        self._enter("data_reconstruction")
        from repro.core.cacheline_codec import decode_data_line
        from repro.core.reconstruction import ReconstructionEngine

        if not self._parity_is_zero(repaired, active_parity):
            self._fail(
                f"RAID-3: repaired data line @{address:#x} does not XOR to "
                "zero against the active parity"
            )
        accepted = [bytes(lane) for lane in repaired]
        for chip in remaining_chips:
            candidate = ReconstructionEngine._repair_data_lanes(
                lanes, chip, active_parity
            )
            if candidate == accepted:
                continue
            ciphertext, mac = decode_data_line(candidate)
            if mac_calc.data_mac_raw(address, counter, ciphertext) == mac:
                self._fail(
                    f"RAID-3: data line @{address:#x} MAC verifies under "
                    f"chip-{chip} hypothesis with different content — "
                    "correction is ambiguous"
                )

    # ------------------------------------------------------------------
    # Counter tree (hook: CounterTree.bump_chain)
    # ------------------------------------------------------------------

    def check_counter_chain(
        self,
        tree: Any,
        chain: Sequence[Tuple[int, int]],
        trusted: Dict[int, List[int]],
        updated: Dict[int, List[int]],
    ) -> None:
        """After ``bump_chain`` stores its lines, three things must hold.

        * Arithmetic: each covering slot incremented by exactly one and no
          other slot moved (child counters consistent with parent).
        * On-chip cache: the fault-immune metadata cache, where present,
          holds exactly the updated (trusted) values.
        * Detectability: re-reading a stored line through the (possibly
          faulty) DIMM either returns exactly the written values, or the
          divergence fails MAC verification under the new parent — an
          *undetectably* different line would defeat the integrity tree.
          (Benign injected faults corrupt lines right after the store;
          that is reconstruction's job, not a tree bug.)
        """
        self._enter("counter_chain")
        for address, slot in chain:
            before, after = trusted[address], updated[address]
            for index, (old, new) in enumerate(zip(before, after)):
                expected = old + 1 if index == slot else old
                if new != expected:
                    self._fail(
                        f"counter tree: line @{address:#x} slot {index} is "
                        f"{new}, expected {expected} after bump"
                    )
        chain_list = list(chain)
        for index, (address, _slot) in enumerate(chain_list):
            cached = tree.cache._lines.get(address)  # peek: no LRU/stat effects
            if cached is not None and list(cached) != list(updated[address]):
                self._fail(
                    f"counter tree: on-chip cache of line @{address:#x} holds "
                    f"{cached}, expected {updated[address]}"
                )
            loaded = tree.store.load_counter_line(address)
            if loaded is None:
                self._fail(
                    f"counter tree: line @{address:#x} missing from the store "
                    "immediately after bump_chain wrote it"
                )
                return
            counters, mac = loaded
            if list(counters) == list(updated[address]):
                continue
            parent = tree.parent_value(chain_list, index, updated)
            if tree.mac_calc.counter_line_mac_raw(address, parent, counters) == mac:
                self._fail(
                    f"counter tree: line @{address:#x} re-reads to {counters} "
                    f"(wrote {updated[address]}) yet its MAC verifies — "
                    "corruption would be undetectable"
                )

    # ------------------------------------------------------------------
    # Owner-context rule (hooks: sim.runner memo stores,
    # workloads.generator hint writes, telemetry.registry scope pushes)
    # ------------------------------------------------------------------

    def check_context_owner(self, container: object, what: str) -> None:
        """The dynamic counterpart of raceguard's C403: a mutation of a
        SimContext-owned container (memo, hint table, registry stack) must
        land in the container belonging to the *active* context. A mismatch
        means a reference escaped one scope and is being written from
        another — exactly the cross-worker leak the context plane exists
        to prevent."""
        self._enter("context_owner")
        from repro.simcontext import current_context

        context = current_context()
        if not context.owns(container):
            self._fail(
                f"context owner: {what} mutation targets a container not "
                f"owned by the active context {context!r} — a reference "
                "escaped its scope"
            )

    # ------------------------------------------------------------------
    # Run cache (hook: sim.runner.run_suite cache-hit path)
    # ------------------------------------------------------------------

    def check_cached_payload(
        self,
        label: str,
        cached: Dict[str, Any],
        recompute: Callable[[], Dict[str, Any]],
    ) -> None:
        """A cache hit must replay byte-equal: canonical-JSON of the cached
        payload equals canonical-JSON of a fresh computation of the cell."""
        fresh = recompute()
        # Entered after the recompute: the fresh run drives its own nested
        # checks, and this one is the most recent when we compare.
        self._enter("cached_payload")
        cached_text = json.dumps(cached, sort_keys=True)
        fresh_text = json.dumps(fresh, sort_keys=True)
        if cached_text != fresh_text:
            self._fail(
                f"run cache: cell '{label}' replayed from cache differs from "
                f"fresh computation ({len(cached_text)} vs {len(fresh_text)} "
                "canonical bytes)"
            )


# --------------------------------------------------------------------------
# Process-wide switch

_sanitizer: Optional[Sanitizer] = None
_resolved = False


def sanitizer_enabled() -> bool:
    """Is the sanitizer on for this process (env var or configure call)?"""

    return get_sanitizer() is not None


def get_sanitizer() -> Optional[Sanitizer]:
    """The process sanitizer, or None when disabled (the common case).

    Resolved once from ``REPRO_SANITIZE``; components capture the result in
    ``__init__`` so per-event code never re-reads the environment.
    """

    global _sanitizer, _resolved
    if not _resolved:  # lint-ok: C405 idempotent lazy init of a process switch
        _resolved = True  # lint-ok: C402 process-wide sanitizer switch
        if os.environ.get(ENV_VAR, "").strip().lower() not in _FALSEY:
            _sanitizer = Sanitizer()  # lint-ok: C402 process-wide switch
    return _sanitizer


def configure_sanitizer(enabled: bool) -> Optional[Sanitizer]:
    """Explicitly switch the sanitizer on/off (CLI ``--sanitize``, tests).

    Only components constructed *after* this call observe the change —
    existing instances keep the sanitizer they bound at ``__init__``.
    """

    global _sanitizer, _resolved
    _resolved = True  # lint-ok: C402 explicit process-wide reconfiguration
    _sanitizer = Sanitizer() if enabled else None  # lint-ok: C402 CLI/test switch
    return _sanitizer


@contextmanager
def sanitized(enabled: bool = True) -> Iterator[Optional[Sanitizer]]:
    """Test helper: temporarily force the sanitizer on (or off)."""

    global _sanitizer, _resolved
    previous = (_resolved, _sanitizer)
    try:
        yield configure_sanitizer(enabled)
    finally:
        _resolved, _sanitizer = previous  # lint-ok: C402 test-scoped restore
