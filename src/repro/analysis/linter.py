"""AST lint engine: parse, run rules, apply suppressions and baseline.

Usage (programmatic)::

    from repro.analysis import lint_paths, load_baseline, new_violations
    violations = lint_paths([Path("src/repro")], root=Path("."))
    fresh = new_violations(violations, load_baseline(Path("tools/lint_baseline.json")))

Per-line suppression::

    history = recent[-1]  # lint-ok: H302 short justification

Baseline entries are keyed on ``(rule_id, path, stripped line text)`` so
they survive line-number drift; ``tools/lint_repro.py --write-baseline``
regenerates the file.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.base import FileContext, Rule, Violation

__all__ = [
    "Violation",
    "lint_source",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "new_violations",
    "violations_to_baseline",
    "write_baseline",
]

_SUPPRESS_RE = re.compile(r"#\s*lint-ok\s*:\s*([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)")

BaselineKey = Tuple[str, str, str]


def _suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule ids suppressed on that line."""

    out: Dict[int, Set[str]] = {}
    for index, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[index] = {part.strip() for part in match.group(1).split(",")}
    return out


def lint_source(
    source: str,
    path: str = "<memory>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; returns unsuppressed violations sorted by
    (line, rule id).  Raises SyntaxError if the source does not parse."""

    tree = ast.parse(source, filename=path)
    ctx = FileContext(path=path, source=source, tree=tree)
    suppressed = _suppressions(ctx.lines)
    found: List[Violation] = []
    for rule in rules if rules is not None else ALL_RULES:
        for violation in rule.check(ctx):
            if violation.rule_id in suppressed.get(violation.line, ()):
                continue
            found.append(violation)
    found.sort(key=lambda v: (v.line, v.rule_id))
    return found


def lint_file(
    file_path: Path,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    rel = file_path
    if root is not None:
        try:
            rel = file_path.relative_to(root)
        except ValueError:  # outside the root: report the path as given
            rel = file_path
    source = file_path.read_text(encoding="utf-8")
    return lint_source(source, path=rel.as_posix(), rules=rules)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path, root=root, rules=rules))
    return violations


# --------------------------------------------------------------------------
# Baseline handling


def violations_to_baseline(violations: Iterable[Violation]) -> "Counter[BaselineKey]":
    return Counter(v.baseline_key() for v in violations)


def load_baseline(path: Path) -> "Counter[BaselineKey]":
    """Load a baseline file; a missing file is an empty baseline."""

    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    baseline: "Counter[BaselineKey]" = Counter()
    for entry in payload.get("entries", []):
        key = (str(entry["rule"]), str(entry["path"]), str(entry["line_text"]))
        baseline[key] += int(entry.get("count", 1))
    return baseline


def write_baseline(path: Path, violations: Iterable[Violation], note: str = "") -> None:
    counts = violations_to_baseline(violations)
    entries = [
        {"rule": rule, "path": rel, "line_text": text, "count": count}
        for (rule, rel, text), count in sorted(counts.items())
    ]
    payload = {
        "note": note
        or "Accepted pre-existing violations; regenerate with tools/lint_repro.py --write-baseline.",
        "entries": entries,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")


def new_violations(
    violations: Sequence[Violation], baseline: "Counter[BaselineKey]"
) -> List[Violation]:
    """Violations not covered by the baseline (multiset semantics: a
    baseline entry with count N absorbs at most N identical findings)."""

    budget = Counter(baseline)
    fresh: List[Violation] = []
    for violation in violations:
        key = violation.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            fresh.append(violation)
    return fresh
