"""Static and dynamic enforcement of the repo's design invariants.

Two halves (see DESIGN.md, "Analysis"):

* :mod:`repro.analysis.linter` — an AST-based linter with project-specific
  rule series: D (determinism), P (hot-path discipline), H (hygiene).
  ``tools/lint_repro.py`` is the CLI entry point; CI runs it with the
  committed baseline so only *new* violations fail the build.
* :mod:`repro.analysis.raceguard` — the whole-program concurrency pass
  (C401–C405): inventories module-level mutable state, builds the project
  call graph, and checks reachability from the concurrent entry points so
  the SimContext scoping contract is machine-enforced
  (``tools/lint_repro.py --concurrency``).
* :mod:`repro.analysis.sanitizer` — runtime invariant checks for the
  simulated hardware (DRAM timing legality, RAID-3 reconstruction
  uniqueness, counter-tree consistency, run-cache replay fidelity, and
  the owner-context rule for SimContext-owned memos/registries),
  enabled with ``REPRO_SANITIZE=1`` / ``--sanitize`` and free when off.
"""

from repro.analysis.linter import (
    Violation,
    lint_paths,
    lint_source,
    load_baseline,
    new_violations,
    violations_to_baseline,
)
from repro.analysis.raceguard import (
    ConcurrencyReport,
    analyze_paths,
    concurrency_catalogue,
)
from repro.analysis.rules import ALL_RULES, rule_catalogue
from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    configure_sanitizer,
    get_sanitizer,
    sanitized,
    sanitizer_enabled,
)

__all__ = [
    "ALL_RULES",
    "ConcurrencyReport",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "analyze_paths",
    "concurrency_catalogue",
    "configure_sanitizer",
    "get_sanitizer",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "new_violations",
    "rule_catalogue",
    "sanitized",
    "sanitizer_enabled",
    "violations_to_baseline",
]
