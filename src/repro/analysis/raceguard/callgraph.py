"""Call graph + concurrent reachability for the raceguard analysis.

The graph's nodes are function qualnames (including each module's
``<module>`` pseudo-function for import-time code); edges come from the
per-function facts — direct calls, method calls resolved through classes
and constructor-typed locals, and *reference* edges for first-order
callbacks (a function mentioned without being called is assumed to run:
that is how thread targets, ``submit`` callbacks and ``parallel_map``
workers enter the concurrent region without simulating the spawning
machinery).

Reachability starts from every detected :class:`~repro.analysis.raceguard
.facts.Spawn` target — service worker drains, ``--worker-processes``
child mains, process-pool workers, load-test threads — and follows edges
transitively.  Parent pointers are kept so reports can show *why* a
function is considered concurrent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.raceguard.facts import Edge, FunctionFacts, Spawn
from repro.analysis.raceguard.model import Project


@dataclass
class CallGraph:
    """Adjacency + entry points + the concurrently-reachable set."""

    edges: List[Edge] = field(default_factory=list)
    adjacency: Dict[str, List[Edge]] = field(default_factory=dict)
    spawns: List[Spawn] = field(default_factory=list)
    #: function qualname -> the Spawn that roots its concurrent reachability
    reachable: Dict[str, Spawn] = field(default_factory=dict)
    #: BFS parent within the concurrent region (entry points map to "")
    parents: Dict[str, str] = field(default_factory=dict)

    def is_concurrent(self, qualname: str) -> bool:
        return qualname in self.reachable

    def chain(self, qualname: str, limit: int = 5) -> List[str]:
        """Entry-to-function path (truncated) for report messages."""
        links: List[str] = []
        cursor = qualname
        while cursor and len(links) < limit:
            links.append(cursor)
            cursor = self.parents.get(cursor, "")
        links.reverse()
        return links


def build_call_graph(
    project: Project, facts: Dict[str, FunctionFacts]
) -> CallGraph:
    graph = CallGraph()
    for function_facts in facts.values():
        graph.edges.extend(function_facts.edges)
        graph.spawns.extend(function_facts.spawns)
    for edge in graph.edges:
        graph.adjacency.setdefault(edge.caller, []).append(edge)

    queue: List[str] = []
    for spawn in graph.spawns:
        if spawn.target not in graph.reachable:
            graph.reachable[spawn.target] = spawn
            graph.parents[spawn.target] = ""
            queue.append(spawn.target)
    while queue:
        current = queue.pop(0)
        root = graph.reachable[current]
        for edge in graph.adjacency.get(current, ()):
            if edge.callee in graph.reachable:
                continue
            if edge.callee not in project.functions:
                continue
            graph.reachable[edge.callee] = root
            graph.parents[edge.callee] = current
            queue.append(edge.callee)
    return graph


def describe_entry(spawn: Spawn) -> str:
    return "%s (%s at %s:%d)" % (
        spawn.target,
        spawn.mechanism,
        spawn.path,
        spawn.lineno,
    )


def call_graph_payload(
    project: Project,
    facts: Dict[str, FunctionFacts],
    graph: CallGraph,
    concurrent_globals: Optional[Set[str]] = None,
) -> Dict[str, object]:
    """JSON-ready summary (the ``--call-graph-out`` artifact)."""
    edges: List[Tuple[str, str, str]] = sorted(
        {(edge.caller, edge.callee, edge.kind) for edge in graph.edges}
    )
    entries = [
        {
            "target": spawn.target,
            "mechanism": spawn.mechanism,
            "spawner": spawn.spawner,
            "path": spawn.path,
            "line": spawn.lineno,
        }
        for spawn in sorted(
            graph.spawns, key=lambda s: (s.path, s.lineno, s.target)
        )
    ]
    globals_payload = []
    for qualname in sorted(project.globals_):
        state = project.globals_[qualname]
        mutators = sorted(
            {
                mutation.function
                for function_facts in facts.values()
                for mutation in function_facts.mutations
                if mutation.target == qualname
            }
        )
        globals_payload.append(
            {
                "qualname": qualname,
                "kind": state.kind,
                "path": state.path,
                "line": state.lineno,
                "value": state.describe,
                "mutated_by": mutators,
                "concurrent": bool(
                    concurrent_globals and qualname in concurrent_globals
                ),
            }
        )
    return {
        "modules": sorted(project.modules),
        "functions": len(project.functions),
        "edges": [list(edge) for edge in edges],
        "entries": entries,
        "reachable": sorted(graph.reachable),
        "globals": globals_payload,
    }
