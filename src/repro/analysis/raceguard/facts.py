"""Per-function facts for raceguard: accesses, edges, spawns, hazards.

One pass over each function's scoped AST produces everything the C4xx
rules and the call graph need:

* ``calls``/``refs`` — resolved edges to other project functions.  A
  *reference* edge is any non-call mention of a known function (a closure
  handed to ``submit``, a thread target, ``parallel_map``'s first
  argument): first-order callbacks become graph edges without needing to
  model the spawning machinery's internals.
* ``reads``/``mutations`` — which project globals the function touches,
  and how (rebind under ``global``, subscript/attribute store, aug-assign,
  ``del``, or a mutating method call such as ``.update``/``.reset``).
* ``spawns`` — concurrency entry points created here: ``Thread(target=)``,
  ``Process(target=)``, ``executor.submit``, ``loop.run_in_executor``,
  ``pool.map`` and ``parallel_map`` fan-outs.
* Candidate C403 escapes (a ``SimContext``-owned container returned or
  stored into a module global), C404 import-time context accessor calls,
  and C405 lock-free check-then-act shapes — the whole-program rules
  filter these by kind and reachability.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.raceguard.model import (
    MODULE_FUNCTION,
    MUTATING_METHODS,
    FunctionInfo,
    FunctionScope,
    ModuleInfo,
    Project,
    Resolved,
    collect_scope,
    dotted_parts,
    resolve_method,
    resolve_parts,
    scope_roots,
    scoped_walk,
)

#: The context accessors whose *import-time* call C404 flags: each resolves
#: per-``SimContext`` state, so binding its result at import time freezes
#: one context's slice into module scope for every future context.
CONTEXT_ACCESSORS = frozenset(
    (
        "repro.simcontext.current_context",
        "repro.telemetry.registry.get_registry",
        "repro.telemetry.trace.get_tracer",
        "repro.parallel.instrument.current_stats",
        "repro.telemetry.aggregate.current_aggregate",
        "repro.parallel.context.get_context",
    )
)

#: Basenames of the factories whose result is an active ``SimContext``.
_CONTEXT_FACTORIES = frozenset(("current_context", "default_context"))

#: ``SimContext`` attributes that are owned mutable containers; letting one
#: escape its scope is exactly the cross-context sharing PR 8 removed.
CONTEXT_OWNED_ATTRS = frozenset(
    ("trace_memo", "warm_memo", "run_memo", "words_hint", "registry_stack")
)

#: Receiver names for which a bare ``.map(fn, ...)`` is a pool fan-out.
_POOL_RECEIVERS = frozenset(("pool", "executor"))


@dataclass(frozen=True)
class Edge:
    """One resolved call or reference from ``caller`` to ``callee``."""

    caller: str
    callee: str
    lineno: int
    kind: str  #: "call" | "ref"


@dataclass(frozen=True)
class Mutation:
    """One write to project-global state."""

    target: str  #: global qualname
    function: str  #: mutating function qualname
    path: str
    lineno: int
    kind: str  #: "rebind" | "store" | "aug" | "del" | "call"


@dataclass(frozen=True)
class Spawn:
    """One concurrency entry point: ``target`` starts running concurrently."""

    target: str  #: entry function qualname
    mechanism: str  #: "thread" | "process" | "submit" | "run_in_executor" | ...
    spawner: str
    path: str
    lineno: int


@dataclass(frozen=True)
class Escape:
    """C403 candidate: a context-owned value leaving its scope."""

    attr: str  #: the owned SimContext attribute
    how: str  #: "returned" | "stored into <global>"
    function: str
    path: str
    lineno: int


@dataclass(frozen=True)
class ImportTimeAccess:
    """C404 candidate: a context accessor called at import time."""

    accessor: str
    function: str
    path: str
    lineno: int


@dataclass(frozen=True)
class CheckThenAct:
    """C405 candidate: ``if <reads G>: <mutates G>`` with no lock around."""

    target: str  #: global qualname
    function: str
    path: str
    lineno: int  #: the ``if`` line


@dataclass
class FunctionFacts:
    """Everything one function contributes to the whole-program analysis."""

    function: str
    path: str
    edges: List[Edge] = field(default_factory=list)
    reads: Set[str] = field(default_factory=set)
    mutations: List[Mutation] = field(default_factory=list)
    spawns: List[Spawn] = field(default_factory=list)
    escapes: List[Escape] = field(default_factory=list)
    import_time: List[ImportTimeAccess] = field(default_factory=list)
    check_then_act: List[CheckThenAct] = field(default_factory=list)


class _FactsBuilder:
    def __init__(self, project: Project, module: ModuleInfo, fn: FunctionInfo) -> None:
        self.project = project
        self.module = module
        self.fn = fn
        self.scope: Optional[FunctionScope] = collect_scope(project, module, fn)
        self.facts = FunctionFacts(function=fn.qualname, path=module.path)
        self.consumed: Set[int] = set()
        self.context_names: Set[str] = set()
        self.tainted: Set[str] = set()
        self.has_lock = False

    # -- helpers -----------------------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[Resolved]:
        parts = dotted_parts(node)
        if not parts:
            return None
        return resolve_parts(self.project, self.module, self.scope, parts)

    def consume_chain(self, node: ast.AST) -> None:
        while isinstance(node, ast.Attribute):
            self.consumed.add(id(node))
            node = node.value
        if isinstance(node, ast.Name):
            self.consumed.add(id(node))

    def global_state_of(self, resolved: Optional[Resolved]) -> Optional[str]:
        if resolved is not None and resolved.kind == "global":
            return resolved.qualname
        return None

    def add_edge(self, callee: str, lineno: int, kind: str) -> None:
        self.facts.edges.append(
            Edge(caller=self.fn.qualname, callee=callee, lineno=lineno, kind=kind)
        )

    def record_mutation(self, target: str, lineno: int, kind: str) -> None:
        self.facts.mutations.append(
            Mutation(
                target=target,
                function=self.fn.qualname,
                path=self.module.path,
                lineno=lineno,
                kind=kind,
            )
        )

    # -- taint (C403) ------------------------------------------------------

    def is_context_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        parts = dotted_parts(node.func)
        if not parts or parts[-1] not in _CONTEXT_FACTORIES:
            return False
        resolved = resolve_parts(self.project, self.module, self.scope, parts)
        return resolved is not None and resolved.kind in ("function", "external")

    def owned_attr(self, node: ast.AST) -> str:
        """The owned-attr name when ``node`` is ``<context>.<owned>``."""
        if not isinstance(node, ast.Attribute) or node.attr not in CONTEXT_OWNED_ATTRS:
            return ""
        base = node.value
        if self.is_context_call(base):
            return node.attr
        if isinstance(base, ast.Name) and base.id in self.context_names:
            return node.attr
        return ""

    def tainted_attr_of(self, node: ast.AST) -> str:
        """Owned-attr provenance of an expression ('' when untainted)."""
        direct = self.owned_attr(node)
        if direct:
            return direct
        if isinstance(node, ast.Name) and node.id in self.tainted:
            return "context-owned"
        return ""

    # -- main walk ---------------------------------------------------------

    def run(self) -> FunctionFacts:
        include_class = self.fn.name == MODULE_FUNCTION
        roots = scope_roots(self.fn)
        # Taint pre-pass: which locals hold the active context / its
        # owned containers (statement order is irrelevant for safety).
        for node in scoped_walk(roots, include_class_bodies=include_class):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self.is_context_call(node.value):
                        self.context_names.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    text = ast.unparse(item.context_expr).lower()
                    if "lock" in text or "mutex" in text:
                        self.has_lock = True
        for node in scoped_walk(roots, include_class_bodies=include_class):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self.owned_attr(node.value):
                    self.tainted.add(target.id)

        nodes = list(scoped_walk(roots, include_class_bodies=include_class))
        for node in nodes:
            if id(node) in self.consumed:
                continue
            if isinstance(node, ast.Call):
                self.visit_call(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self.visit_assign(node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self.visit_store_target(target, node.lineno, "del")
            elif isinstance(node, ast.Return):
                self.visit_return(node)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                self.visit_load(node)
        if self.fn.name != MODULE_FUNCTION:
            self.detect_check_then_act(nodes)
        return self.facts

    # -- visitors ----------------------------------------------------------

    def visit_call(self, node: ast.Call) -> None:
        self.detect_spawn(node)
        resolved = self.resolve(node.func)
        if resolved is None:
            return
        self.consume_chain(node.func)
        if resolved.kind == "function" and not resolved.remainder:
            self.add_edge(resolved.qualname, node.lineno, "call")
            self.detect_import_time_access(resolved, node)
        elif resolved.kind == "class" and not resolved.remainder:
            init = resolve_method(self.project, resolved.qualname, "__init__")
            if init is not None:
                self.add_edge(init, node.lineno, "call")
        elif resolved.kind == "global":
            state = self.project.globals_.get(resolved.qualname)
            self.facts.reads.add(resolved.qualname)
            if len(resolved.remainder) == 1:
                method_name = resolved.remainder[0]
                if method_name in MUTATING_METHODS:
                    self.record_mutation(resolved.qualname, node.lineno, "call")
                if state is not None and state.class_qualname:
                    method = resolve_method(
                        self.project, state.class_qualname, method_name
                    )
                    if method is not None:
                        self.add_edge(method, node.lineno, "call")
                if (
                    method_name == "get"
                    and state is not None
                    and state.kind == "scoped"
                    and "ContextVar" in state.describe
                ):
                    self.detect_import_time_access(resolved, node)
        elif resolved.kind == "external":
            self.detect_import_time_access(resolved, node)

    def detect_import_time_access(self, resolved: Resolved, node: ast.Call) -> None:
        if self.fn.name != MODULE_FUNCTION:
            return
        accessor = ""
        if resolved.qualname in CONTEXT_ACCESSORS:
            accessor = resolved.qualname
        elif resolved.kind == "global" and resolved.remainder == ("get",):
            accessor = resolved.qualname + ".get"
        if accessor:
            self.facts.import_time.append(
                ImportTimeAccess(
                    accessor=accessor,
                    function=self.fn.qualname,
                    path=self.module.path,
                    lineno=node.lineno,
                )
            )

    def detect_spawn(self, node: ast.Call) -> None:
        func = node.func
        mechanism = ""
        target_expr: Optional[ast.expr] = None
        name = ""
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in ("Thread", "Process"):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    mechanism = "thread" if name == "Thread" else "process"
                    target_expr = keyword.value
        elif name == "submit" and isinstance(func, ast.Attribute) and node.args:
            mechanism, target_expr = "submit", node.args[0]
        elif (
            name == "run_in_executor"
            and isinstance(func, ast.Attribute)
            and len(node.args) >= 2
        ):
            mechanism, target_expr = "run_in_executor", node.args[1]
        elif (
            name == "map"
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _POOL_RECEIVERS
            and node.args
        ):
            mechanism, target_expr = "pool.map", node.args[0]
        elif name == "parallel_map" and node.args:
            resolved = self.resolve(func)
            if resolved is not None and resolved.qualname.split(".")[-1] == "parallel_map":
                mechanism, target_expr = "parallel_map", node.args[0]
        if target_expr is None or not mechanism:
            return
        resolved_target = self.resolve(target_expr)
        if resolved_target is None:
            return
        target = ""
        if resolved_target.kind == "function" and not resolved_target.remainder:
            target = resolved_target.qualname
        elif resolved_target.kind == "class" and not resolved_target.remainder:
            init = resolve_method(self.project, resolved_target.qualname, "__init__")
            target = init or ""
        if target:
            self.facts.spawns.append(
                Spawn(
                    target=target,
                    mechanism=mechanism,
                    spawner=self.fn.qualname,
                    path=self.module.path,
                    lineno=node.lineno,
                )
            )

    def visit_assign(
        self, node: "ast.Assign | ast.AnnAssign | ast.AugAssign"
    ) -> None:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        else:
            targets = [node.target]
        kind = "aug" if isinstance(node, ast.AugAssign) else "rebind"
        for target in targets:
            self.visit_store_target(target, node.lineno, kind)
        value = node.value
        if value is not None:
            attr = self.tainted_attr_of(value)
            if attr:
                for target in targets:
                    stored = self.escape_target(target)
                    if stored:
                        self.facts.escapes.append(
                            Escape(
                                attr=attr,
                                how="stored into %s" % stored,
                                function=self.fn.qualname,
                                path=self.module.path,
                                lineno=node.lineno,
                            )
                        )

    def escape_target(self, target: ast.expr) -> str:
        """Global qualname a store lands in, for C403 ('' when local)."""
        if self.fn.name == MODULE_FUNCTION:
            return ""  # import-time binding is the definition site, not escape
        chain: ast.AST = target
        if isinstance(target, ast.Subscript):
            chain = target.value
        resolved = self.resolve(chain)
        if resolved is not None and resolved.kind == "global":
            return resolved.qualname
        return ""

    def visit_store_target(self, target: ast.expr, lineno: int, kind: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.visit_store_target(element, lineno, kind)
            return
        if isinstance(target, ast.Starred):
            self.visit_store_target(target.value, lineno, kind)
            return
        if isinstance(target, ast.Name):
            if self.fn.name == MODULE_FUNCTION:
                return  # module-level assignment is the binding site
            if self.scope is not None and target.id in self.scope.global_decls:
                resolved = self.resolve(target)
                qual = self.global_state_of(resolved)
                if qual is not None:
                    self.consume_chain(target)
                    self.record_mutation(qual, lineno, kind)
            return
        if isinstance(target, ast.Subscript):
            resolved = self.resolve(target.value)
            qual = self.global_state_of(resolved)
            if qual is not None:
                self.consume_chain(target.value)
                self.facts.reads.add(qual)
                if self.fn.name != MODULE_FUNCTION:
                    self.record_mutation(qual, lineno, "store")
            return
        if isinstance(target, ast.Attribute):
            resolved = self.resolve(target)
            qual = self.global_state_of(resolved)
            if qual is not None:
                self.consume_chain(target)
                state = self.project.globals_.get(qual)
                if state is not None and state.kind == "scoped":
                    return  # threading.local attribute stores are the point
                self.facts.reads.add(qual)
                if self.fn.name != MODULE_FUNCTION:
                    mutation_kind = "rebind" if not resolved.remainder else "store"
                    self.record_mutation(qual, lineno, mutation_kind)

    def visit_return(self, node: ast.Return) -> None:
        if node.value is None or self.fn.name == MODULE_FUNCTION:
            return
        attr = self.owned_attr(node.value)
        if not attr and isinstance(node.value, ast.Name) and node.value.id in self.tainted:
            attr = "context-owned"
        if attr:
            self.facts.escapes.append(
                Escape(
                    attr=attr,
                    how="returned",
                    function=self.fn.qualname,
                    path=self.module.path,
                    lineno=node.lineno,
                )
            )

    def visit_load(self, node: "ast.Attribute | ast.Name") -> None:
        if not isinstance(getattr(node, "ctx", None), ast.Load):
            return
        resolved = self.resolve(node)
        if resolved is None:
            return
        self.consume_chain(node)
        if resolved.kind == "global":
            self.facts.reads.add(resolved.qualname)
        elif resolved.kind == "function" and not resolved.remainder:
            self.add_edge(resolved.qualname, node.lineno, "ref")

    # -- C405 --------------------------------------------------------------

    def detect_check_then_act(self, nodes: Sequence[ast.AST]) -> None:
        if self.has_lock or not self.facts.mutations:
            return
        for node in nodes:
            if not isinstance(node, ast.If):
                continue
            test_globals: Set[str] = set()
            for sub in ast.walk(node.test):
                if isinstance(sub, (ast.Name, ast.Attribute)):
                    resolved = self.resolve(sub)
                    qual = self.global_state_of(resolved)
                    if qual is not None:
                        test_globals.add(qual)
            if not test_globals:
                continue
            start = node.body[0].lineno
            end = max(
                int(stmt.end_lineno or stmt.lineno) for stmt in node.body
            )
            for mutation in self.facts.mutations:
                if mutation.target in test_globals and start <= mutation.lineno <= end:
                    self.facts.check_then_act.append(
                        CheckThenAct(
                            target=mutation.target,
                            function=self.fn.qualname,
                            path=self.module.path,
                            lineno=node.lineno,
                        )
                    )
                    break


def compute_facts(project: Project) -> Dict[str, FunctionFacts]:
    """Facts for every function in the project, keyed by qualname."""
    out: Dict[str, FunctionFacts] = {}
    for qualname, fn in project.functions.items():
        module = project.modules.get(fn.module)
        if module is None:
            continue
        out[qualname] = _FactsBuilder(project, module, fn).run()
    return out


def global_lineno(project: Project, qualname: str) -> Tuple[str, int]:
    """(path, definition line) of a project global, for reporting."""
    state = project.globals_[qualname]
    return state.path, state.lineno
