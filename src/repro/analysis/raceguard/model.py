"""Whole-program model for the raceguard concurrency analysis.

The per-file rules in :mod:`repro.analysis.rules` see one parsed module at
a time; the C4xx family needs to see the *project*: which module-level
names hold mutable state, which functions touch them, and how calls thread
from the concurrent entry points into that state.  This module builds that
picture:

* :func:`build_project` parses every file into :class:`ModuleInfo` records
  (imports, top-level functions, classes with methods, module globals) and
  links them — class bases resolved to project classes, ``self.x``
  attribute types recovered from ``__init__``, and every module global
  classified by a small type heuristic (:data:`KIND_CONTAINER`,
  :data:`KIND_SINGLETON`, :data:`KIND_SCOPED`, …).
* :func:`resolve_parts` answers "what does the dotted name ``a.b.c`` mean
  inside this function?" — following ``import`` aliases, re-export chains,
  ``self`` through the owning class (methods via base-class lookup,
  attributes via the recovered ``__init__`` types), and locals assigned
  from known constructors.

Everything here is pure AST analysis: the code under inspection is never
imported, so the analyzer can safely run over broken or hostile trees.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

MODULE_FUNCTION = "<module>"

#: Classification of a module-level (or class-level) binding's value.
KIND_IMMUTABLE = "immutable"  #: constants, tuples, frozen/empty-slots types
KIND_CONTAINER = "container"  #: dict/list/set/bytearray/deque literal or call
KIND_SINGLETON = "singleton"  #: instance of a project class with state
KIND_SCOPED = "scoped"  #: ContextVar / threading.local / locks — safe by design
KIND_OPAQUE = "opaque"  #: couldn't classify; treated as mutable when mutated

#: Kinds the C401 reachability rule considers shared mutable state.
MUTABLE_KINDS = frozenset((KIND_CONTAINER, KIND_SINGLETON, KIND_OPAQUE))

_MUTABLE_FACTORIES = frozenset(
    (
        "dict",
        "list",
        "set",
        "bytearray",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
        "collections.deque",
        "collections.defaultdict",
        "collections.Counter",
        "collections.OrderedDict",
        "queue.Queue",
        "Queue",
    )
)

_SCOPED_FACTORIES = frozenset(
    (
        "ContextVar",
        "contextvars.ContextVar",
        "threading.local",
        "local",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "asyncio.Lock",
    )
)

_IMMUTABLE_FACTORIES = frozenset(
    (
        "frozenset",
        "tuple",
        "object",
        "TypeVar",
        "typing.TypeVar",
        "re.compile",
        "namedtuple",
        "collections.namedtuple",
        "field",
        "dataclasses.field",
    )
)

#: Method names that mutate their receiver — evidence that a global
#: container/singleton is written through its module-level name.
MUTATING_METHODS = frozenset(
    (
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "put",
        "remove",
        "reset",
        "setdefault",
        "update",
    )
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


@dataclass(frozen=True)
class Resolved:
    """The meaning of a dotted name: what it names plus unconsumed attrs."""

    kind: str  #: "module" | "function" | "class" | "global" | "external"
    qualname: str
    remainder: Tuple[str, ...] = ()


@dataclass
class GlobalState:
    """One module-level (or shared class-level) binding and its heuristics."""

    qualname: str  #: e.g. ``repro.sim.runner._TRACE_MEMO_MAX``
    module: str
    name: str  #: bare name (``Cls.attr`` for class-level state)
    path: str
    lineno: int
    kind: str
    describe: str  #: short rendering of the bound value, for messages
    class_qualname: str = ""  #: project class of a singleton value, if known


@dataclass
class FunctionInfo:
    """One function, method, nested def, or the ``<module>`` pseudo-function."""

    module: str
    name: str  #: qualname within the module (``Cls.meth``, ``<module>``)
    qualname: str
    node: FunctionNode
    lineno: int
    class_name: str = ""  #: enclosing class (module-local qualname) for methods
    local_functions: Dict[str, str] = field(default_factory=dict)
    local_classes: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class: methods, base names, shared mutable attrs, self-attr types."""

    module: str
    name: str  #: qualname within the module
    qualname: str
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    resolved_bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> fn qualname
    init_self_attrs: Set[str] = field(default_factory=set)
    attr_types: Dict[str, str] = field(default_factory=dict)  #: self.x class
    mutable_attrs: Dict[str, str] = field(default_factory=dict)  #: attr -> global
    decorators: List[str] = field(default_factory=list)
    has_empty_slots: bool = False


@dataclass
class ModuleInfo:
    """One parsed source file and its module-level namespace."""

    name: str
    path: str
    tree: ast.Module
    lines: List[str]
    imports: Dict[str, str] = field(default_factory=dict)
    top_functions: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals_: Dict[str, GlobalState] = field(default_factory=dict)
    global_values: Dict[str, ast.expr] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class Project:
    """Every parsed module plus the cross-module symbol tables."""

    root: Path
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals_: Dict[str, GlobalState] = field(default_factory=dict)


@dataclass
class FunctionScope:
    """Name-binding facts needed to resolve identifiers inside one function."""

    bound: Set[str] = field(default_factory=set)
    global_decls: Set[str] = field(default_factory=set)
    local_functions: Dict[str, str] = field(default_factory=dict)
    var_types: Dict[str, str] = field(default_factory=dict)
    class_name: str = ""


def module_name_for(rel_path: Path) -> str:
    """Dotted module name for a path relative to the project root.

    A leading ``src/`` layout component is stripped, so ``src/repro/x.py``
    and ``tools/load_test.py`` become ``repro.x`` and ``tools.load_test``.
    """
    parts = list(rel_path.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return rel_path.stem
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    return ".".join(parts) if parts else rel_path.stem


def dotted_parts(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` attribute chains as parts; ``()`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def scoped_walk(
    roots: Sequence[ast.AST], include_class_bodies: bool = False
) -> Iterator[ast.AST]:
    """Walk nodes that execute in this scope, skipping nested def bodies.

    With ``include_class_bodies`` (the ``<module>`` pseudo-function), class
    bodies are included — they run at import time — while method bodies
    still are not.
    """
    todo: "deque[ast.AST]" = deque(roots)
    while todo:
        node = todo.popleft()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # The def's body runs when called, not here — but its
            # decorators and default values evaluate in this scope.
            todo.extend(node.decorator_list)
            todo.extend(d for d in node.args.defaults)
            todo.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.ClassDef) and not include_class_bodies:
            todo.extend(node.decorator_list)
            continue
        todo.extend(ast.iter_child_nodes(node))


def scope_roots(fn: FunctionInfo) -> Sequence[ast.AST]:
    """The statements executing inside ``fn``'s own scope."""
    return list(fn.node.body)


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def collect_scope(project: "Project", module: ModuleInfo, fn: FunctionInfo) -> FunctionScope:
    """Locals, ``global`` declarations, and constructor-typed vars of ``fn``."""
    scope = FunctionScope(class_name=fn.class_name)
    scope.local_functions = dict(fn.local_functions)
    scope.bound.update(fn.local_functions)
    scope.bound.update(fn.local_classes)
    if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn.node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            scope.bound.add(arg.arg)
    include_class = fn.name == MODULE_FUNCTION
    for node in scoped_walk(scope_roots(fn), include_class_bodies=include_class):
        if isinstance(node, ast.Global):
            scope.global_decls.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                scope.bound.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            scope.bound.update(_target_names(node.target))
        elif isinstance(node, ast.NamedExpr):
            scope.bound.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            scope.bound.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    scope.bound.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                scope.bound.add(node.name)
        elif isinstance(node, ast.comprehension):
            scope.bound.update(_target_names(node.target))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            # Module-level imports resolve through ``module.imports`` (the
            # C404 rule needs import-time calls of imported accessors to
            # resolve); only function-local imports shadow.
            if fn.name != MODULE_FUNCTION:
                for alias in node.names:
                    scope.bound.add((alias.asname or alias.name).split(".")[0])
    scope.bound -= scope.global_decls
    # Constructor-typed locals: ``x = SomeClass(...)`` lets ``x.method()``
    # resolve.  Pre-pass so statement order cannot matter.
    for node in scoped_walk(scope_roots(fn), include_class_bodies=include_class):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and isinstance(node.value, ast.Call)):
            continue
        parts = dotted_parts(node.value.func)
        if not parts:
            continue
        resolved = resolve_parts(project, module, None, parts)
        if resolved is not None and resolved.kind == "class" and not resolved.remainder:
            scope.var_types[target.id] = resolved.qualname
    return scope


# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------


def resolve_method(
    project: Project, class_qualname: str, name: str, _seen: Optional[Set[str]] = None
) -> Optional[str]:
    """Find ``name`` on a class or its project bases; returns fn qualname."""
    seen = _seen if _seen is not None else set()
    if class_qualname in seen:
        return None
    seen.add(class_qualname)
    cls = project.classes.get(class_qualname)
    if cls is None:
        return None
    if name in cls.methods:
        return cls.methods[name]
    for base in cls.resolved_bases:
        found = resolve_method(project, base, name, seen)
        if found is not None:
            return found
    return None


def _resolve_class_member(
    project: Project, class_qualname: str, rest: Tuple[str, ...]
) -> Optional[Resolved]:
    if not rest:
        return Resolved("class", class_qualname, ())
    name, remainder = rest[0], rest[1:]
    method = resolve_method(project, class_qualname, name)
    if method is not None:
        return Resolved("function", method, remainder)
    cls = project.classes.get(class_qualname)
    if cls is not None and name in cls.mutable_attrs:
        return Resolved("global", cls.mutable_attrs[name], remainder)
    if cls is not None and name in cls.attr_types:
        return _resolve_class_member(project, cls.attr_types[name], remainder)
    return Resolved("class", class_qualname, rest)


def lookup_qualified(
    project: Project, parts: Tuple[str, ...], _visited: Optional[Set[Tuple[str, str]]] = None
) -> Optional[Resolved]:
    """Resolve a fully-dotted path against the project's modules."""
    visited = _visited if _visited is not None else set()
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        if module_name in project.modules:
            break
    else:
        return Resolved("external", ".".join(parts), ())
    module = project.modules[module_name]
    rest = parts[cut:]
    if not rest:
        return Resolved("module", module_name, ())
    name, remainder = rest[0], tuple(rest[1:])
    if name in module.top_functions:
        return Resolved("function", module.top_functions[name], remainder)
    if name in module.classes:
        return _resolve_class_member(project, module.classes[name].qualname, remainder)
    if name in module.globals_:
        return Resolved("global", module.name + "." + name, remainder)
    if name in module.imports:
        key = (module_name, name)
        if key in visited:
            return None
        visited.add(key)
        target = tuple(module.imports[name].split(".")) + remainder
        return lookup_qualified(project, target, visited)
    return None


def _resolve_self(
    project: Project, module: ModuleInfo, scope: FunctionScope, parts: Tuple[str, ...]
) -> Optional[Resolved]:
    if len(parts) < 2:
        return None
    class_qualname = module.name + "." + scope.class_name
    cls = project.classes.get(class_qualname)
    if cls is None:
        return None
    name, remainder = parts[1], tuple(parts[2:])
    method = resolve_method(project, class_qualname, name)
    if method is not None:
        return Resolved("function", method, remainder)
    if name in cls.mutable_attrs and name not in cls.init_self_attrs:
        return Resolved("global", cls.mutable_attrs[name], remainder)
    if name in cls.attr_types:
        return _resolve_class_member(project, cls.attr_types[name], remainder)
    return None


def resolve_parts(
    project: Project,
    module: ModuleInfo,
    scope: Optional[FunctionScope],
    parts: Tuple[str, ...],
) -> Optional[Resolved]:
    """What ``parts`` names inside ``module`` (and optionally a function)."""
    if not parts:
        return None
    head = parts[0]
    if scope is not None:
        if head == "self" and scope.class_name:
            return _resolve_self(project, module, scope, parts)
        if head in scope.global_decls:
            return lookup_qualified(project, (module.name,) + parts)
        if head in scope.local_functions:
            return Resolved(
                "function", module.name + "." + scope.local_functions[head], parts[1:]
            )
        if head in scope.var_types:
            return _resolve_class_member(project, scope.var_types[head], parts[1:])
        if head in scope.bound:
            return None
    if head in module.imports:
        target = tuple(module.imports[head].split(".")) + parts[1:]
        return lookup_qualified(project, target)
    if (
        head in module.globals_
        or head in module.top_functions
        or head in module.classes
    ):
        return lookup_qualified(project, (module.name,) + parts)
    return None


# ---------------------------------------------------------------------------
# Parsing and linking
# ---------------------------------------------------------------------------


def _record_imports(module: ModuleInfo, package: str) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    module.imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package.split(".") if package else []
                # level 1 = current package, 2 = parent, ...
                keep = len(base_parts) - (node.level - 1)
                base = ".".join(base_parts[:keep]) if keep > 0 else ""
            else:
                base = node.module or ""
            if node.level and node.module:
                base = base + "." + node.module if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = (base + "." + alias.name) if base else alias.name


def _collect_defs(
    project: Project,
    module: ModuleInfo,
    body: Sequence[ast.stmt],
    prefix: str,
    class_name: str,
    parent: Optional[FunctionInfo],
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_name = prefix + stmt.name if prefix else stmt.name
            qualname = module.name + "." + local_name
            fn = FunctionInfo(
                module=module.name,
                name=local_name,
                qualname=qualname,
                node=stmt,
                lineno=stmt.lineno,
                class_name=class_name,
            )
            project.functions[qualname] = fn
            if not prefix:
                module.top_functions[stmt.name] = qualname
            if class_name and prefix == class_name + ".":
                cls = module.classes.get(class_name)
                if cls is not None and stmt.name not in cls.methods:
                    cls.methods[stmt.name] = qualname
            if parent is not None:
                parent.local_functions[stmt.name] = local_name
            _collect_defs(
                project, module, stmt.body, local_name + ".<locals>.", "", fn
            )
        elif isinstance(stmt, ast.ClassDef):
            local_name = prefix + stmt.name if prefix else stmt.name
            qualname = module.name + "." + local_name
            cls = ClassInfo(
                module=module.name,
                name=local_name,
                qualname=qualname,
                node=stmt,
                base_names=[
                    ".".join(dotted_parts(base))
                    for base in stmt.bases
                    if dotted_parts(base)
                ],
                decorators=[
                    ".".join(dotted_parts(dec.func if isinstance(dec, ast.Call) else dec))
                    for dec in stmt.decorator_list
                    if dotted_parts(dec.func if isinstance(dec, ast.Call) else dec)
                ],
            )
            project.classes[qualname] = cls
            if not prefix:
                module.classes[stmt.name] = cls
            if parent is not None:
                parent.local_classes.add(stmt.name)
            _collect_defs(project, module, stmt.body, local_name + ".", local_name, None)


def _module_globals(module: ModuleInfo) -> None:
    """Record module-level assignments (value nodes kept for classification)."""
    statements: List[ast.stmt] = list(module.tree.body)
    # Also look one level into top-level ``if``/``try`` — conditional
    # constants (version shims) are still module state.
    for stmt in module.tree.body:
        if isinstance(stmt, ast.If):
            statements.extend(stmt.body)
            statements.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            statements.extend(stmt.body)
            for handler in stmt.handlers:
                statements.extend(handler.body)
    for stmt in statements:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for target in targets:
            for name in _target_names(target):
                if name in module.global_values:
                    continue
                module.global_values[name] = value
                module.globals_[name] = GlobalState(
                    qualname=module.name + "." + name,
                    module=module.name,
                    name=name,
                    path=module.path,
                    lineno=stmt.lineno,
                    kind=KIND_OPAQUE,
                    describe="",
                )


def _render_value(value: ast.expr) -> str:
    try:
        text = ast.unparse(value)
    except ValueError:  # pragma: no cover - malformed synthetic node
        return ""
    return text if len(text) <= 60 else text[:57] + "..."


def _class_is_immutable(cls: ClassInfo) -> bool:
    if any(dec.split(".")[-1] == "dataclass" for dec in cls.decorators):
        for dec in cls.node.decorator_list:
            if isinstance(dec, ast.Call):
                for keyword in dec.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        return False
    if cls.has_empty_slots:
        return True
    return any(base.split(".")[-1] in ("NamedTuple", "Enum", "IntEnum") for base in cls.base_names)


def classify_value(
    project: Project, module: ModuleInfo, value: ast.expr
) -> Tuple[str, str]:
    """(kind, singleton class qualname) for one bound value expression."""
    if isinstance(value, ast.Constant):
        return KIND_IMMUTABLE, ""
    if isinstance(value, ast.Tuple):
        kinds = [classify_value(project, module, e)[0] for e in value.elts]
        if any(kind in (KIND_CONTAINER, KIND_SINGLETON) for kind in kinds):
            return KIND_OPAQUE, ""
        return KIND_IMMUTABLE, ""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return KIND_CONTAINER, ""
    if isinstance(value, ast.UnaryOp):
        return classify_value(project, module, value.operand)
    if isinstance(value, ast.BinOp):
        left = classify_value(project, module, value.left)[0]
        right = classify_value(project, module, value.right)[0]
        if KIND_CONTAINER in (left, right):
            return KIND_CONTAINER, ""
        if KIND_IMMUTABLE == left == right:
            return KIND_IMMUTABLE, ""
        return KIND_OPAQUE, ""
    if isinstance(value, ast.IfExp):
        body = classify_value(project, module, value.body)
        orelse = classify_value(project, module, value.orelse)
        for candidate in (body, orelse):
            if candidate[0] != KIND_IMMUTABLE:
                return candidate
        return KIND_IMMUTABLE, ""
    if isinstance(value, ast.Call):
        parts = dotted_parts(value.func)
        if not parts:
            return KIND_OPAQUE, ""
        dotted = ".".join(parts)
        resolved = resolve_parts(project, module, None, parts)
        candidates = {dotted, parts[-1]}
        if resolved is not None:
            candidates.add(resolved.qualname)
            candidates.add(resolved.qualname.split(".")[-1])
        if candidates & _SCOPED_FACTORIES:
            return KIND_SCOPED, ""
        if candidates & _MUTABLE_FACTORIES:
            return KIND_CONTAINER, ""
        if candidates & _IMMUTABLE_FACTORIES:
            return KIND_IMMUTABLE, ""
        if resolved is not None and resolved.kind == "class" and not resolved.remainder:
            cls = project.classes.get(resolved.qualname)
            if cls is not None and _class_is_immutable(cls):
                return KIND_IMMUTABLE, resolved.qualname
            return KIND_SINGLETON, resolved.qualname
        return KIND_OPAQUE, ""
    return KIND_OPAQUE, ""


def _link_classes(project: Project) -> None:
    for cls in project.classes.values():
        module = project.modules[cls.module]
        for base in cls.base_names:
            resolved = resolve_parts(project, module, None, tuple(base.split(".")))
            if resolved is not None and resolved.kind == "class":
                cls.resolved_bases.append(resolved.qualname)
        for stmt in cls.node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    if isinstance(stmt.value, (ast.Tuple, ast.List)) and not stmt.value.elts:
                        cls.has_empty_slots = True
        init = cls.methods.get("__init__")
        if init is None:
            continue
        init_fn = project.functions[init]
        for node in scoped_walk(scope_roots(init_fn)):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.init_self_attrs.add(target.attr)
                    if isinstance(node.value, ast.Call):
                        parts = dotted_parts(node.value.func)
                        resolved = (
                            resolve_parts(project, module, None, parts) if parts else None
                        )
                        if (
                            resolved is not None
                            and resolved.kind == "class"
                            and not resolved.remainder
                        ):
                            cls.attr_types[target.attr] = resolved.qualname


def _classify_globals(project: Project) -> None:
    for module in project.modules.values():
        for name, state in module.globals_.items():
            value = module.global_values.get(name)
            if value is None:
                continue
            kind, class_qualname = classify_value(project, module, value)
            state.kind = kind
            state.class_qualname = class_qualname
            state.describe = _render_value(value)
        # Shared class-level mutable attributes: ``class C: cache = {}``.
        for cls in module.classes.values():
            for stmt in cls.node.body:
                targets: List[ast.expr] = []
                value2: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value2 = list(stmt.targets), stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value2 = [stmt.target], stmt.value
                if value2 is None:
                    continue
                kind, class_qualname = classify_value(project, module, value2)
                if kind not in (KIND_CONTAINER, KIND_SINGLETON):
                    continue
                for target in targets:
                    for attr in _target_names(target):
                        if attr == "__slots__" or attr in cls.init_self_attrs:
                            continue
                        qualname = cls.qualname + "." + attr
                        cls.mutable_attrs[attr] = qualname
                        project.globals_[qualname] = GlobalState(
                            qualname=qualname,
                            module=module.name,
                            name=cls.name + "." + attr,
                            path=module.path,
                            lineno=stmt.lineno,
                            kind=kind,
                            describe=_render_value(value2),
                            class_qualname=class_qualname,
                        )
        for state in module.globals_.values():
            project.globals_[state.qualname] = state


def _ensure_declared_globals(project: Project) -> None:
    """``global X`` in a function with no module-level binding still names
    module state — register it so writes are attributable."""
    for fn in list(project.functions.values()):
        if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        module = project.modules[fn.module]
        for node in scoped_walk(scope_roots(fn)):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name not in module.globals_:
                        state = GlobalState(
                            qualname=module.name + "." + name,
                            module=module.name,
                            name=name,
                            path=module.path,
                            lineno=fn.lineno,
                            kind=KIND_OPAQUE,
                            describe="bound only inside %s" % fn.name,
                        )
                        module.globals_[name] = state
                        project.globals_[state.qualname] = state


def parse_module(project: Project, file_path: Path, root: Path) -> Optional[ModuleInfo]:
    """Parse one file into the project; None when it does not parse."""
    try:
        rel = file_path.relative_to(root)
    except ValueError:
        rel = file_path
    source = file_path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file_path))
    except SyntaxError:
        return None
    name = module_name_for(rel)
    module = ModuleInfo(
        name=name, path=rel.as_posix(), tree=tree, lines=source.splitlines()
    )
    package = name if rel.name == "__init__.py" else name.rpartition(".")[0]
    _record_imports(module, package)
    module_fn = FunctionInfo(
        module=name,
        name=MODULE_FUNCTION,
        qualname=name + "." + MODULE_FUNCTION,
        node=tree,
        lineno=1,
    )
    project.functions[module_fn.qualname] = module_fn
    _collect_defs(project, module, tree.body, "", "", module_fn)
    _module_globals(module)
    project.modules[name] = module
    return module


def build_project(paths: Iterable[Path], root: Path) -> Project:
    """Parse and link every Python file under ``paths`` into one model."""
    from repro.analysis.linter import iter_python_files

    project = Project(root=root)
    for file_path in iter_python_files(paths):
        parse_module(project, file_path, root)
    _link_classes(project)
    _classify_globals(project)
    _ensure_declared_globals(project)
    return project
