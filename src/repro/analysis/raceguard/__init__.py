"""raceguard: whole-program context-safety analysis for the worker plane.

PR 8 moved the simulator's process-global state into
:class:`repro.simcontext.SimContext`, which is what lets the experiment
service run N workers in one process.  That contract — *no module-level
mutable state reachable from concurrent code* — was only a convention;
this package machine-checks it:

1. :func:`~repro.analysis.raceguard.model.build_project` parses the tree
   into a linked model (imports, classes, module globals classified by a
   mutability heuristic);
2. :func:`~repro.analysis.raceguard.facts.compute_facts` extracts each
   function's global accesses, mutations, resolved call/callback edges
   and concurrency spawns;
3. :func:`~repro.analysis.raceguard.callgraph.build_call_graph` computes
   reachability from the concurrent entry points (service worker slots,
   ``--worker-processes`` child main, process-pool workers, load-test
   threads);
4. the C401–C405 rules in :mod:`repro.analysis.raceguard.rules` turn the
   result into ordinary :class:`Violation` records, so ``# lint-ok:``
   suppressions and the lint baseline apply unchanged.

Run it via ``tools/lint_repro.py --concurrency`` (add
``--call-graph-out`` to dump the graph + global inventory as JSON).  The
dynamic counterpart is ``Sanitizer.check_context_owner`` — under
``REPRO_SANITIZE=1`` the memo/registry mutation sites assert the mutating
thread's active context owns the container being mutated.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.linter import _suppressions
from repro.analysis.raceguard.callgraph import (
    CallGraph,
    build_call_graph,
    call_graph_payload,
)
from repro.analysis.raceguard.facts import FunctionFacts, compute_facts
from repro.analysis.raceguard.model import Project, build_project
from repro.analysis.raceguard.rules import (
    CONCURRENCY_RULES,
    ConcurrencyRule,
    check_all,
    concurrency_catalogue,
)
from repro.analysis.rules.base import Violation

__all__ = [
    "CONCURRENCY_RULES",
    "CallGraph",
    "ConcurrencyReport",
    "ConcurrencyRule",
    "FunctionFacts",
    "Project",
    "analyze_paths",
    "build_call_graph",
    "build_project",
    "compute_facts",
    "concurrency_catalogue",
]


class ConcurrencyReport:
    """The outcome of one whole-program pass: violations + the graph."""

    __slots__ = ("project", "facts", "graph", "violations", "flagged_globals")

    def __init__(
        self,
        project: Project,
        facts: Dict[str, FunctionFacts],
        graph: CallGraph,
        violations: List[Violation],
        flagged_globals: Set[str],
    ) -> None:
        self.project = project
        self.facts = facts
        self.graph = graph
        self.violations = violations
        self.flagged_globals = flagged_globals

    def payload(self) -> Dict[str, object]:
        """JSON-ready call graph + inventory (``--call-graph-out``)."""
        return call_graph_payload(
            self.project, self.facts, self.graph, self.flagged_globals
        )


def _apply_suppressions(
    project: Project, violations: Iterable[Violation]
) -> List[Violation]:
    per_file: Dict[str, Dict[int, Set[str]]] = {}
    for module in project.modules.values():
        per_file[module.path] = _suppressions(module.lines)
    kept: List[Violation] = []
    for violation in violations:
        suppressed = per_file.get(violation.path, {})
        if violation.rule_id in suppressed.get(violation.line, ()):
            continue
        kept.append(violation)
    return kept


def analyze_project(project: Project) -> ConcurrencyReport:
    """Run the C4xx pass over an already-built project model."""
    facts = compute_facts(project)
    graph = build_call_graph(project, facts)
    violations, flagged = check_all(project, facts, graph)
    violations = _apply_suppressions(project, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return ConcurrencyReport(project, facts, graph, violations, flagged)


def analyze_paths(
    paths: Iterable[Path], root: Optional[Path] = None
) -> ConcurrencyReport:
    """Build the model for ``paths`` and run the whole-program pass.

    ``root`` anchors reported paths and module names (``src/`` is
    stripped, so ``src/repro/...`` analyses as the ``repro`` package and
    ``tools/*.py`` as ``tools.*`` modules whose ``repro`` imports resolve
    into the same model).
    """
    path_list: List[Path] = [Path(p) for p in paths]
    anchor = root if root is not None else Path.cwd()
    project = build_project(path_list, anchor)
    return analyze_project(project)
