"""The C4xx concurrency rule family: facts + reachability -> Violations.

These are *whole-program* rules — unlike the per-file D/P/H series they
need the project model, so they live here rather than in
``repro.analysis.rules``.  They emit the same :class:`Violation` records
the engine already understands: per-line ``# lint-ok: C40x reason``
suppressions and the line-drift-insensitive baseline work unchanged.

* **C401** — a mutable module global (container, project-class singleton,
  or unclassifiable value) is *mutated somewhere* and *accessed by a
  function reachable from a concurrent entry point*.  The fix is scoping
  the state into :class:`repro.simcontext.SimContext`; intentionally
  process-wide state carries a suppression naming why it is safe.
* **C402** — a write to a module global outside its module-level binding
  site (``global X`` rebind, subscript/attribute store, aug-assign,
  ``del``).  Reported at the write, concurrent or not: every such write
  is a latent race once the caller moves onto a worker.
* **C403** — a ``SimContext``-owned container (memo, registry stack,
  words-hint) escapes its scope: returned from a function or stored into
  a module global.  Context state outliving its context is exactly the
  cross-worker sharing contexts exist to prevent.
* **C404** — a context accessor (``current_context``, ``get_registry``,
  ``current_stats``, …, or ``ContextVar.get``) called at import time:
  the importing thread's context gets frozen into module scope for every
  future context.
* **C405** — lock-free check-then-act (``if <reads G>: <mutates G>``) on
  a module global inside a concurrently-reachable function: the classic
  lost-update/double-init race shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.raceguard.callgraph import CallGraph, describe_entry
from repro.analysis.raceguard.facts import FunctionFacts
from repro.analysis.raceguard.model import (
    KIND_SCOPED,
    MODULE_FUNCTION,
    MUTABLE_KINDS,
    Project,
)
from repro.analysis.rules.base import Violation


@dataclass(frozen=True)
class ConcurrencyRule:
    """Catalogue entry for one whole-program rule (no per-file check)."""

    rule_id: str
    title: str
    rationale: str


CONCURRENCY_RULES: Tuple[ConcurrencyRule, ...] = (
    ConcurrencyRule(
        "C401",
        "unscoped mutable global reachable from a concurrent entry point",
        "Mutable module state touched by worker-reachable code races across "
        "scopes; own it on SimContext (or justify why process-wide is safe).",
    ),
    ConcurrencyRule(
        "C402",
        "write to module global outside its module-level binding site",
        "Function-level writes to module globals are latent races and break "
        "scope isolation; prefer SimContext attributes or justify the write.",
    ),
    ConcurrencyRule(
        "C403",
        "SimContext-owned value escaping its scope",
        "A memo/registry returned or stored into module scope outlives its "
        "context and leaks one worker's state into another.",
    ),
    ConcurrencyRule(
        "C404",
        "context accessor called at import time",
        "Import-time context resolution freezes the importing thread's "
        "context into module scope for every future context.",
    ),
    ConcurrencyRule(
        "C405",
        "lock-free check-then-act on shared state",
        "`if <reads G>: <mutates G>` without a lock in worker-reachable code "
        "is the classic double-init/lost-update race shape.",
    ),
)


def concurrency_catalogue() -> Dict[str, ConcurrencyRule]:
    """Map rule id -> rule, in registration order (CLI ``--list-rules``)."""
    return {rule.rule_id: rule for rule in CONCURRENCY_RULES}


def _violation(
    project: Project, rule_id: str, path: str, lineno: int, message: str
) -> Violation:
    line_text = ""
    for module in project.modules.values():
        if module.path == path:
            line_text = module.line_text(lineno)
            break
    return Violation(
        rule_id=rule_id, path=path, line=lineno, message=message, line_text=line_text
    )


def check_c401(
    project: Project, facts: Dict[str, FunctionFacts], graph: CallGraph
) -> Tuple[List[Violation], Set[str]]:
    """Unscoped mutable globals in the concurrent region.

    Returns the violations plus the set of flagged global qualnames (the
    call-graph artifact marks them ``concurrent``).
    """
    readers: Dict[str, Set[str]] = {}
    mutators: Dict[str, Set[str]] = {}
    for function_facts in facts.values():
        if function_facts.function.endswith("." + MODULE_FUNCTION):
            continue
        for qualname in function_facts.reads:
            readers.setdefault(qualname, set()).add(function_facts.function)
        for mutation in function_facts.mutations:
            mutators.setdefault(mutation.target, set()).add(mutation.function)
    violations: List[Violation] = []
    flagged: Set[str] = set()
    for qualname in sorted(project.globals_):
        state = project.globals_[qualname]
        if state.kind not in MUTABLE_KINDS:
            continue
        mutating = mutators.get(qualname, set())
        if not mutating:
            continue  # written only at import time: effectively a constant
        accessors = readers.get(qualname, set()) | mutating
        concurrent = sorted(fn for fn in accessors if graph.is_concurrent(fn))
        if not concurrent:
            continue
        flagged.add(qualname)
        witness = concurrent[0]
        spawn = graph.reachable[witness]
        chain = " -> ".join(graph.chain(witness))
        mutation_site = sorted(mutating)[0]
        violations.append(
            _violation(
                project,
                "C401",
                state.path,
                state.lineno,
                "mutable global '%s' (%s) is mutated by %s and reachable "
                "from concurrent entry %s via %s; scope it into SimContext"
                % (
                    state.name,
                    state.kind,
                    mutation_site,
                    describe_entry(spawn),
                    chain,
                ),
            )
        )
    return violations, flagged


def check_c402(
    project: Project, facts: Dict[str, FunctionFacts]
) -> List[Violation]:
    violations: List[Violation] = []
    for function_facts in facts.values():
        for mutation in function_facts.mutations:
            if mutation.kind == "call":
                continue  # method-call mutation is C401's evidence, not a write
            state = project.globals_.get(mutation.target)
            if state is None or state.kind == KIND_SCOPED:
                continue
            violations.append(
                _violation(
                    project,
                    "C402",
                    mutation.path,
                    mutation.lineno,
                    "%s writes module global '%s' (%s) outside its "
                    "module-level binding site"
                    % (mutation.function, state.name, mutation.kind),
                )
            )
    return violations


def check_c403(project: Project, facts: Dict[str, FunctionFacts]) -> List[Violation]:
    violations: List[Violation] = []
    for function_facts in facts.values():
        for escape in function_facts.escapes:
            violations.append(
                _violation(
                    project,
                    "C403",
                    escape.path,
                    escape.lineno,
                    "%s lets the SimContext-owned '%s' escape its scope (%s)"
                    % (escape.function, escape.attr, escape.how),
                )
            )
    return violations


def check_c404(project: Project, facts: Dict[str, FunctionFacts]) -> List[Violation]:
    violations: List[Violation] = []
    for function_facts in facts.values():
        for access in function_facts.import_time:
            violations.append(
                _violation(
                    project,
                    "C404",
                    access.path,
                    access.lineno,
                    "import-time call of context accessor %s binds the "
                    "importing thread's context into module scope"
                    % access.accessor,
                )
            )
    return violations


def check_c405(
    project: Project, facts: Dict[str, FunctionFacts], graph: CallGraph
) -> List[Violation]:
    violations: List[Violation] = []
    for function_facts in facts.values():
        if not graph.is_concurrent(function_facts.function):
            continue
        for candidate in function_facts.check_then_act:
            state = project.globals_.get(candidate.target)
            if state is None or state.kind == KIND_SCOPED:
                continue
            violations.append(
                _violation(
                    project,
                    "C405",
                    candidate.path,
                    candidate.lineno,
                    "%s checks then mutates module global '%s' without a "
                    "lock in concurrently-reachable code"
                    % (candidate.function, state.name),
                )
            )
    return violations


def check_all(
    project: Project, facts: Dict[str, FunctionFacts], graph: CallGraph
) -> Tuple[List[Violation], Set[str]]:
    """Every C4xx violation (unsorted, unsuppressed) + flagged globals."""
    violations, flagged = check_c401(project, facts, graph)
    violations.extend(check_c402(project, facts))
    violations.extend(check_c403(project, facts))
    violations.extend(check_c404(project, facts))
    violations.extend(check_c405(project, facts, graph))
    return violations, flagged
