"""Shared rule infrastructure: file context, violation record, base class."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class Violation:
    """One finding: a rule tripped at a specific line of a specific file."""

    rule_id: str
    path: str
    line: int
    message: str
    line_text: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-insensitive identity used by the baseline file.

        Keyed on (rule, path, stripped source text) so unrelated edits that
        shift line numbers do not invalidate baselined entries.
        """

        return (self.rule_id, self.path, self.line_text.strip())


@dataclass
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Path components, posix-normalised (``src/repro/dram/bank.py`` →
        ``("src", "repro", "dram", "bank.py")``)."""

        return tuple(self.path.replace("\\", "/").split("/"))

    def in_package(self, *names: str) -> bool:
        """True if the file lives under any of the given package dirs."""

        parts = self.package_parts
        return any(name in parts[:-1] for name in names)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.  Subclasses set the class attributes and
    implement :meth:`check`."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        lineno = getattr(node, "lineno", 0)
        return Violation(
            rule_id=self.rule_id,
            path=ctx.path,
            line=lineno,
            message=message,
            line_text=ctx.line_text(lineno),
        )


def walk_loop_bodies(node: ast.AST) -> Iterator[ast.AST]:
    """Yield every AST node that executes inside a ``for``/``while`` body
    (nested loops deduplicated), skipping function/class definitions nested
    *inside* the loop body — code in a nested ``def`` runs when the function
    is called, not per iteration, and that def is analysed on its own."""

    seen = set()
    for loop in ast.walk(node):
        if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
            continue
        for stmt in loop.body:
            for sub in _walk_in_loop(stmt):
                if id(sub) not in seen:
                    seen.add(id(sub))
                    yield sub


def _walk_in_loop(node: ast.AST) -> Iterator[ast.AST]:
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield from _walk_in_loop(child)


def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains; '' when not a plain chain."""

    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
