"""P-series rules: hot-path discipline.

PR 3 bought a 2.49x grid speedup by fixing the shape of per-event code:
``__slots__`` on every object allocated or touched per simulated event,
attribute sets frozen at ``__init__``, and telemetry deferred to plain
integer accumulators that are reconciled at snapshot time.  These rules
keep that shape from regressing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.rules.base import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    walk_loop_bodies,
)

#: Packages whose classes live on per-event paths.
HOT_PACKAGES = ("dram", "cpu", "cache", "secure", "telemetry")

_INIT_METHODS = ("__init__", "__post_init__", "__init_subclass__")


def _decorator_names(node: ast.ClassDef) -> List[str]:
    names = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.append(name)
    return names


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        name = dotted_name(base)
        if name:
            names.append(name)
    return names


def _is_exempt_class(node: ast.ClassDef) -> bool:
    """Dataclasses manage their own layout (slots=True where hot), and
    enums / exceptions / protocols / ABCs are not event-path objects."""

    for name in _decorator_names(node):
        if "dataclass" in name:
            return True
    for base in _base_names(node):
        tail = base.split(".")[-1]
        if tail in ("Protocol", "ABC", "Generic", "NamedTuple", "TypedDict"):
            return True
        if tail.endswith("Enum") or tail in ("Enum", "Flag", "IntFlag"):
            return True
        if tail.endswith(("Error", "Exception", "Warning")):
            return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class MissingSlotsRule(Rule):
    rule_id = "P201"
    title = "hot-path class without __slots__"
    rationale = (
        "Instances in dram/cpu/cache/secure/telemetry are created or "
        "traversed per simulated event; a __dict__ per instance costs "
        "memory and attribute-lookup time and allows typo'd attributes."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_package(*HOT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt_class(node) or _declares_slots(node):
                continue
            yield self.violation(
                ctx, node, f"class {node.name} in a hot package lacks __slots__"
            )


def _slots_entries(node: ast.ClassDef) -> Set[str]:
    entries: Set[str] = set()
    for stmt in node.body:
        value = None
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets):
                value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                value = stmt.value
        if value is None:
            continue
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    entries.add(elt.value)
        elif isinstance(value, ast.Constant) and isinstance(value.value, str):
            entries.add(value.value)
    return entries


def _class_level_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _self_attr_writes(fn: ast.AST, self_name: str) -> Iterator[ast.Attribute]:
    for node in ast.walk(fn):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                yield target


class AttrOutsideInitRule(Rule):
    rule_id = "P202"
    title = "attribute created outside __init__"
    rationale = (
        "Hot-path objects must have a fixed layout: every attribute is "
        "declared in __init__ (or __slots__/class level), so later methods "
        "only ever rebind — creating attributes mid-flight defeats slots "
        "and hides state the replay tests cannot see."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_package(*HOT_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt_class(node):
                continue
            allowed = _slots_entries(node) | _class_level_names(node)
            methods = [
                stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            for method in methods:
                if method.name in _INIT_METHODS and method.args.args:
                    self_name = method.args.args[0].arg
                    for attr in _self_attr_writes(method, self_name):
                        allowed.add(attr.attr)
            for method in methods:
                if method.name in _INIT_METHODS or not method.args.args:
                    continue
                self_name = method.args.args[0].arg
                for attr in _self_attr_writes(method, self_name):
                    if attr.attr not in allowed:
                        yield self.violation(
                            ctx,
                            attr,
                            f"attribute self.{attr.attr} first assigned in "
                            f"{node.name}.{method.name}(), not __init__",
                        )


#: Telemetry lookups that must not run per loop iteration.  The deferred
#: pattern (PR 3) binds the registry/tracer once in __init__ or before the
#: loop and bumps plain ints inside it.
_TELEMETRY_LOOKUPS = {"get_registry", "get_tracer"}


class TelemetryInLoopRule(Rule):
    rule_id = "P203"
    title = "telemetry lookup inside an inner loop"
    rationale = (
        "get_registry()/get_tracer() inside a per-event loop re-resolves "
        "telemetry every iteration; bind it once outside the loop and use "
        "the deferred-accumulator pattern (plain ints reconciled in "
        "sync_telemetry/record_telemetry)."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in walk_loop_bodies(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name.split(".")[-1] in _TELEMETRY_LOOKUPS:
                yield self.violation(
                    ctx,
                    node,
                    f"{name}() called inside a loop body; bind it before the loop",
                )


#: ``Generator`` methods that return arrays: names assigned from e.g.
#: ``rng.poisson(...)`` are treated as numpy arrays even though the call's
#: dotted prefix is not ``np.``.
_ARRAY_PRODUCER_METHODS = {
    "poisson",
    "binomial",
    "integers",
    "normal",
    "choice",
    "permutation",
    "astype",
}


def _numpy_array_names(tree: ast.AST) -> Set[str]:
    """Names assigned (anywhere in the file) from a numpy-producing call.

    Purely syntactic: ``x = np.<anything>(...)`` / ``numpy.<...>(...)``,
    or ``x = <obj>.<producer>(...)`` for the known array-returning
    Generator/ndarray methods. False negatives are fine (the rule is a
    tripwire, not a type checker); false positives are handled with a
    ``lint-ok`` justification.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        name = dotted_name(node.value.func)
        parts = name.split(".")
        if not (
            parts[0] in ("np", "numpy") or parts[-1] in _ARRAY_PRODUCER_METHODS
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class AdHocProcessPoolRule(Rule):
    rule_id = "P205"
    title = "ProcessPoolExecutor constructed outside repro.parallel"
    rationale = (
        "PR 10 made repro.parallel.pool the one owner of worker "
        "processes: a pool constructed anywhere else pays spawn + module "
        "re-import per call (the cost the persistent pool amortises), "
        "escapes the fork-safety and shutdown bookkeeping, and its cells "
        "bypass ExecutionStats. Fan out through parallel_map, or the "
        "ephemeral pool_policy if a cold pool is genuinely required."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_package("parallel"):
            return  # the pool module and the ephemeral baseline live here
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name.split(".")[-1] == "ProcessPoolExecutor":
                yield self.violation(
                    ctx,
                    node,
                    "ProcessPoolExecutor constructed outside repro.parallel; "
                    "use parallel_map (persistent pool) instead",
                )


class PerElementExtractionRule(Rule):
    rule_id = "P204"
    title = "per-element scalar extraction from a numpy array in a loop"
    rationale = (
        "Pulling scalars out of a numpy array one element at a time "
        "(.item()/.tolist() per iteration, int()/float() around a "
        "subscript) pays the array-scalar boxing cost per event — the "
        "exact overhead the columnar batches exist to avoid. Convert the "
        "whole array once with .tolist() before the loop, or keep the "
        "computation in the array domain."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        array_names = _numpy_array_names(ctx.tree)
        for node in walk_loop_bodies(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("item", "tolist"):
                yield self.violation(
                    ctx,
                    node,
                    f".{func.attr}() inside a loop body; convert the array "
                    "once before the loop",
                )
                continue
            # int(arr[i]) / float(arr[i]) over a name bound from a numpy
            # producer: per-element unboxing in the loop.
            if (
                isinstance(func, ast.Name)
                and func.id in ("int", "float")
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Subscript)
            ):
                base = node.args[0].value
                if isinstance(base, ast.Name) and base.id in array_names:
                    yield self.violation(
                        ctx,
                        node,
                        f"{func.id}({base.id}[...]) inside a loop body "
                        "extracts numpy scalars per element; use "
                        f"{base.id}.tolist() once before the loop",
                    )
