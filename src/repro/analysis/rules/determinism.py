"""D-series rules: bit-identical determinism.

The repo's replay guarantees (PR 1 sharded RNG streams, PR 3 golden
bit-identity tests) hold only if no simulation code reaches for ambient
entropy or order-unstable iteration.  These rules make that mechanical.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.rules.base import FileContext, Rule, Violation, dotted_name

#: The one module allowed to touch ``random`` directly: it is the blessed
#: wrapper every simulation component derives its streams from.
RNG_WRAPPER_SUFFIX = ("repro", "util", "rng.py")

#: Wall-clock reads that feed results.  ``time.perf_counter``/
#: ``time.monotonic`` are allowed: they only ever feed *timing reports*
#: (ExecutionStats, bench snapshots), never simulated state.
_BANNED_CALLS = {
    "time.time": "wall-clock time.time() (use time.perf_counter for timing reports)",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.today": "datetime.today()",
    "datetime.datetime.now": "datetime.datetime.now()",
    "datetime.datetime.utcnow": "datetime.datetime.utcnow()",
    "date.today": "date.today()",
    "datetime.date.today": "datetime.date.today()",
    "os.urandom": "os.urandom()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
}

_BANNED_MODULES = {"random", "secrets"}

#: numpy RNG entry points that draw from global, unseeded state.
_NP_GLOBAL_RANDOM = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "uniform",
    "normal",
    "binomial",
    "poisson",
}


class AmbientNondeterminismRule(Rule):
    rule_id = "D101"
    title = "ambient nondeterminism"
    rationale = (
        "All randomness must flow through repro.util.rng so runs replay "
        "bit-identically from (seed, shard_id); wall-clock and global RNG "
        "state silently break the run cache and golden tests."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.package_parts[-3:] == RNG_WRAPPER_SUFFIX:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.violation(
                            ctx, node, f"import of '{alias.name}' outside repro.util.rng"
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.violation(
                        ctx, node, f"import from '{node.module}' outside repro.util.rng"
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if not name:
                    continue
                if name in _BANNED_CALLS:
                    yield self.violation(ctx, node, f"call to {_BANNED_CALLS[name]}")
                    continue
                parts = name.split(".")
                # random.random() / random.shuffle() / ... on the stdlib module.
                if parts[0] == "random" and len(parts) == 2:
                    yield self.violation(ctx, node, f"call to stdlib random.{parts[1]}()")
                # np.random.<draw>() uses hidden global state; np.random.default_rng()
                # with no seed argument is equally ambient.  Seeded default_rng(s) is
                # the approved numpy path (reliability.montecarlo).
                elif len(parts) >= 3 and parts[-2] == "random" and parts[0] in ("np", "numpy"):
                    attr = parts[-1]
                    if attr in _NP_GLOBAL_RANDOM:
                        yield self.violation(ctx, node, f"numpy global RNG call {name}()")
                    elif attr == "default_rng" and not (node.args or node.keywords):
                        yield self.violation(
                            ctx, node, "numpy default_rng() without an explicit seed"
                        )


def _is_set_producer(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


class UnorderedIterationRule(Rule):
    rule_id = "D102"
    title = "iteration over unordered set"
    rationale = (
        "Iterating a set yields hash order, which varies across processes "
        "(PYTHONHASHSEED) and feeds result-affecting order into schedulers "
        "and aggregation; iterate a sorted() or list view instead.  Dicts "
        "are insertion-ordered and exempt."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_producer(it):
                    yield self.violation(
                        ctx, it, "iteration directly over a set (hash order); sort it first"
                    )


_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
    "collections.deque",
    "collections.defaultdict",
    "collections.Counter",
    "collections.OrderedDict",
}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _MUTABLE_FACTORIES
    return False


class MutableDefaultRule(Rule):
    rule_id = "D103"
    title = "mutable default argument"
    rationale = (
        "A mutable default is shared across every call of the function, so "
        "state leaks between runs and cells; default to None and construct "
        "inside the body."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); use None",
                    )


def _has_float_literal(node: ast.Compare) -> bool:
    operands = [node.left] + list(node.comparators)
    for operand in operands:
        if isinstance(operand, ast.Constant) and isinstance(operand.value, float):
            return True
        if (
            isinstance(operand, ast.UnaryOp)
            and isinstance(operand.operand, ast.Constant)
            and isinstance(operand.operand.value, float)
        ):
            return True
    return False


class FloatEqualityRule(Rule):
    rule_id = "D104"
    title = "float equality in crypto/ecc"
    rationale = (
        "crypto and ecc operate on exact bit patterns; a float literal in "
        "an equality there almost always means a lost integer invariant "
        "(use integers or math.isclose elsewhere)."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_package("crypto", "ecc"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            if _has_float_literal(node):
                yield self.violation(
                    ctx, node, "float-literal equality comparison in exact-bit code"
                )
