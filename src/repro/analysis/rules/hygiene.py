"""H-series rules: general hygiene."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.rules.base import FileContext, Rule, Violation

_BROAD_NAMES = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        if isinstance(t, ast.Name) and t.id in _BROAD_NAMES:
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


class BroadExceptRule(Rule):
    rule_id = "H301"
    title = "broad exception handler"
    rationale = (
        "A bare/Exception handler that never re-raises swallows "
        "KeyboardInterrupt-adjacent failures and corrupts survey results "
        "silently; catch the specific types, or re-raise on the broad path."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _reraises(node):
                shown = "bare except" if node.type is None else "broad except"
                yield self.violation(
                    ctx, node, f"{shown} without re-raise; narrow it or re-raise"
                )


#: Builtins worth protecting: ones that plausibly appear as variable names
#: in simulator code and whose shadowing causes confusing failures.
_GUARDED_BUILTINS: Set[str] = {
    "all",
    "any",
    "bytes",
    "dict",
    "filter",
    "format",
    "hash",
    "id",
    "input",
    "len",
    "list",
    "map",
    "max",
    "min",
    "next",
    "object",
    "range",
    "set",
    "sum",
    "type",
    "vars",
    "zip",
}


class ShadowedBuiltinRule(Rule):
    rule_id = "H302"
    title = "shadowed builtin"
    rationale = (
        "Rebinding a builtin (e.g. a parameter named 'hash' or a local "
        "named 'next') breaks later uses in the same scope and reads "
        "ambiguously in review."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                all_args = (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + [a for a in (args.vararg, args.kwarg) if a is not None]
                )
                for arg in all_args:
                    if arg.arg in _GUARDED_BUILTINS:
                        yield self.violation(
                            ctx,
                            arg,
                            f"parameter '{arg.arg}' of {node.name}() shadows a builtin",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for name in names:
                        if isinstance(name, ast.Name) and name.id in _GUARDED_BUILTINS:
                            yield self.violation(
                                ctx,
                                name,
                                f"assignment to '{name.id}' shadows a builtin",
                            )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = (
                    node.target.elts
                    if isinstance(node.target, (ast.Tuple, ast.List))
                    else [node.target]
                )
                for name in targets:
                    if isinstance(name, ast.Name) and name.id in _GUARDED_BUILTINS:
                        yield self.violation(
                            ctx,
                            name,
                            f"loop variable '{name.id}' shadows a builtin",
                        )
