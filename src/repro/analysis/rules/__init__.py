"""Rule registry for the repro linter.

Each rule is a callable object with a ``rule_id`` (``D101`` …), a short
``title``, a ``rationale`` sentence, and a ``check(ctx)`` generator that
yields :class:`repro.analysis.linter.Violation` records for one parsed
file.  Rules are pure AST analyses — no imports of the code under test.

Series:

* ``D`` (determinism) — bit-identical replay is the repo's core promise;
  these rules ban ambient nondeterminism outside ``repro.util.rng``.
* ``P`` (hot path) — per-event code must keep the PR 3 shape: ``__slots__``
  on event-path classes, attributes fixed in ``__init__``, telemetry
  deferred out of inner loops.
* ``H`` (hygiene) — broad exception handlers and shadowed builtins.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.rules.determinism import (
    AmbientNondeterminismRule,
    FloatEqualityRule,
    MutableDefaultRule,
    UnorderedIterationRule,
)
from repro.analysis.rules.hotpath import (
    AdHocProcessPoolRule,
    AttrOutsideInitRule,
    MissingSlotsRule,
    PerElementExtractionRule,
    TelemetryInLoopRule,
)
from repro.analysis.rules.hygiene import BroadExceptRule, ShadowedBuiltinRule
from repro.analysis.rules.base import FileContext, Rule

ALL_RULES: Tuple[Rule, ...] = (
    AmbientNondeterminismRule(),
    UnorderedIterationRule(),
    MutableDefaultRule(),
    FloatEqualityRule(),
    MissingSlotsRule(),
    AttrOutsideInitRule(),
    TelemetryInLoopRule(),
    PerElementExtractionRule(),
    AdHocProcessPoolRule(),
    BroadExceptRule(),
    ShadowedBuiltinRule(),
)


def rule_catalogue() -> Dict[str, Rule]:
    """Map rule id -> rule instance, in registration order."""

    return {rule.rule_id: rule for rule in ALL_RULES}


__all__ = ["ALL_RULES", "FileContext", "Rule", "rule_catalogue"]
