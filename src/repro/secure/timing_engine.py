"""Per-design metadata traffic expansion (the timing-plane secure engine).

For every LLC data miss or writeback, the engine consults the design
descriptor and the cache hierarchy and emits the memory requests the design
would need: counter fetches with a tree walk, MAC fetches (or none, for
Synergy), parity updates, plus writebacks of evicted dirty metadata. The
read path returns the set of requests whose completion gates the data
(verification needs data + counter chain + MAC).

This is where the paper's central performance claim becomes mechanical:
SGX_O pays a MAC access per data access; Synergy does not, because the MAC
rides the ECC chip. Everything else (counter caching in LLC, tree walks,
split counters, IVEC's MAC tree, LOT-ECC parity RMW) is configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.sanitizer import get_sanitizer
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.setassoc import ABSENT
from repro.dram.controller import MemoryController, Request, RequestKind
from repro.secure.designs import (
    CounterMode,
    MacLocation,
    SecureDesign,
    TreeKind,
)
from repro.telemetry import get_registry
from repro.util.stats import StatGroup

#: Tree-walk depth histogram edges: one bucket per level (0 = anchored at
#: the first node above the leaf), deep enough for any arity-8 tree here.
TREE_DEPTH_EDGES = (0, 1, 2, 3, 4, 5, 6, 7, 8)

#: Tree fan-out (counters per line for monolithic; tags per line for MAC tree).
TREE_ARITY = 8
#: Data lines covered per counter line.
MONOLITHIC_COVERAGE = 8
SPLIT_COVERAGE = 64
#: Data lines covered per MAC line / parity line.
MAC_COVERAGE = 8
PARITY_COVERAGE = 8

#: Enum members bound once — the expansion paths touch these per request.
_READ = RequestKind.READ
_WRITE = RequestKind.WRITE


class TimingMetadataMap:
    """Metadata line addresses for the timing plane.

    Regions are laid out above the data region in a flat line-address space;
    the DRAM address mapper interleaves them over channels/banks like any
    other lines (metadata shares the memory system with data, as in the
    paper's organisation).
    """

    __slots__ = (
        "num_data_lines",
        "counter_coverage",
        "counter_base",
        "num_counter_lines",
        "mac_base",
        "num_mac_lines",
        "parity_base",
        "num_parity_lines",
        "tree_level_bases",
        "tree_level_sizes",
        "total_lines",
        "_tree_path_cache",
    )

    def __init__(self, num_data_lines: int, counter_mode: CounterMode):
        self.num_data_lines = num_data_lines
        self.counter_coverage = (
            SPLIT_COVERAGE if counter_mode is CounterMode.SPLIT else MONOLITHIC_COVERAGE
        )
        cursor = num_data_lines

        self.counter_base = cursor
        self.num_counter_lines = -(-num_data_lines // self.counter_coverage)
        cursor += self.num_counter_lines

        self.mac_base = cursor
        self.num_mac_lines = -(-num_data_lines // MAC_COVERAGE)
        cursor += self.num_mac_lines

        self.parity_base = cursor
        self.num_parity_lines = -(-num_data_lines // PARITY_COVERAGE)
        cursor += self.num_parity_lines

        # Tree levels above the counter lines (Bonsai) — also reused as the
        # MAC-tree levels above MAC lines (IVEC), sized for whichever is
        # larger so one region serves both.
        leaves = max(self.num_counter_lines, self.num_mac_lines)
        self.tree_level_bases: List[int] = []
        self.tree_level_sizes: List[int] = []
        size = -(-leaves // TREE_ARITY)
        while True:
            self.tree_level_bases.append(cursor)
            self.tree_level_sizes.append(size)
            cursor += size
            if size == 1:
                break
            size = -(-size // TREE_ARITY)
        self.total_lines = cursor
        #: Memoised leaf-index -> root path (paths repeat heavily: adjacent
        #: metadata lines share all but the lowest tree levels).
        self._tree_path_cache: dict = {}

    def counter_line(self, data_line: int) -> int:
        """Counter line covering a data line."""
        return self.counter_base + data_line // self.counter_coverage

    def mac_line(self, data_line: int) -> int:
        """MAC line covering a data line (separate-MAC designs)."""
        return self.mac_base + data_line // MAC_COVERAGE

    def parity_line(self, data_line: int) -> int:
        """Parity line covering a data line (Synergy / LOT-ECC tier 2)."""
        return self.parity_base + data_line // PARITY_COVERAGE

    def tree_path_from_counter(self, counter_line: int) -> List[int]:
        """Tree line addresses from just above a counter line to the root."""
        index = counter_line - self.counter_base
        return self._tree_path(index)

    def tree_path_from_mac(self, mac_line: int) -> List[int]:
        """MAC-tree line addresses from just above a MAC line to the root."""
        index = mac_line - self.mac_base
        return self._tree_path(index)

    def _tree_path(self, leaf_index: int) -> List[int]:
        path = self._tree_path_cache.get(leaf_index)
        if path is not None:
            return path
        path = []
        index = leaf_index
        for base, size in zip(self.tree_level_bases, self.tree_level_sizes):
            index //= TREE_ARITY
            path.append(base + min(index, size - 1))
        self._tree_path_cache[leaf_index] = path
        return path


@dataclass
class ExpandedAccess:
    """Requests generated for one data access.

    ``blocking`` requests gate the read's completion (data + verification
    metadata); ``posted`` requests only consume bandwidth. Invariant:
    ``blocking[0]`` is always the data line itself — speculative designs
    (§VII-B) complete on it alone.
    """

    blocking: List[Request] = field(default_factory=list)
    posted: List[Request] = field(default_factory=list)


class SecureTimingEngine:
    """Expands data accesses into design-specific memory traffic."""

    __slots__ = (
        "design",
        "hierarchy",
        "controller",
        "map",
        "stats",
        "_t_tree_walk_depth",
        "_t_mac_tree_walk_depth",
        "_t_metadata_accesses",
        "_t_counter_hits",
        "_t_mac_hits",
        "_c_counter_hits",
        "_c_mac_hits",
        "_n_metadata_accesses",
        "_n_counter_hits",
        "_n_mac_hits",
        "_synced_telemetry",
        "_tree_depth_acc",
        "_mac_tree_depth_acc",
        "_account_counters",
        "_writeback_queue",
        "_draining_writebacks",
        "_in_writeback_path",
        "_batch",
        "_batch_blocking",
        "_batching",
        "_deferred",
        "_fast_expand",
        "_fast_warm",
        "_fast_writeback",
        "_sanitizer",
        "_san_epoch_checked",
    )

    def __init__(
        self,
        design: SecureDesign,
        hierarchy: CacheHierarchy,
        controller: MemoryController,
        num_data_lines: int = 1 << 24,
    ):
        self.design = design
        self.hierarchy = hierarchy
        self.controller = controller
        self.map = TimingMetadataMap(num_data_lines, design.counter_mode)
        self.stats = StatGroup("secure_engine_%s" % design.name)
        registry = get_registry()
        self._t_tree_walk_depth = registry.histogram(
            "secure.tree_walk_depth", TREE_DEPTH_EDGES
        )
        self._t_mac_tree_walk_depth = registry.histogram(
            "secure.mac_tree_walk_depth", TREE_DEPTH_EDGES
        )
        self._t_metadata_accesses = registry.counter("secure.metadata_accesses")
        self._t_counter_hits = registry.counter("secure.counter_hits")
        self._t_mac_hits = registry.counter("secure.mac_hits")
        self._c_counter_hits = self.stats.counter("counter_hits")
        self._c_mac_hits = self.stats.counter("mac_hits")
        # Deferred telemetry (see sync_telemetry): the per-access paths
        # bump plain ints / tally dicts; the registry objects are only
        # touched at snapshot time.
        self._n_metadata_accesses = 0
        self._n_counter_hits = 0
        self._n_mac_hits = 0
        self._synced_telemetry = [0, 0, 0]
        self._tree_depth_acc: dict = {}
        self._mac_tree_depth_acc: dict = {}
        #: (origin, category, kind) -> bound accounting counter; built
        #: lazily so the per-request path never string-formats.
        self._account_counters: dict = {}
        from collections import deque

        self._writeback_queue = deque()
        self._draining_writebacks = False
        self._in_writeback_path = False
        # Emission batch: while an expansion is in flight, emitted request
        # specs buffer here and flush through ``enqueue_batch`` in one call
        # (same order, same sequence numbers as one-by-one enqueues).
        # ``_batch_blocking`` holds the batch indices that gate the read.
        self._batch: List = []
        self._batch_blocking: List[int] = []
        self._batching = False
        # Epoch-deferred mode (see begin_deferred): the batch persists
        # across expansions and flushes once per resolve epoch.
        self._deferred = False
        self._fast_expand = None
        self._fast_warm = None
        self._fast_writeback = None
        self._sanitizer = get_sanitizer()
        # True means "no spot-check pending" — primed per epoch only when
        # a sanitizer is attached, so the hot path pays one bool test.
        self._san_epoch_checked = self._sanitizer is None

    # ------------------------------------------------------------------

    def _classify_writeback(self, line_address: int) -> str:
        """Traffic category of an evicted line by its region."""
        map_ = self.map
        if line_address < map_.counter_base:
            return "data"
        if line_address < map_.mac_base:
            return "counter"
        if line_address < map_.parity_base:
            return "mac"
        if line_address < map_.tree_level_bases[0]:
            return "parity"
        return "counter"  # tree lines group with counters (Fig. 9)

    @property
    def _origin(self) -> str:
        """Whether traffic being emitted serves a demand read or a writeback.

        The paper's Fig. 9 splits traffic by what *triggered* it (the reads
        chart vs the writes chart), not by the physical direction — e.g. the
        read half of a counter RMW on the write path belongs to the writes
        chart. The engine tracks the trigger here.
        """
        return "writeback" if self._in_writeback_path else "demand"

    def _account(self, category: str, kind: RequestKind) -> None:
        key = (self._in_writeback_path, category, kind)
        counter = self._account_counters.get(key)
        if counter is None:
            counter = self.stats.counter(
                "%s_%s_%s" % (self._origin, category, kind.value)
            )
            self._account_counters[key] = counter
        # Unit increment: bump the slot directly (skips Counter.add's
        # sign check on the per-request path).
        counter.value += 1
        if category != "data":
            self._n_metadata_accesses += 1

    def _emit_read(
        self, out: ExpandedAccess, line: int, when: int, category: str, core: int
    ) -> None:
        self._account(category, _READ)
        if self._batching:
            self._batch_blocking.append(len(self._batch))
            self._batch.append((_READ, line, when, category, core))
        else:
            out.blocking.append(
                self.controller.enqueue(_READ, line, when, category, core)
            )

    def _emit_rmw_read(self, line: int, when: int, category: str, core: int) -> None:
        """A posted read (RMW fetch) that gates nothing."""
        self._account(category, _READ)
        if self._batching:
            self._batch.append((_READ, line, when, category, core))
        else:
            self.controller.enqueue(_READ, line, when, category, core)

    def _emit_write(self, line: int, when: int, category: str, core: int) -> None:
        self._account(category, _WRITE)
        if self._batching:
            self._batch.append((_WRITE, line, when, category, core))
        else:
            self.controller.enqueue(_WRITE, line, when, category, core)

    def _flush_batch(self, out: Optional[ExpandedAccess]) -> None:
        """Enqueue the buffered specs in emission order; route the gating
        requests into ``out.blocking`` by their recorded batch indices."""
        self._batching = False
        batch = self._batch
        if not batch:
            del self._batch_blocking[:]
            return
        requests = self.controller.enqueue_batch(batch)
        if out is not None:
            blocking = out.blocking
            for index in self._batch_blocking:
                blocking.append(requests[index])
        del batch[:]
        del self._batch_blocking[:]

    def writeback(self, victim: Optional[int], when: int, core: int) -> None:
        """Handle an evicted dirty line of *any* region.

        Metadata victims are plain memory writes; data victims need the full
        write-side metadata expansion (counter bump, MAC/parity update).
        Eviction chains (a data writeback dirties a counter line whose fill
        evicts another data line, ...) are drained iteratively.
        """
        if victim is None:
            return
        self._writeback_queue.append(victim)
        if self._draining_writebacks:
            return
        self._draining_writebacks = True
        top = not self._batching
        if top:
            self._batching = True
        try:
            while self._writeback_queue:
                line = self._writeback_queue.popleft()
                if line < self.map.counter_base:
                    self.expand_data_writeback(line, when, core)
                else:
                    self._emit_write(
                        line, when, self._classify_writeback(line), core
                    )
        finally:
            self._draining_writebacks = False
            if top:
                self._flush_batch(None)

    # Backwards-compatible internal alias used by the fetch/update paths.
    def _handle_writeback(self, victim: Optional[int], when: int, core: int) -> None:
        self.writeback(victim, when, core)

    # ------------------------------------------------------------------
    # Epoch-deferred emission mode (the columnar timing plane)
    # ------------------------------------------------------------------

    @property
    def deferred(self) -> bool:
        """Whether the engine is in epoch-deferred emission mode."""
        return self._deferred

    @property
    def fast_expand(self):
        """The fused per-miss expansion, or None outside the fast-path
        boundary (MAC-tree designs, cached MACs — the scalar oracle)."""
        return self._fast_expand

    @property
    def fast_warm(self):
        """The fused warm-metadata walk, or None outside the fast-path
        boundary (same boundary as :attr:`fast_expand`)."""
        return self._fast_warm

    @property
    def fast_writeback(self):
        """The fused writeback drain, or None outside the fast-path
        boundary (same boundary as :attr:`fast_expand`)."""
        return self._fast_writeback

    def begin_deferred(self) -> None:
        """Enter epoch-deferred emission mode.

        Emissions stop flushing per expansion and instead buffer into one
        per-epoch spec batch that :meth:`flush_epoch` enqueues in a single
        ``enqueue_batch`` call at the resolve boundary. The engine is the
        only request producer and the batch preserves emission order, so
        request content, arbitration order and sequence numbers are
        identical to the scalar engine's immediate enqueues — blocking
        requests are returned as batch indices because their completions
        are only read after the controller's next ``process``.
        """
        self._deferred = True
        self._batching = True
        if self._fast_expand is None and (
            self.design.tree_kind is not TreeKind.MAC_TREE
            and not self.design.macs_cached
        ):
            # Order matters: the expansion closure binds the fused
            # writeback drain for its spill victims.
            self._fast_writeback = self._build_fast_writeback()
            self._fast_expand = self._build_fast_expand()
            self._fast_warm = self._build_fast_warm()

    def expand_read_miss_deferred(
        self, data_line: int, when: int, core: int
    ) -> List[int]:
        """Deferred-mode read-miss expansion; returns epoch-batch indices.

        The indices resolve against the request list returned by the next
        :meth:`flush_epoch`; index 0 is always the data line itself (the
        ``ExpandedAccess.blocking[0]`` invariant, preserved for
        speculative designs).
        """
        if self._san_epoch_checked:
            fast = self._fast_expand
            if fast is not None:
                return fast(data_line, when, core, -1, -1)
            return self._expand_deferred_generic(data_line, when, core)
        # Sampled sanitizer spot-check: first expansion of each epoch.
        self._san_epoch_checked = True
        base = len(self._batch)
        fast = self._fast_expand
        if fast is not None:
            blocking = fast(data_line, when, core, -1, -1)
        else:
            blocking = self._expand_deferred_generic(data_line, when, core)
        self._sanitizer.check_expansion_batch(
            self, data_line, when, core, base, blocking
        )
        return blocking

    def _expand_deferred_generic(
        self, data_line: int, when: int, core: int
    ) -> List[int]:
        """Scalar-oracle fallback inside deferred mode.

        Runs the verbatim scalar expansion; because ``_batching`` stays
        set, its emissions buffer into the epoch batch and the per-call
        flush is skipped. ``_emit_read`` recorded the absolute batch
        indices of the gating requests.
        """
        self.expand_read_miss(data_line, when, core)
        blocking = list(self._batch_blocking)
        del self._batch_blocking[:]
        return blocking

    def flush_epoch(self) -> List[Request]:
        """Enqueue the buffered epoch batch; returns the request list.

        Called by the system simulator at each resolve boundary, before
        ``controller.process``. Sequence numbers are assigned in batch
        order — identical to the scalar engine's serial enqueues.
        """
        batch = self._batch
        if not batch:
            return []
        sanitizer = self._sanitizer
        if sanitizer is None:
            requests = self.controller.enqueue_batch(batch)
            del batch[:]
            return requests
        specs = list(batch)
        requests = self.controller.enqueue_batch(batch)
        sanitizer.check_epoch_flush(specs, requests)
        self._san_epoch_checked = False
        del batch[:]
        return requests

    def _build_fast_expand(self):
        """Build the fused read-miss expansion closure.

        One closure call replaces the scalar path's ~10 frames per miss:
        the dedicated/LLC dict probes of ``CacheHierarchy.access_metadata``
        and ``SetAssociativeCache.access`` are inlined (including the
        pinned ``llc_result.writeback_address or spill_writeback`` quirk),
        accounting counters bind lazily through the same
        ``_account_counters`` table as the scalar path, and emissions
        append straight to the epoch batch. Writeback chains — the
        "interesting minority" — still route through the scalar
        ``writeback`` drain at exactly the point the scalar path would.

        Only built for designs whose read walk is data + Bonsai counter
        chain + optional uncached MAC; MAC-tree/cached-MAC designs keep
        the scalar oracle. Callers may pass precomputed ``counter_line``/
        ``mac_line`` (from the columnar numpy pass); -1 means compute.
        """
        design = self.design
        map_ = self.map
        hierarchy = self.hierarchy
        md = hierarchy.metadata_cache
        md_sets = md._sets
        md_mask = md._set_mask
        md_shift = md._set_shift
        md_assoc = md.associativity
        llc = hierarchy.llc
        llc_sets = llc._sets
        llc_mask = llc._set_mask
        llc_shift = llc._set_shift
        llc_assoc = llc.associativity
        llc_fill = llc.fill
        counter_base = map_.counter_base
        counter_coverage = map_.counter_coverage
        mac_base = map_.mac_base
        encrypted = design.encrypted
        counters_in_llc = design.counters_in_llc
        separate_mac = design.mac_location is MacLocation.SEPARATE
        macs_in_llc = design.macs_in_llc
        # Tree geometry as (base, clamp) pairs: the walk computes each
        # level's address as it descends instead of materialising the full
        # memoised path — break-on-hit means most of a full path is wasted
        # work, and at large footprints the memo never hits anyway.
        tree_levels = tuple(
            (base, size - 1)
            for base, size in zip(map_.tree_level_bases, map_.tree_level_sizes)
        )
        arity = TREE_ARITY
        batch = self._batch
        batch_append = batch.append
        handle_writeback = self._fast_writeback or self.writeback
        counter_hits = self._c_counter_hits
        stats_counter = self.stats.counter
        account = self._account_counters
        absent = ABSENT
        read = _READ
        c_data = c_counter = c_mac = None

        def bind(category: str):
            # Lazy bind through the scalar path's table so a fused run
            # creates exactly the counters a scalar run would.
            key = (False, category, read)
            counter = account.get(key)
            if counter is None:
                counter = stats_counter("demand_%s_read" % category)
                account[key] = counter
            return counter

        def miss_probe(line, ways, tag, use_llc):
            # Continuation after the dedicated probe popped ABSENT:
            # finish the dedicated fill, then the optional LLC layer.
            # Returns (hit, writeback) exactly as access_metadata would.
            md.misses += 1
            dedicated_wb = None
            if len(ways) >= md_assoc:
                victim_tag = next(iter(ways))
                victim_dirty = ways.pop(victim_tag)
                md.evictions += 1
                if victim_dirty:
                    md.dirty_evictions += 1
                    dedicated_wb = (victim_tag << md_shift) | (line & md_mask)
            ways[tag] = False
            if not use_llc:
                return False, dedicated_wb
            llc_ways = llc_sets[line & llc_mask]
            llc_tag = line >> llc_shift
            prev = llc_ways.pop(llc_tag, absent)
            if prev is not absent:
                llc.hits += 1
                llc_ways[llc_tag] = prev
                if dedicated_wb is None:
                    return True, None
                return True, llc_fill(dedicated_wb, True)
            llc.misses += 1
            llc_wb = None
            if len(llc_ways) >= llc_assoc:
                victim_tag = next(iter(llc_ways))
                victim_dirty = llc_ways.pop(victim_tag)
                llc.evictions += 1
                if victim_dirty:
                    llc.dirty_evictions += 1
                    llc_wb = (victim_tag << llc_shift) | (line & llc_mask)
            llc_ways[llc_tag] = False
            hierarchy.metadata_llc_fills += 1
            spill = None
            if dedicated_wb is not None:
                spill = llc_fill(dedicated_wb, True)
            # Pinned quirk: `or`, not `is None` — a dirty LLC victim at
            # line 0 defers to the spill (dropped when there is none),
            # exactly as access_metadata computes its writeback.
            return False, llc_wb or spill

        def expand_fast(data_line, when, core, counter_line, mac_line):
            nonlocal c_data, c_counter, c_mac
            if c_data is None:
                c_data = bind("data")
            c_data.value += 1
            blocking = [len(batch)]
            batch_append((read, data_line, when, "data", core))
            if encrypted:
                if counter_line < 0:
                    counter_line = counter_base + data_line // counter_coverage
                ways = md_sets[counter_line & md_mask]
                tag = counter_line >> md_shift
                prev = ways.pop(tag, absent)
                if prev is not absent:
                    md.hits += 1
                    ways[tag] = prev
                    counter_hits.value += 1
                    self._n_counter_hits += 1
                else:
                    hit, wb = miss_probe(
                        counter_line, ways, tag, counters_in_llc
                    )
                    if wb is not None:
                        handle_writeback(wb, when, core)
                    if hit:
                        counter_hits.value += 1
                        self._n_counter_hits += 1
                    else:
                        if c_counter is None:
                            c_counter = bind("counter")
                        c_counter.value += 1
                        self._n_metadata_accesses += 1
                        blocking.append(len(batch))
                        batch_append((read, counter_line, when, "counter", core))
                        # Bonsai walk to the cached trust anchor (every
                        # encrypted fast-path design is Bonsai). Same
                        # per-level arithmetic as _tree_path, one level
                        # at a time.
                        depth = 0
                        index = counter_line - counter_base
                        for level_base, level_cap in tree_levels:
                            index //= arity
                            tree_line = level_base + (
                                index if index < level_cap else level_cap
                            )
                            tree_ways = md_sets[tree_line & md_mask]
                            tree_tag = tree_line >> md_shift
                            tree_prev = tree_ways.pop(tree_tag, absent)
                            if tree_prev is not absent:
                                md.hits += 1
                                tree_ways[tree_tag] = tree_prev
                                break
                            hit, wb = miss_probe(
                                tree_line, tree_ways, tree_tag, counters_in_llc
                            )
                            if wb is not None:
                                handle_writeback(wb, when, core)
                            if hit:
                                break
                            c_counter.value += 1
                            self._n_metadata_accesses += 1
                            blocking.append(len(batch))
                            batch_append(
                                (read, tree_line, when, "counter", core)
                            )
                            depth += 1
                        acc = self._tree_depth_acc
                        try:
                            acc[depth] += 1
                        except KeyError:
                            acc[depth] = 1
                if separate_mac:
                    if mac_line < 0:
                        mac_line = mac_base + data_line // MAC_COVERAGE
                    if c_mac is None:
                        c_mac = bind("mac")
                    c_mac.value += 1
                    self._n_metadata_accesses += 1
                    blocking.append(len(batch))
                    batch_append((read, mac_line, when, "mac", core))
                    if macs_in_llc:
                        wb = llc_fill(mac_line)
                        if wb is not None:
                            handle_writeback(wb, when, core)
            return blocking

        return expand_fast

    def _build_fast_writeback(self):
        """Build the fused writeback drain (fast-path designs only).

        Replays :meth:`writeback`'s iterative chain drain with the
        write-side metadata walk inlined: the data write, the counter-line
        RMW probe, the full-path Bonsai dirty walk (every level updates —
        no break-on-hit on the write side), the uncached-MAC write and the
        parity write, all appending straight to the epoch batch. Cache
        probes perform exactly ``access_metadata(..., is_write=True)``'s
        transitions and stat bumps, including the pinned
        ``llc_wb or spill`` writeback quirk; chained victims re-enter the
        same FIFO queue the scalar drain uses. Accounting counters bind
        lazily through ``_account_counters`` at the same first-use points
        as the scalar path, so stat-group ordering is preserved. Only
        valid in deferred mode, where ``_batching`` is permanently set and
        the scalar drain's trailing flush is a no-op.
        """
        design = self.design
        map_ = self.map
        hierarchy = self.hierarchy
        md = hierarchy.metadata_cache
        md_sets = md._sets
        md_mask = md._set_mask
        md_shift = md._set_shift
        md_assoc = md.associativity
        llc = hierarchy.llc
        llc_sets = llc._sets
        llc_mask = llc._set_mask
        llc_shift = llc._set_shift
        llc_assoc = llc.associativity
        llc_fill = llc.fill
        counter_base = map_.counter_base
        counter_coverage = map_.counter_coverage
        mac_base = map_.mac_base
        parity_base = map_.parity_base
        tree_base = map_.tree_level_bases[0]
        encrypted = design.encrypted
        counters_in_llc = design.counters_in_llc
        separate_mac = design.mac_location is MacLocation.SEPARATE
        macs_in_llc = design.macs_in_llc
        parity_on_write = design.parity_write_on_data_write
        lotecc_rmw = design.lotecc_parity_rmw
        lotecc_coalesced = design.lotecc_write_coalescing
        tree_levels = tuple(
            (base, size - 1)
            for base, size in zip(map_.tree_level_bases, map_.tree_level_sizes)
        )
        arity = TREE_ARITY
        batch = self._batch
        batch_append = batch.append
        queue = self._writeback_queue
        queue_append = queue.append
        queue_popleft = queue.popleft
        stats_counter = self.stats.counter
        account = self._account_counters
        absent = ABSENT
        read = _READ
        write = _WRITE
        engine = self

        def bind(origin_flag, category, kind):
            # Same lazy creation as _account: names and stat-group order
            # match the scalar path's first-use points exactly.
            key = (origin_flag, category, kind)
            counter = account.get(key)
            if counter is None:
                counter = stats_counter(
                    "%s_%s_%s"
                    % (
                        "writeback" if origin_flag else "demand",
                        category,
                        kind.value,
                    )
                )
                account[key] = counter
            return counter

        # Lazily-bound accounting counters (write-path first-use order).
        cells = {}

        def md_probe_write(line):
            # access_metadata(line, is_write=True, use_llc) with the dict
            # probes inlined; returns (hit, writeback address or None).
            ways = md_sets[line & md_mask]
            tag = line >> md_shift
            prev = ways.pop(tag, absent)
            if prev is not absent:
                md.hits += 1
                ways[tag] = True
                return True, None
            md.misses += 1
            dedicated_wb = None
            if len(ways) >= md_assoc:
                victim_tag = next(iter(ways))
                victim_dirty = ways.pop(victim_tag)
                md.evictions += 1
                if victim_dirty:
                    md.dirty_evictions += 1
                    dedicated_wb = (victim_tag << md_shift) | (line & md_mask)
            ways[tag] = True
            if not counters_in_llc:
                return False, dedicated_wb
            llc_ways = llc_sets[line & llc_mask]
            llc_tag = line >> llc_shift
            llc_prev = llc_ways.pop(llc_tag, absent)
            if llc_prev is not absent:
                llc.hits += 1
                llc_ways[llc_tag] = True
                if dedicated_wb is None:
                    return True, None
                return True, llc_fill(dedicated_wb, True)
            llc.misses += 1
            llc_wb = None
            if len(llc_ways) >= llc_assoc:
                victim_tag = next(iter(llc_ways))
                victim_dirty = llc_ways.pop(victim_tag)
                llc.evictions += 1
                if victim_dirty:
                    llc.dirty_evictions += 1
                    llc_wb = (victim_tag << llc_shift) | (line & llc_mask)
            llc_ways[llc_tag] = True
            hierarchy.metadata_llc_fills += 1
            spill = None
            if dedicated_wb is not None:
                spill = llc_fill(dedicated_wb, True)
            # Pinned quirk (see access_metadata): `or`, not `is None`.
            return False, llc_wb or spill

        def writeback_fast(victim, when, core):
            if victim is None:
                return
            queue_append(victim)
            if engine._draining_writebacks:
                return
            engine._draining_writebacks = True
            n_meta = 0
            try:
                while queue:
                    line = queue_popleft()
                    if line < counter_base:
                        # Data-region victim: full write-side expansion,
                        # accounted as writeback-origin traffic.
                        engine._in_writeback_path = True
                        try:
                            counter = cells.get("wd")
                            if counter is None:
                                counter = cells["wd"] = bind(
                                    True, "data", write
                                )
                            counter.value += 1
                            batch_append((write, line, when, "data", core))
                            if encrypted:
                                counter_line = (
                                    counter_base + line // counter_coverage
                                )
                                hit, wb = md_probe_write(counter_line)
                                if wb is not None:
                                    queue_append(wb)
                                if not hit:
                                    counter = cells.get("wcr")
                                    if counter is None:
                                        counter = cells["wcr"] = bind(
                                            True, "counter", read
                                        )
                                    counter.value += 1
                                    n_meta += 1
                                    batch_append(
                                        (read, counter_line, when,
                                         "counter", core)
                                    )
                                # Dirty every tree level to the root (the
                                # write side has no break-on-hit).
                                index = counter_line - counter_base
                                for level_base, level_cap in tree_levels:
                                    index //= arity
                                    tree_line = level_base + (
                                        index
                                        if index < level_cap
                                        else level_cap
                                    )
                                    hit, wb = md_probe_write(tree_line)
                                    if wb is not None:
                                        queue_append(wb)
                                    if not hit:
                                        counter = cells.get("wcr")
                                        if counter is None:
                                            counter = cells["wcr"] = bind(
                                                True, "counter", read
                                            )
                                        counter.value += 1
                                        n_meta += 1
                                        batch_append(
                                            (read, tree_line, when,
                                             "counter", core)
                                        )
                                if separate_mac:
                                    mac_line = (
                                        mac_base + line // MAC_COVERAGE
                                    )
                                    counter = cells.get("wmw")
                                    if counter is None:
                                        counter = cells["wmw"] = bind(
                                            True, "mac", write
                                        )
                                    counter.value += 1
                                    n_meta += 1
                                    batch_append(
                                        (write, mac_line, when, "mac", core)
                                    )
                                    if macs_in_llc:
                                        wb = llc_fill(mac_line)
                                        if wb is not None:
                                            queue_append(wb)
                            if parity_on_write:
                                parity_line = (
                                    parity_base + line // PARITY_COVERAGE
                                )
                                counter = cells.get("wpw")
                                if counter is None:
                                    counter = cells["wpw"] = bind(
                                        True, "parity", write
                                    )
                                counter.value += 1
                                n_meta += 1
                                batch_append(
                                    (write, parity_line, when,
                                     "parity", core)
                                )
                            if lotecc_rmw:
                                parity_line = (
                                    parity_base + line // PARITY_COVERAGE
                                )
                                if not lotecc_coalesced:
                                    counter = cells.get("wpr")
                                    if counter is None:
                                        counter = cells["wpr"] = bind(
                                            True, "parity", read
                                        )
                                    counter.value += 1
                                    n_meta += 1
                                    batch_append(
                                        (read, parity_line, when,
                                         "parity", core)
                                    )
                                counter = cells.get("wpw")
                                if counter is None:
                                    counter = cells["wpw"] = bind(
                                        True, "parity", write
                                    )
                                counter.value += 1
                                n_meta += 1
                                batch_append(
                                    (write, parity_line, when,
                                     "parity", core)
                                )
                        finally:
                            engine._in_writeback_path = False
                    else:
                        # Metadata victim: classify by region, plain
                        # memory write, demand-origin accounting (the
                        # drain loop runs outside _in_writeback_path —
                        # the scalar path's pinned behaviour).
                        if line < mac_base:
                            category = "counter"
                            cell_key = "dcw"
                        elif line < parity_base:
                            category = "mac"
                            cell_key = "dmw"
                        elif line < tree_base:
                            category = "parity"
                            cell_key = "dpw"
                        else:
                            category = "counter"
                            cell_key = "dcw"
                        counter = cells.get(cell_key)
                        if counter is None:
                            counter = cells[cell_key] = bind(
                                False, category, write
                            )
                        counter.value += 1
                        n_meta += 1
                        batch_append((write, line, when, category, core))
            finally:
                engine._draining_writebacks = False
                if n_meta:
                    engine._n_metadata_accesses += n_meta

        return writeback_fast

    def _build_fast_warm(self):
        """Build the fused warmup metadata walk (fast-path designs only).

        Performs exactly the cache-state transitions of
        :meth:`warm_miss_metadata` — dedicated/LLC dict probes with
        ``is_write``-honouring dirty bits, victim spills, break-on-hit
        Bonsai walk — with every stat bump skipped (legal only in warmup:
        ``SystemSimulator.warmup`` resets all of them afterwards) and
        memory writebacks dropped (warmup generates no DRAM traffic).
        Dirty dedicated victims still spill into the LLC when the design
        backs metadata there, because that *is* cache state.
        """
        design = self.design
        map_ = self.map
        hierarchy = self.hierarchy
        md = hierarchy.metadata_cache
        md_sets = md._sets
        md_mask = md._set_mask
        md_shift = md._set_shift
        md_assoc = md.associativity
        llc = hierarchy.llc
        llc_sets = llc._sets
        llc_mask = llc._set_mask
        llc_shift = llc._set_shift
        llc_assoc = llc.associativity
        llc_fill = llc.fill
        counter_base = map_.counter_base
        counter_coverage = map_.counter_coverage
        mac_base = map_.mac_base
        counters_in_llc = design.counters_in_llc
        mac_llc_fill = (
            design.mac_location is MacLocation.SEPARATE and design.macs_in_llc
        )
        tree_levels = tuple(
            (base, size - 1)
            for base, size in zip(map_.tree_level_bases, map_.tree_level_sizes)
        )
        arity = TREE_ARITY
        absent = ABSENT

        def warm_probe(line, is_write):
            # access_metadata's state transitions, stats-free: dedicated
            # probe, optional LLC layer, dirty-victim spill. Returns hit.
            ways = md_sets[line & md_mask]
            tag = line >> md_shift
            prev = ways.pop(tag, absent)
            if prev is not absent:
                ways[tag] = True if is_write else prev
                return True
            victim = None
            if len(ways) >= md_assoc:
                victim_tag = next(iter(ways))
                if ways.pop(victim_tag):
                    victim = (victim_tag << md_shift) | (line & md_mask)
            ways[tag] = is_write
            if not counters_in_llc:
                return False
            llc_ways = llc_sets[line & llc_mask]
            llc_tag = line >> llc_shift
            llc_prev = llc_ways.pop(llc_tag, absent)
            if llc_prev is not absent:
                llc_ways[llc_tag] = True if is_write else llc_prev
                if victim is not None:
                    llc_fill(victim, True)
                return True
            if len(llc_ways) >= llc_assoc:
                llc_ways.pop(next(iter(llc_ways)))
            llc_ways[llc_tag] = is_write
            if victim is not None:
                llc_fill(victim, True)
            return False

        def warm_fast(data_line, is_write):
            counter_line = counter_base + data_line // counter_coverage
            if not warm_probe(counter_line, is_write):
                # Bonsai walk toward the cached anchor (every fast-path
                # encrypted design is Bonsai), break on first hit.
                index = counter_line - counter_base
                for level_base, level_cap in tree_levels:
                    index //= arity
                    tree_line = level_base + (
                        index if index < level_cap else level_cap
                    )
                    if warm_probe(tree_line, is_write):
                        break
            if mac_llc_fill:
                llc_fill(mac_base + data_line // MAC_COVERAGE)

        return warm_fast

    # ------------------------------------------------------------------
    # Cache warmup (no DRAM traffic)
    # ------------------------------------------------------------------

    def warm_data_access(self, data_line: int, is_write: bool) -> None:
        """Replay one access through the caches without any memory traffic.

        Used to reach cache steady state before timing measurement — the
        paper's 1B-instruction slices run with warm caches; short synthetic
        traces must not measure an LLC that never filled (see DESIGN.md).
        """
        result = self.hierarchy.access_data(data_line, is_write)
        if result.hit or not self.design.encrypted:
            return
        self.warm_miss_metadata(data_line, is_write)

    def warm_miss_metadata(self, data_line: int, is_write: bool) -> None:
        """The metadata half of :meth:`warm_data_access` (post-LLC-miss).

        Split out so the system's fused warmup loop — which inlines the
        LLC probe itself — can invoke just the metadata walk on misses of
        encrypted designs.
        """
        design = self.design
        counter_line = self.map.counter_line(data_line)
        chain = self.hierarchy.access_metadata(
            counter_line, is_write=is_write, use_llc=design.counters_in_llc
        )
        if not chain.hit and design.tree_kind is TreeKind.BONSAI_COUNTER:
            for tree_line in self.map.tree_path_from_counter(counter_line):
                node = self.hierarchy.access_metadata(
                    tree_line, is_write=is_write, use_llc=design.counters_in_llc
                )
                if node.hit:
                    break
        if design.mac_location is MacLocation.SEPARATE:
            mac_line = self.map.mac_line(data_line)
            walk_tree = design.tree_kind is TreeKind.MAC_TREE
            if design.macs_cached:
                mac = self.hierarchy.access_metadata(
                    mac_line, is_write=is_write, use_llc=design.macs_in_llc
                )
                walk_tree = walk_tree and not mac.hit
            elif design.macs_in_llc:
                self.hierarchy.llc.fill(mac_line)
            if walk_tree:
                for tree_line in self.map.tree_path_from_mac(mac_line):
                    node = self.hierarchy.access_metadata(
                        tree_line, is_write=is_write, use_llc=design.macs_in_llc
                    )
                    if node.hit:
                        break

    # ------------------------------------------------------------------
    # Read path (LLC data miss)
    # ------------------------------------------------------------------

    def expand_read_miss(self, data_line: int, when: int, core: int) -> ExpandedAccess:
        """Generate the memory traffic for one LLC read miss.

        Emissions (including any triggered writeback chains) buffer into
        one ``enqueue_batch`` flush — same requests, order and sequence
        numbers as serial enqueues, minus the per-call overhead.
        """
        design = self.design
        out = ExpandedAccess()
        top = not self._batching
        if top:
            self._batching = True
        try:
            self._emit_read(out, data_line, when, "data", core)
            if design.encrypted:
                self._fetch_counter_chain(out, data_line, when, core)
                if design.mac_location is MacLocation.SEPARATE:
                    self._fetch_mac(out, data_line, when, core)
        finally:
            if top:
                self._flush_batch(out)
        return out

    def _fetch_counter_chain(
        self, out: ExpandedAccess, data_line: int, when: int, core: int
    ) -> None:
        design = self.design
        counter_line = self.map.counter_line(data_line)
        result = self.hierarchy.access_metadata(
            counter_line, is_write=False, use_llc=design.counters_in_llc
        )
        self._handle_writeback(result.writeback_address, when, core)
        if result.hit:
            self._c_counter_hits.value += 1
            self._n_counter_hits += 1
            return
        self._emit_read(out, counter_line, when, "counter", core)
        if design.tree_kind is not TreeKind.BONSAI_COUNTER:
            return
        # Walk the counter tree until a cached level (trust anchor).
        depth = 0
        for tree_line in self.map.tree_path_from_counter(counter_line):
            node = self.hierarchy.access_metadata(
                tree_line, is_write=False, use_llc=design.counters_in_llc
            )
            self._handle_writeback(node.writeback_address, when, core)
            if node.hit:
                break
            self._emit_read(out, tree_line, when, "counter", core)
            depth += 1
        acc = self._tree_depth_acc
        try:
            acc[depth] += 1
        except KeyError:
            acc[depth] = 1

    def _fetch_mac(
        self, out: ExpandedAccess, data_line: int, when: int, core: int
    ) -> None:
        design = self.design
        mac_line = self.map.mac_line(data_line)
        if not design.macs_cached:
            # Table II: SGX/SGX_O cache MACs nowhere — every data access
            # pays a MAC memory access (the traffic Synergy eliminates).
            # IVEC additionally *stores* its (untrusted) MACs in the LLC,
            # displacing data without eliding the fetch (design note in
            # repro.secure.designs.IVEC).
            self._emit_read(out, mac_line, when, "mac", core)
            if design.macs_in_llc:
                self._handle_writeback(self.hierarchy.llc.fill(mac_line), when, core)
            self._walk_mac_tree_read(out, mac_line, when, core)
            return
        result = self.hierarchy.access_metadata(
            mac_line, is_write=False, use_llc=design.macs_in_llc
        )
        self._handle_writeback(result.writeback_address, when, core)
        if result.hit:
            self._c_mac_hits.value += 1
            self._n_mac_hits += 1
            return
        self._emit_read(out, mac_line, when, "mac", core)
        self._walk_mac_tree_read(out, mac_line, when, core)

    def _walk_mac_tree_read(
        self, out: ExpandedAccess, mac_line: int, when: int, core: int
    ) -> None:
        """IVEC read path: the MAC is a tree member — walk the MAC tree."""
        design = self.design
        if design.tree_kind is not TreeKind.MAC_TREE:
            return
        depth = 0
        for tree_line in self.map.tree_path_from_mac(mac_line):
            node = self.hierarchy.access_metadata(
                tree_line, is_write=False, use_llc=design.macs_in_llc
            )
            self._handle_writeback(node.writeback_address, when, core)
            if node.hit:
                break
            self._emit_read(out, tree_line, when, "mac", core)
            depth += 1
        acc = self._mac_tree_depth_acc
        try:
            acc[depth] += 1
        except KeyError:
            acc[depth] = 1

    def sync_telemetry(self) -> None:
        """Publish the deferred telemetry into the registry objects.

        Counters publish the delta since the last sync (watermarked, so
        instances sharing a registry counter each contribute their own
        events); histogram tallies flush weight-batched — all integer
        observations, so batching is bit-exact. ``SystemSimulator.run``
        calls this before the snapshot.
        """
        synced = self._synced_telemetry
        self._t_metadata_accesses.inc(self._n_metadata_accesses - synced[0])
        self._t_counter_hits.inc(self._n_counter_hits - synced[1])
        self._t_mac_hits.inc(self._n_mac_hits - synced[2])
        synced[0] = self._n_metadata_accesses
        synced[1] = self._n_counter_hits
        synced[2] = self._n_mac_hits
        for acc, histogram in (
            (self._tree_depth_acc, self._t_tree_walk_depth),
            (self._mac_tree_depth_acc, self._t_mac_tree_walk_depth),
        ):
            for value, weight in acc.items():
                histogram.record(value, weight)
            acc.clear()

    # ------------------------------------------------------------------
    # Write path (LLC dirty-data eviction = memory write)
    # ------------------------------------------------------------------

    def expand_data_writeback(self, data_line: int, when: int, core: int) -> None:
        """Generate the (posted) traffic for one data writeback."""
        design = self.design
        was_writeback = self._in_writeback_path
        self._in_writeback_path = True
        try:
            self._expand_data_writeback(data_line, when, core)
        finally:
            self._in_writeback_path = was_writeback

    def _expand_data_writeback(self, data_line: int, when: int, core: int) -> None:
        design = self.design
        self._emit_write(data_line, when, "data", core)
        if design.encrypted:
            self._update_counter_chain(data_line, when, core)
            if design.mac_location is MacLocation.SEPARATE:
                self._update_mac(data_line, when, core)
        if design.parity_write_on_data_write:
            # Synergy: the parity region sees one write per data write;
            # the new parity is computed from the written line itself so no
            # read is needed (ParityP updated via DIMM-internal masking).
            self._emit_write(self.map.parity_line(data_line), when, "parity", core)
        if design.lotecc_parity_rmw:
            parity_line = self.map.parity_line(data_line)
            if not design.lotecc_write_coalescing:
                # Tier-2 parity needs old contents: read-modify-write.
                self._emit_rmw_read(parity_line, when, "parity", core)
            self._emit_write(parity_line, when, "parity", core)

    def _update_counter_chain(self, data_line: int, when: int, core: int) -> None:
        design = self.design
        counter_line = self.map.counter_line(data_line)
        result = self.hierarchy.access_metadata(
            counter_line, is_write=True, use_llc=design.counters_in_llc
        )
        self._handle_writeback(result.writeback_address, when, core)
        if not result.hit:
            # RMW: must fetch the counter line before bumping it.
            self._emit_rmw_read(counter_line, when, "counter", core)
        if design.tree_kind is not TreeKind.BONSAI_COUNTER:
            return
        # Updates dirty *every* level up to the root (each level's counter
        # increments); cached levels cost no traffic but uncached ones must
        # be fetched for the read-modify-write.
        for tree_line in self.map.tree_path_from_counter(counter_line):
            node = self.hierarchy.access_metadata(
                tree_line, is_write=True, use_llc=design.counters_in_llc
            )
            self._handle_writeback(node.writeback_address, when, core)
            if not node.hit:
                self._emit_rmw_read(tree_line, when, "counter", core)

    def _update_mac(self, data_line: int, when: int, core: int) -> None:
        design = self.design
        mac_line = self.map.mac_line(data_line)
        if not design.macs_cached:
            # Uncached MAC update: one (masked) memory write per data write.
            self._emit_write(mac_line, when, "mac", core)
            if design.macs_in_llc:
                self._handle_writeback(self.hierarchy.llc.fill(mac_line), when, core)
            if design.tree_kind is not TreeKind.MAC_TREE:
                return
        else:
            result = self.hierarchy.access_metadata(
                mac_line, is_write=True, use_llc=design.macs_in_llc
            )
            self._handle_writeback(result.writeback_address, when, core)
            if not result.hit:
                self._emit_rmw_read(mac_line, when, "mac", core)
        if design.tree_kind is TreeKind.MAC_TREE:
            # A Merkle tree of MACs must re-hash every level to the root on
            # each update — the write-amplification that makes the
            # non-Bonsai structure expensive (§VII-A1).
            for tree_line in self.map.tree_path_from_mac(mac_line):
                node = self.hierarchy.access_metadata(
                    tree_line, is_write=True, use_llc=design.macs_in_llc
                )
                self._handle_writeback(node.writeback_address, when, core)
                if not node.hit:
                    self._emit_rmw_read(tree_line, when, "mac", core)
