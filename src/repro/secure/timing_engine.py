"""Per-design metadata traffic expansion (the timing-plane secure engine).

For every LLC data miss or writeback, the engine consults the design
descriptor and the cache hierarchy and emits the memory requests the design
would need: counter fetches with a tree walk, MAC fetches (or none, for
Synergy), parity updates, plus writebacks of evicted dirty metadata. The
read path returns the set of requests whose completion gates the data
(verification needs data + counter chain + MAC).

This is where the paper's central performance claim becomes mechanical:
SGX_O pays a MAC access per data access; Synergy does not, because the MAC
rides the ECC chip. Everything else (counter caching in LLC, tree walks,
split counters, IVEC's MAC tree, LOT-ECC parity RMW) is configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.dram.controller import MemoryController, Request, RequestKind
from repro.secure.designs import (
    CounterMode,
    MacLocation,
    SecureDesign,
    TreeKind,
)
from repro.telemetry import get_registry
from repro.util.stats import StatGroup

#: Tree-walk depth histogram edges: one bucket per level (0 = anchored at
#: the first node above the leaf), deep enough for any arity-8 tree here.
TREE_DEPTH_EDGES = (0, 1, 2, 3, 4, 5, 6, 7, 8)

#: Tree fan-out (counters per line for monolithic; tags per line for MAC tree).
TREE_ARITY = 8
#: Data lines covered per counter line.
MONOLITHIC_COVERAGE = 8
SPLIT_COVERAGE = 64
#: Data lines covered per MAC line / parity line.
MAC_COVERAGE = 8
PARITY_COVERAGE = 8

#: Enum members bound once — the expansion paths touch these per request.
_READ = RequestKind.READ
_WRITE = RequestKind.WRITE


class TimingMetadataMap:
    """Metadata line addresses for the timing plane.

    Regions are laid out above the data region in a flat line-address space;
    the DRAM address mapper interleaves them over channels/banks like any
    other lines (metadata shares the memory system with data, as in the
    paper's organisation).
    """

    __slots__ = (
        "num_data_lines",
        "counter_coverage",
        "counter_base",
        "num_counter_lines",
        "mac_base",
        "num_mac_lines",
        "parity_base",
        "num_parity_lines",
        "tree_level_bases",
        "tree_level_sizes",
        "total_lines",
        "_tree_path_cache",
    )

    def __init__(self, num_data_lines: int, counter_mode: CounterMode):
        self.num_data_lines = num_data_lines
        self.counter_coverage = (
            SPLIT_COVERAGE if counter_mode is CounterMode.SPLIT else MONOLITHIC_COVERAGE
        )
        cursor = num_data_lines

        self.counter_base = cursor
        self.num_counter_lines = -(-num_data_lines // self.counter_coverage)
        cursor += self.num_counter_lines

        self.mac_base = cursor
        self.num_mac_lines = -(-num_data_lines // MAC_COVERAGE)
        cursor += self.num_mac_lines

        self.parity_base = cursor
        self.num_parity_lines = -(-num_data_lines // PARITY_COVERAGE)
        cursor += self.num_parity_lines

        # Tree levels above the counter lines (Bonsai) — also reused as the
        # MAC-tree levels above MAC lines (IVEC), sized for whichever is
        # larger so one region serves both.
        leaves = max(self.num_counter_lines, self.num_mac_lines)
        self.tree_level_bases: List[int] = []
        self.tree_level_sizes: List[int] = []
        size = -(-leaves // TREE_ARITY)
        while True:
            self.tree_level_bases.append(cursor)
            self.tree_level_sizes.append(size)
            cursor += size
            if size == 1:
                break
            size = -(-size // TREE_ARITY)
        self.total_lines = cursor
        #: Memoised leaf-index -> root path (paths repeat heavily: adjacent
        #: metadata lines share all but the lowest tree levels).
        self._tree_path_cache: dict = {}

    def counter_line(self, data_line: int) -> int:
        """Counter line covering a data line."""
        return self.counter_base + data_line // self.counter_coverage

    def mac_line(self, data_line: int) -> int:
        """MAC line covering a data line (separate-MAC designs)."""
        return self.mac_base + data_line // MAC_COVERAGE

    def parity_line(self, data_line: int) -> int:
        """Parity line covering a data line (Synergy / LOT-ECC tier 2)."""
        return self.parity_base + data_line // PARITY_COVERAGE

    def tree_path_from_counter(self, counter_line: int) -> List[int]:
        """Tree line addresses from just above a counter line to the root."""
        index = counter_line - self.counter_base
        return self._tree_path(index)

    def tree_path_from_mac(self, mac_line: int) -> List[int]:
        """MAC-tree line addresses from just above a MAC line to the root."""
        index = mac_line - self.mac_base
        return self._tree_path(index)

    def _tree_path(self, leaf_index: int) -> List[int]:
        path = self._tree_path_cache.get(leaf_index)
        if path is not None:
            return path
        path = []
        index = leaf_index
        for base, size in zip(self.tree_level_bases, self.tree_level_sizes):
            index //= TREE_ARITY
            path.append(base + min(index, size - 1))
        self._tree_path_cache[leaf_index] = path
        return path


@dataclass
class ExpandedAccess:
    """Requests generated for one data access.

    ``blocking`` requests gate the read's completion (data + verification
    metadata); ``posted`` requests only consume bandwidth. Invariant:
    ``blocking[0]`` is always the data line itself — speculative designs
    (§VII-B) complete on it alone.
    """

    blocking: List[Request] = field(default_factory=list)
    posted: List[Request] = field(default_factory=list)


class SecureTimingEngine:
    """Expands data accesses into design-specific memory traffic."""

    __slots__ = (
        "design",
        "hierarchy",
        "controller",
        "map",
        "stats",
        "_t_tree_walk_depth",
        "_t_mac_tree_walk_depth",
        "_t_metadata_accesses",
        "_t_counter_hits",
        "_t_mac_hits",
        "_c_counter_hits",
        "_c_mac_hits",
        "_n_metadata_accesses",
        "_n_counter_hits",
        "_n_mac_hits",
        "_synced_telemetry",
        "_tree_depth_acc",
        "_mac_tree_depth_acc",
        "_account_counters",
        "_writeback_queue",
        "_draining_writebacks",
        "_in_writeback_path",
        "_batch",
        "_batch_blocking",
        "_batching",
    )

    def __init__(
        self,
        design: SecureDesign,
        hierarchy: CacheHierarchy,
        controller: MemoryController,
        num_data_lines: int = 1 << 24,
    ):
        self.design = design
        self.hierarchy = hierarchy
        self.controller = controller
        self.map = TimingMetadataMap(num_data_lines, design.counter_mode)
        self.stats = StatGroup("secure_engine_%s" % design.name)
        registry = get_registry()
        self._t_tree_walk_depth = registry.histogram(
            "secure.tree_walk_depth", TREE_DEPTH_EDGES
        )
        self._t_mac_tree_walk_depth = registry.histogram(
            "secure.mac_tree_walk_depth", TREE_DEPTH_EDGES
        )
        self._t_metadata_accesses = registry.counter("secure.metadata_accesses")
        self._t_counter_hits = registry.counter("secure.counter_hits")
        self._t_mac_hits = registry.counter("secure.mac_hits")
        self._c_counter_hits = self.stats.counter("counter_hits")
        self._c_mac_hits = self.stats.counter("mac_hits")
        # Deferred telemetry (see sync_telemetry): the per-access paths
        # bump plain ints / tally dicts; the registry objects are only
        # touched at snapshot time.
        self._n_metadata_accesses = 0
        self._n_counter_hits = 0
        self._n_mac_hits = 0
        self._synced_telemetry = [0, 0, 0]
        self._tree_depth_acc: dict = {}
        self._mac_tree_depth_acc: dict = {}
        #: (origin, category, kind) -> bound accounting counter; built
        #: lazily so the per-request path never string-formats.
        self._account_counters: dict = {}
        from collections import deque

        self._writeback_queue = deque()
        self._draining_writebacks = False
        self._in_writeback_path = False
        # Emission batch: while an expansion is in flight, emitted request
        # specs buffer here and flush through ``enqueue_batch`` in one call
        # (same order, same sequence numbers as one-by-one enqueues).
        # ``_batch_blocking`` holds the batch indices that gate the read.
        self._batch: List = []
        self._batch_blocking: List[int] = []
        self._batching = False

    # ------------------------------------------------------------------

    def _classify_writeback(self, line_address: int) -> str:
        """Traffic category of an evicted line by its region."""
        map_ = self.map
        if line_address < map_.counter_base:
            return "data"
        if line_address < map_.mac_base:
            return "counter"
        if line_address < map_.parity_base:
            return "mac"
        if line_address < map_.tree_level_bases[0]:
            return "parity"
        return "counter"  # tree lines group with counters (Fig. 9)

    @property
    def _origin(self) -> str:
        """Whether traffic being emitted serves a demand read or a writeback.

        The paper's Fig. 9 splits traffic by what *triggered* it (the reads
        chart vs the writes chart), not by the physical direction — e.g. the
        read half of a counter RMW on the write path belongs to the writes
        chart. The engine tracks the trigger here.
        """
        return "writeback" if self._in_writeback_path else "demand"

    def _account(self, category: str, kind: RequestKind) -> None:
        key = (self._in_writeback_path, category, kind)
        counter = self._account_counters.get(key)
        if counter is None:
            counter = self.stats.counter(
                "%s_%s_%s" % (self._origin, category, kind.value)
            )
            self._account_counters[key] = counter
        # Unit increment: bump the slot directly (skips Counter.add's
        # sign check on the per-request path).
        counter.value += 1
        if category != "data":
            self._n_metadata_accesses += 1

    def _emit_read(
        self, out: ExpandedAccess, line: int, when: int, category: str, core: int
    ) -> None:
        self._account(category, _READ)
        if self._batching:
            self._batch_blocking.append(len(self._batch))
            self._batch.append((_READ, line, when, category, core))
        else:
            out.blocking.append(
                self.controller.enqueue(_READ, line, when, category, core)
            )

    def _emit_rmw_read(self, line: int, when: int, category: str, core: int) -> None:
        """A posted read (RMW fetch) that gates nothing."""
        self._account(category, _READ)
        if self._batching:
            self._batch.append((_READ, line, when, category, core))
        else:
            self.controller.enqueue(_READ, line, when, category, core)

    def _emit_write(self, line: int, when: int, category: str, core: int) -> None:
        self._account(category, _WRITE)
        if self._batching:
            self._batch.append((_WRITE, line, when, category, core))
        else:
            self.controller.enqueue(_WRITE, line, when, category, core)

    def _flush_batch(self, out: Optional[ExpandedAccess]) -> None:
        """Enqueue the buffered specs in emission order; route the gating
        requests into ``out.blocking`` by their recorded batch indices."""
        self._batching = False
        batch = self._batch
        if not batch:
            del self._batch_blocking[:]
            return
        requests = self.controller.enqueue_batch(batch)
        if out is not None:
            blocking = out.blocking
            for index in self._batch_blocking:
                blocking.append(requests[index])
        del batch[:]
        del self._batch_blocking[:]

    def writeback(self, victim: Optional[int], when: int, core: int) -> None:
        """Handle an evicted dirty line of *any* region.

        Metadata victims are plain memory writes; data victims need the full
        write-side metadata expansion (counter bump, MAC/parity update).
        Eviction chains (a data writeback dirties a counter line whose fill
        evicts another data line, ...) are drained iteratively.
        """
        if victim is None:
            return
        self._writeback_queue.append(victim)
        if self._draining_writebacks:
            return
        self._draining_writebacks = True
        top = not self._batching
        if top:
            self._batching = True
        try:
            while self._writeback_queue:
                line = self._writeback_queue.popleft()
                if line < self.map.counter_base:
                    self.expand_data_writeback(line, when, core)
                else:
                    self._emit_write(
                        line, when, self._classify_writeback(line), core
                    )
        finally:
            self._draining_writebacks = False
            if top:
                self._flush_batch(None)

    # Backwards-compatible internal alias used by the fetch/update paths.
    def _handle_writeback(self, victim: Optional[int], when: int, core: int) -> None:
        self.writeback(victim, when, core)

    # ------------------------------------------------------------------
    # Cache warmup (no DRAM traffic)
    # ------------------------------------------------------------------

    def warm_data_access(self, data_line: int, is_write: bool) -> None:
        """Replay one access through the caches without any memory traffic.

        Used to reach cache steady state before timing measurement — the
        paper's 1B-instruction slices run with warm caches; short synthetic
        traces must not measure an LLC that never filled (see DESIGN.md).
        """
        design = self.design
        result = self.hierarchy.access_data(data_line, is_write)
        if result.hit or not design.encrypted:
            return
        counter_line = self.map.counter_line(data_line)
        chain = self.hierarchy.access_metadata(
            counter_line, is_write=is_write, use_llc=design.counters_in_llc
        )
        if not chain.hit and design.tree_kind is TreeKind.BONSAI_COUNTER:
            for tree_line in self.map.tree_path_from_counter(counter_line):
                node = self.hierarchy.access_metadata(
                    tree_line, is_write=is_write, use_llc=design.counters_in_llc
                )
                if node.hit:
                    break
        if design.mac_location is MacLocation.SEPARATE:
            mac_line = self.map.mac_line(data_line)
            walk_tree = design.tree_kind is TreeKind.MAC_TREE
            if design.macs_cached:
                mac = self.hierarchy.access_metadata(
                    mac_line, is_write=is_write, use_llc=design.macs_in_llc
                )
                walk_tree = walk_tree and not mac.hit
            elif design.macs_in_llc:
                self.hierarchy.llc.fill(mac_line)
            if walk_tree:
                for tree_line in self.map.tree_path_from_mac(mac_line):
                    node = self.hierarchy.access_metadata(
                        tree_line, is_write=is_write, use_llc=design.macs_in_llc
                    )
                    if node.hit:
                        break

    # ------------------------------------------------------------------
    # Read path (LLC data miss)
    # ------------------------------------------------------------------

    def expand_read_miss(self, data_line: int, when: int, core: int) -> ExpandedAccess:
        """Generate the memory traffic for one LLC read miss.

        Emissions (including any triggered writeback chains) buffer into
        one ``enqueue_batch`` flush — same requests, order and sequence
        numbers as serial enqueues, minus the per-call overhead.
        """
        design = self.design
        out = ExpandedAccess()
        top = not self._batching
        if top:
            self._batching = True
        try:
            self._emit_read(out, data_line, when, "data", core)
            if design.encrypted:
                self._fetch_counter_chain(out, data_line, when, core)
                if design.mac_location is MacLocation.SEPARATE:
                    self._fetch_mac(out, data_line, when, core)
        finally:
            if top:
                self._flush_batch(out)
        return out

    def _fetch_counter_chain(
        self, out: ExpandedAccess, data_line: int, when: int, core: int
    ) -> None:
        design = self.design
        counter_line = self.map.counter_line(data_line)
        result = self.hierarchy.access_metadata(
            counter_line, is_write=False, use_llc=design.counters_in_llc
        )
        self._handle_writeback(result.writeback_address, when, core)
        if result.hit:
            self._c_counter_hits.value += 1
            self._n_counter_hits += 1
            return
        self._emit_read(out, counter_line, when, "counter", core)
        if design.tree_kind is not TreeKind.BONSAI_COUNTER:
            return
        # Walk the counter tree until a cached level (trust anchor).
        depth = 0
        for tree_line in self.map.tree_path_from_counter(counter_line):
            node = self.hierarchy.access_metadata(
                tree_line, is_write=False, use_llc=design.counters_in_llc
            )
            self._handle_writeback(node.writeback_address, when, core)
            if node.hit:
                break
            self._emit_read(out, tree_line, when, "counter", core)
            depth += 1
        acc = self._tree_depth_acc
        try:
            acc[depth] += 1
        except KeyError:
            acc[depth] = 1

    def _fetch_mac(
        self, out: ExpandedAccess, data_line: int, when: int, core: int
    ) -> None:
        design = self.design
        mac_line = self.map.mac_line(data_line)
        if not design.macs_cached:
            # Table II: SGX/SGX_O cache MACs nowhere — every data access
            # pays a MAC memory access (the traffic Synergy eliminates).
            # IVEC additionally *stores* its (untrusted) MACs in the LLC,
            # displacing data without eliding the fetch (design note in
            # repro.secure.designs.IVEC).
            self._emit_read(out, mac_line, when, "mac", core)
            if design.macs_in_llc:
                self._handle_writeback(self.hierarchy.llc.fill(mac_line), when, core)
            self._walk_mac_tree_read(out, mac_line, when, core)
            return
        result = self.hierarchy.access_metadata(
            mac_line, is_write=False, use_llc=design.macs_in_llc
        )
        self._handle_writeback(result.writeback_address, when, core)
        if result.hit:
            self._c_mac_hits.value += 1
            self._n_mac_hits += 1
            return
        self._emit_read(out, mac_line, when, "mac", core)
        self._walk_mac_tree_read(out, mac_line, when, core)

    def _walk_mac_tree_read(
        self, out: ExpandedAccess, mac_line: int, when: int, core: int
    ) -> None:
        """IVEC read path: the MAC is a tree member — walk the MAC tree."""
        design = self.design
        if design.tree_kind is not TreeKind.MAC_TREE:
            return
        depth = 0
        for tree_line in self.map.tree_path_from_mac(mac_line):
            node = self.hierarchy.access_metadata(
                tree_line, is_write=False, use_llc=design.macs_in_llc
            )
            self._handle_writeback(node.writeback_address, when, core)
            if node.hit:
                break
            self._emit_read(out, tree_line, when, "mac", core)
            depth += 1
        acc = self._mac_tree_depth_acc
        try:
            acc[depth] += 1
        except KeyError:
            acc[depth] = 1

    def sync_telemetry(self) -> None:
        """Publish the deferred telemetry into the registry objects.

        Counters publish the delta since the last sync (watermarked, so
        instances sharing a registry counter each contribute their own
        events); histogram tallies flush weight-batched — all integer
        observations, so batching is bit-exact. ``SystemSimulator.run``
        calls this before the snapshot.
        """
        synced = self._synced_telemetry
        self._t_metadata_accesses.inc(self._n_metadata_accesses - synced[0])
        self._t_counter_hits.inc(self._n_counter_hits - synced[1])
        self._t_mac_hits.inc(self._n_mac_hits - synced[2])
        synced[0] = self._n_metadata_accesses
        synced[1] = self._n_counter_hits
        synced[2] = self._n_mac_hits
        for acc, histogram in (
            (self._tree_depth_acc, self._t_tree_walk_depth),
            (self._mac_tree_depth_acc, self._t_mac_tree_walk_depth),
        ):
            for value, weight in acc.items():
                histogram.record(value, weight)
            acc.clear()

    # ------------------------------------------------------------------
    # Write path (LLC dirty-data eviction = memory write)
    # ------------------------------------------------------------------

    def expand_data_writeback(self, data_line: int, when: int, core: int) -> None:
        """Generate the (posted) traffic for one data writeback."""
        design = self.design
        was_writeback = self._in_writeback_path
        self._in_writeback_path = True
        try:
            self._expand_data_writeback(data_line, when, core)
        finally:
            self._in_writeback_path = was_writeback

    def _expand_data_writeback(self, data_line: int, when: int, core: int) -> None:
        design = self.design
        self._emit_write(data_line, when, "data", core)
        if design.encrypted:
            self._update_counter_chain(data_line, when, core)
            if design.mac_location is MacLocation.SEPARATE:
                self._update_mac(data_line, when, core)
        if design.parity_write_on_data_write:
            # Synergy: the parity region sees one write per data write;
            # the new parity is computed from the written line itself so no
            # read is needed (ParityP updated via DIMM-internal masking).
            self._emit_write(self.map.parity_line(data_line), when, "parity", core)
        if design.lotecc_parity_rmw:
            parity_line = self.map.parity_line(data_line)
            if not design.lotecc_write_coalescing:
                # Tier-2 parity needs old contents: read-modify-write.
                self._emit_rmw_read(parity_line, when, "parity", core)
            self._emit_write(parity_line, when, "parity", core)

    def _update_counter_chain(self, data_line: int, when: int, core: int) -> None:
        design = self.design
        counter_line = self.map.counter_line(data_line)
        result = self.hierarchy.access_metadata(
            counter_line, is_write=True, use_llc=design.counters_in_llc
        )
        self._handle_writeback(result.writeback_address, when, core)
        if not result.hit:
            # RMW: must fetch the counter line before bumping it.
            self._emit_rmw_read(counter_line, when, "counter", core)
        if design.tree_kind is not TreeKind.BONSAI_COUNTER:
            return
        # Updates dirty *every* level up to the root (each level's counter
        # increments); cached levels cost no traffic but uncached ones must
        # be fetched for the read-modify-write.
        for tree_line in self.map.tree_path_from_counter(counter_line):
            node = self.hierarchy.access_metadata(
                tree_line, is_write=True, use_llc=design.counters_in_llc
            )
            self._handle_writeback(node.writeback_address, when, core)
            if not node.hit:
                self._emit_rmw_read(tree_line, when, "counter", core)

    def _update_mac(self, data_line: int, when: int, core: int) -> None:
        design = self.design
        mac_line = self.map.mac_line(data_line)
        if not design.macs_cached:
            # Uncached MAC update: one (masked) memory write per data write.
            self._emit_write(mac_line, when, "mac", core)
            if design.macs_in_llc:
                self._handle_writeback(self.hierarchy.llc.fill(mac_line), when, core)
            if design.tree_kind is not TreeKind.MAC_TREE:
                return
        else:
            result = self.hierarchy.access_metadata(
                mac_line, is_write=True, use_llc=design.macs_in_llc
            )
            self._handle_writeback(result.writeback_address, when, core)
            if not result.hit:
                self._emit_rmw_read(mac_line, when, "mac", core)
        if design.tree_kind is TreeKind.MAC_TREE:
            # A Merkle tree of MACs must re-hash every level to the root on
            # each update — the write-amplification that makes the
            # non-Bonsai structure expensive (§VII-A1).
            for tree_line in self.map.tree_path_from_mac(mac_line):
                node = self.hierarchy.access_metadata(
                    tree_line, is_write=True, use_llc=design.macs_in_llc
                )
                self._handle_writeback(node.writeback_address, when, core)
                if not node.hit:
                    self._emit_rmw_read(tree_line, when, "mac", core)
