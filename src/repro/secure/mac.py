"""Per-line-type MAC computations and the MAC-computation budget.

All designs in Table II use a 64-bit GMAC. Three line types carry MACs:

* data lines — MAC over the *ciphertext* bound to (address, write counter);
* encryption-counter lines — MAC over the eight counters bound to
  (address, parent tree counter);
* tree-counter lines — same structure one level up.

The :class:`MacBudget` wraps the calculator with an operation counter so the
reconstruction-latency claims of Section IV-A (<=8, <=16, <=88 MAC
computations) are measurable facts in tests and benches rather than comments.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.gmac import Gmac64
from repro.secure.counters import pack_counter_payload
from repro.telemetry import get_registry


class LineMacCalculator:
    """Computes the 64-bit MACs for every protected line type."""

    __slots__ = (
        "_gmac",
        "computations",
        "_t_computations",
    )

    def __init__(self, gmac: Gmac64):
        self._gmac = gmac
        self.computations = 0
        self._t_computations = get_registry().counter("secure.mac_computations")

    def reset_count(self) -> None:
        """Zero the MAC-computation counter."""
        self.computations = 0

    def data_mac(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        """MAC of a data cacheline (over ciphertext, per SGX practice)."""
        self.computations += 1
        self._t_computations.inc()
        return self._gmac.tag(address, counter, ciphertext)

    def counter_line_mac(
        self, address: int, parent_counter: int, counters: Sequence[int]
    ) -> bytes:
        """MAC of a counter or tree-counter line, keyed by its parent counter."""
        self.computations += 1
        self._t_computations.inc()
        payload = pack_counter_payload(counters)
        return self._gmac.tag(address, parent_counter, payload)

    # Raw variants for the invariant sanitizer: identical tags, but they do
    # not touch ``computations`` or telemetry, so the Section IV-A budget
    # assertions (<=8 / <=16 recomputations) stay measurable under
    # REPRO_SANITIZE=1.

    def data_mac_raw(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        """Uncounted :meth:`data_mac` (sanitizer verification path)."""
        return self._gmac.tag(address, counter, ciphertext)

    def counter_line_mac_raw(
        self, address: int, parent_counter: int, counters: Sequence[int]
    ) -> bytes:
        """Uncounted :meth:`counter_line_mac` (sanitizer verification path)."""
        return self._gmac.tag(address, parent_counter, pack_counter_payload(counters))


class MacBudget:
    """Scoped counter of MAC computations (correction-latency accounting)."""

    __slots__ = (
        "_calculator",
        "_start",
    )

    def __init__(self, calculator: LineMacCalculator):
        self._calculator = calculator
        self._start = 0

    def __enter__(self) -> "MacBudget":
        self._start = self._calculator.computations
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        del exc_type, exc, tb

    @property
    def spent(self) -> int:
        """MAC computations performed since entering the scope."""
        return self._calculator.computations - self._start
