"""Non-Bonsai Merkle MAC tree, the integrity structure IVEC assumes.

IVEC (Table II) protects memory with a tree *of hashes*: every data line has
a MAC, each tree node authenticates the concatenation of its eight
children's MACs, and the root lives on-chip. Contrast with the Bonsai
counter tree: here the data MACs are structural tree members, which is
precisely why IVEC cannot move them into the ECC chip (Section VII-A1 and
Fig. 15) — the tree traversal would over-fetch sibling cachelines.

The functional model stores leaf MACs and node tags in line-shaped groups of
eight so the timing plane's traffic expansion (one line per level per miss)
matches the geometry here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.gmac import Gmac64
from repro.secure.errors import AttackDetected

ARITY = 8
MAC_BYTES = 8


class MacTree:
    """A keyed 8-ary Merkle tree over per-line MACs.

    Leaves are the data-line MACs (supplied by the caller on update); the
    tree maintains interior tags and an on-chip root. ``verify_leaf``
    recomputes the path and raises on any inconsistency.
    """

    __slots__ = (
        "_gmac",
        "num_leaves",
        "level_sizes",
        "_leaves",
        "_levels",
        "root",
        "tag_computations",
    )

    def __init__(self, num_leaves: int, gmac: Gmac64):
        if num_leaves < 1:
            raise ValueError("need at least one leaf")
        self._gmac = gmac
        self.num_leaves = num_leaves
        self.level_sizes: List[int] = []
        size = num_leaves
        while size > 1:
            size = -(-size // ARITY)
            self.level_sizes.append(size)
        # levels[k][i]: tag of node i at level k (level 0 just above leaves).
        self._leaves: Dict[int, bytes] = {}
        self._levels: List[Dict[int, bytes]] = [dict() for _ in self.level_sizes]
        self.root: Optional[bytes] = None
        self.tag_computations = 0

    @property
    def depth(self) -> int:
        """Number of interior levels (excluding leaves)."""
        return len(self.level_sizes)

    # ------------------------------------------------------------------

    def _children_blob(self, level: int, index: int) -> bytes:
        """Concatenated child tags/MACs of node ``index`` at ``level``."""
        parts = []
        for child in range(ARITY * index, ARITY * (index + 1)):
            if level == 0:
                parts.append(self._leaves.get(child, bytes(MAC_BYTES)))
            else:
                parts.append(self._levels[level - 1].get(child, bytes(MAC_BYTES)))
        return b"".join(parts)

    def _node_tag(self, level: int, index: int) -> bytes:
        self.tag_computations += 1
        blob = self._children_blob(level, index)
        return self._gmac.tag((level << 32) | index, 0, blob)

    # ------------------------------------------------------------------

    def update_leaf(self, leaf_index: int, mac: bytes) -> None:
        """Install a new leaf MAC and refresh its path to the root."""
        if not 0 <= leaf_index < self.num_leaves:
            raise ValueError("leaf index out of range")
        if len(mac) != MAC_BYTES:
            raise ValueError("leaf MACs are %d bytes" % MAC_BYTES)
        self._leaves[leaf_index] = bytes(mac)
        index = leaf_index
        for level in range(self.depth):
            index //= ARITY
            self._levels[level][index] = self._node_tag(level, index)
        self.root = self._levels[-1][0] if self.depth else self._leaves[leaf_index]

    def leaf_mac(self, leaf_index: int) -> bytes:
        """The stored MAC of a leaf (unverified)."""
        return self._leaves.get(leaf_index, bytes(MAC_BYTES))

    def verify_leaf(self, leaf_index: int) -> bytes:
        """Verify the path above a leaf; returns the (trusted) leaf MAC."""
        if not 0 <= leaf_index < self.num_leaves:
            raise ValueError("leaf index out of range")
        index = leaf_index
        for level in range(self.depth):
            index //= ARITY
            stored = self._levels[level].get(index)
            expected = self._node_tag(level, index)
            if level == self.depth - 1:
                # Top node verifies against the on-chip root.
                if self.root is not None and expected != self.root:
                    raise AttackDetected("MAC-tree root mismatch", leaf_index)
            if stored is not None and stored != expected:
                raise AttackDetected(
                    "MAC-tree node mismatch at level %d" % level, leaf_index
                )
        return self.leaf_mac(leaf_index)

    # -- test hooks -----------------------------------------------------

    def tamper_leaf(self, leaf_index: int, mac: bytes) -> None:
        """Overwrite a leaf MAC without refreshing the path (attack model)."""
        self._leaves[leaf_index] = bytes(mac)

    def tamper_node(self, level: int, index: int, tag: bytes) -> None:
        """Overwrite an interior tag without refreshing ancestors."""
        self._levels[level][index] = bytes(tag)

    def path_line_addresses(self, leaf_index: int) -> List[Tuple[int, int]]:
        """(level, node-line) pairs the traversal touches, for traffic models.

        Eight sibling tags share a 64-byte line, so the line index at each
        level is ``node_index // 8`` — with node itself grouped by arity.
        """
        path = []
        index = leaf_index
        for level in range(self.depth):
            index //= ARITY
            path.append((level, index // ARITY))
        return path
