"""Columnar (numpy) address expansion for the secure timing plane.

The metadata address mapping of :class:`~repro.secure.timing_engine.
TimingMetadataMap` is pure integer arithmetic, so the counter-line,
MAC-line, parity-line and tree-path addresses of a whole batch of LLC
misses can be computed in one integer-domain numpy pass instead of one
Python expression per miss. The stateful part — probing the metadata
caches and emitting requests — cannot vectorize without changing LRU
order, so it stays a per-miss loop: the engine's fused expansion for the
common designs, and the retained scalar oracle for the interesting
minority (MAC-tree designs, cached MACs, writeback chains).

Consumers:

* :func:`compute_miss_columns` / :func:`tree_path_columns` — the pure
  numpy passes, also used by the equivalence tests and the sanitizer to
  recompute expected addresses independently of the engine;
* :func:`expand_read_misses` — batch driver over a deferred-mode engine:
  one numpy address pass, then the fused per-miss expansion with the
  precomputed addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.secure.designs import MacLocation, SecureDesign
from repro.secure.timing_engine import (
    MAC_COVERAGE,
    PARITY_COVERAGE,
    TREE_ARITY,
    SecureTimingEngine,
    TimingMetadataMap,
)


@dataclass(frozen=True)
class MissColumns:
    """Columnar metadata addresses for a batch of data-line misses.

    All columns are int64 ndarrays parallel to ``data_lines``. The tree
    leaf index column feeds :func:`tree_path_columns` (and the engine's
    memoised per-leaf path walk).
    """

    data_lines: np.ndarray
    counter_lines: np.ndarray
    mac_lines: np.ndarray
    parity_lines: np.ndarray
    tree_leaf_indices: np.ndarray


def compute_miss_columns(
    map_: TimingMetadataMap, lines: Sequence[int]
) -> MissColumns:
    """One integer-domain pass: every metadata address for every miss."""
    data = np.ascontiguousarray(lines, dtype=np.int64)
    counter = map_.counter_base + data // map_.counter_coverage
    return MissColumns(
        data_lines=data,
        counter_lines=counter,
        mac_lines=map_.mac_base + data // MAC_COVERAGE,
        parity_lines=map_.parity_base + data // PARITY_COVERAGE,
        tree_leaf_indices=counter - map_.counter_base,
    )


def tree_path_columns(
    map_: TimingMetadataMap, leaf_indices: np.ndarray
) -> List[np.ndarray]:
    """Tree-path addresses, one column per level, for a batch of leaves.

    ``result[level][i]`` equals ``map_._tree_path(leaf_indices[i])[level]``
    — the same clamp-at-ragged-edge arithmetic, vectorised.
    """
    index = np.asarray(leaf_indices, dtype=np.int64)
    columns: List[np.ndarray] = []
    for base, size in zip(map_.tree_level_bases, map_.tree_level_sizes):
        index = index // TREE_ARITY
        columns.append(base + np.minimum(index, size - 1))
    return columns


def expand_read_misses(
    engine: SecureTimingEngine,
    lines: Sequence[int],
    whens: Optional[Sequence[int]] = None,
    when: int = 0,
    core: int = 0,
) -> List[List[int]]:
    """Expand a batch of LLC read misses through a deferred-mode engine.

    Addresses are computed in one numpy pass; each miss then runs the
    engine's fused expansion with its precomputed counter/MAC lines (or
    the scalar oracle for designs outside the fast-path boundary).
    Returns one blocking-index list per miss; the indices resolve against
    the request list of the next ``engine.flush_epoch()``.

    Exactly equivalent to calling ``expand_read_miss_deferred`` per line
    in order — the batch changes where the address arithmetic happens,
    never what the caches or the controller observe.
    """
    if not engine.deferred:
        raise RuntimeError("expand_read_misses needs a deferred-mode engine")
    columns = compute_miss_columns(engine.map, lines)
    data_list = columns.data_lines.tolist()
    when_list = (
        list(whens)
        if whens is not None
        else [when] * len(data_list)
    )
    if len(when_list) != len(data_list):
        raise ValueError("whens must parallel lines")
    fast = engine.fast_expand
    out: List[List[int]] = []
    append = out.append
    if fast is None:
        # Scalar-oracle designs (MAC tree, cached MACs): the numpy pass
        # still ran, but the walk itself needs the oracle.
        expand = engine.expand_read_miss_deferred
        for line, at in zip(data_list, when_list):
            append(expand(line, at, core))
        return out
    counter_list = columns.counter_lines.tolist()
    mac_list = columns.mac_lines.tolist()
    for line, at, counter_line, mac_line in zip(
        data_list, when_list, counter_list, mac_list
    ):
        append(fast(line, at, core, counter_line, mac_line))
    return out


def design_uses_fast_path(design: SecureDesign) -> bool:
    """Public predicate for the fused-expansion eligibility boundary.

    Kept in one place so tests and docs can't drift from the engine: the
    fused path covers every design whose read walk is data + Bonsai
    counter chain + optional uncached MAC — i.e. everything except
    MAC-tree designs (IVEC) and hypothetical cached-MAC configurations,
    which stay on the scalar oracle.
    """
    from repro.secure.designs import TreeKind

    return design.tree_kind is not TreeKind.MAC_TREE and not design.macs_cached
