"""Secure-memory machinery: metadata layout, counters, MACs, integrity trees.

Functional plane:

* :mod:`repro.secure.metadata_layout` — where counters, MACs, parities and
  integrity-tree levels live in the physical line address space.
* :mod:`repro.secure.counters` — counter-line packing (8 x 56-bit counters +
  64-bit MAC, one counter and one MAC byte per chip) and the split-counter
  compression model.
* :mod:`repro.secure.mac` — per-line-type MAC computations.
* :mod:`repro.secure.counter_tree` — Bonsai-style 8-ary counter tree state.
* :mod:`repro.secure.memory` — the baseline SGX-like secure memory over a
  SECDED ECC-DIMM (the paper's SGX / SGX_O functional reference).
* :mod:`repro.secure.mac_tree` — the non-Bonsai Merkle MAC tree IVEC uses.

Timing plane:

* :mod:`repro.secure.designs` — Table II design descriptors.
* :mod:`repro.secure.timing_engine` — per-design metadata traffic expansion.
"""

from repro.secure.errors import (
    AttackDetected,
    SecureMemoryError,
    UncorrectableError,
)
from repro.secure.metadata_layout import MetadataLayout, Region

__all__ = [
    "AttackDetected",
    "SecureMemoryError",
    "UncorrectableError",
    "MetadataLayout",
    "Region",
]
