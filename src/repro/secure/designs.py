"""Design descriptors for every evaluated configuration (Table II).

A :class:`SecureDesign` tells the timing engine, for each data access, what
metadata moves and where it may be cached:

* ``mac_location`` — SEPARATE (a MAC region access per data access, the
  SGX/SGX_O/IVEC situation), ECC_CHIP (Synergy: MAC rides the data burst,
  zero extra traffic), or NONE (non-secure);
* ``counters_in_llc`` — SGX_O and Synergy spill counters to the LLC;
  SGX and IVEC keep them only in the dedicated cache;
* ``macs_in_llc`` — IVEC's MACs are tree members and LLC-cached;
* ``tree_kind`` — Bonsai counter tree vs IVEC's Merkle MAC tree vs none;
* ``counter_mode`` — monolithic 56-bit (8 lines covered per counter line)
  vs split (64 lines covered; Fig. 13);
* ``reliability`` — what the ECC chip / extra accesses provide; drives both
  write-side parity traffic and the reliability simulator's scheme choice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MacLocation(enum.Enum):
    """Where per-data-line MACs live."""

    NONE = "none"
    SEPARATE = "separate"  #: dedicated MAC region in memory
    ECC_CHIP = "ecc_chip"  #: co-located with data (Synergy)


class TreeKind(enum.Enum):
    """Integrity-tree structure."""

    NONE = "none"
    BONSAI_COUNTER = "bonsai_counter"
    MAC_TREE = "mac_tree"  #: non-Bonsai Merkle tree of MACs (IVEC)


class CounterMode(enum.Enum):
    """Encryption-counter organisation."""

    MONOLITHIC = "monolithic"  #: 8 x 56-bit counters per line
    SPLIT = "split"  #: 64-bit major + 7-bit minors; 64 lines per line


class Reliability(enum.Enum):
    """Error-correction scheme."""

    NONE = "none"
    SECDED = "secded"
    CHIPKILL = "chipkill"
    SYNERGY_PARITY = "synergy_parity"  #: MAC detect + 9-chip parity correct
    IVEC_PARITY = "ivec_parity"  #: MAC detect + parity in the ECC chip
    LOTECC = "lotecc"


@dataclass(frozen=True)
class SecureDesign:
    """Complete configuration of one evaluated design."""

    name: str
    encrypted: bool
    mac_location: MacLocation
    counters_in_llc: bool
    #: Table II "MAC caching": SGX/SGX_O cache MACs nowhere (every data
    #: access pays a MAC memory access); IVEC caches them in the LLC.
    macs_cached: bool
    macs_in_llc: bool
    tree_kind: TreeKind
    counter_mode: CounterMode
    reliability: Reliability
    #: Extra memory *write* per data write for a parity region (Synergy).
    parity_write_on_data_write: bool = False
    #: LOT-ECC tier-2 parity: read-modify-write per data write...
    lotecc_parity_rmw: bool = False
    #: ...unless write coalescing merges the read away.
    lotecc_write_coalescing: bool = False
    #: Non-Bonsai Merkle trees verify hashes *serially to the root on the
    #: read critical path* (data MACs are tree members, so the data cannot
    #: be consumed until the chain verifies). Bonsai counter-trees avoid
    #: this — counter verification overlaps OTP precomputation (Rogers et
    #: al., the paper's [14]). This is the latency cost behind IVEC's
    #: slowdown in Fig. 16.
    serial_tree_verification: bool = False
    #: Chipkill on x8 DIMMs lock-steps two channels (Fig. 1b): every access
    #: occupies both, halving channel-level parallelism.
    chipkill_lockstep: bool = False
    #: PoisonIvy-style speculation (§VII-B): data is consumed as soon as it
    #: arrives, with verification completing off the critical path. The
    #: metadata *bandwidth* is still spent — which is why the paper argues
    #: such designs "would benefit from the bandwidth savings provided by
    #: Synergy".
    speculative_verification: bool = False

    def __post_init__(self) -> None:
        if self.encrypted and self.tree_kind is TreeKind.NONE:
            raise ValueError("encrypted designs need replay protection")
        if not self.encrypted and self.mac_location is not MacLocation.NONE:
            raise ValueError("MACs without encryption not modelled")


NON_SECURE = SecureDesign(
    name="NonSecure",
    encrypted=False,
    mac_location=MacLocation.NONE,
    counters_in_llc=False,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.NONE,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SECDED,
)

SGX = SecureDesign(
    name="SGX",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=False,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SECDED,
)

SGX_O = SecureDesign(
    name="SGX_O",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SECDED,
)

SYNERGY = SecureDesign(
    name="Synergy",
    encrypted=True,
    mac_location=MacLocation.ECC_CHIP,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SYNERGY_PARITY,
    parity_write_on_data_write=True,
)

#: Synergy with counters only in the dedicated cache (Fig. 14 variant).
SYNERGY_DEDICATED = SecureDesign(
    name="Synergy_Dedicated",
    encrypted=True,
    mac_location=MacLocation.ECC_CHIP,
    counters_in_llc=False,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SYNERGY_PARITY,
    parity_write_on_data_write=True,
)

#: Split-counter variants (Fig. 13).
SGX_O_SPLIT = SecureDesign(
    name="SGX_O_Split",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.SPLIT,
    reliability=Reliability.SECDED,
)

SYNERGY_SPLIT = SecureDesign(
    name="Synergy_Split",
    encrypted=True,
    mac_location=MacLocation.ECC_CHIP,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.SPLIT,
    reliability=Reliability.SYNERGY_PARITY,
    parity_write_on_data_write=True,
)

#: IVEC on an ECC-DIMM (Fig. 15/16): non-Bonsai MAC tree, MACs in LLC,
#: split counters in the dedicated cache only, parity in the ECC chip
#: (no extra parity writes, but heavy MAC-tree traffic).
#:
#: Modelling note (see DESIGN.md): the paper's measured IVEC result (0.74x
#: performance, 1.9x EDP) is only consistent with the LLC MAC caching being
#: *ineffective* at eliding fetches — the non-Bonsai tree keeps MACs
#: untrusted until verified, so each access re-fetches its MAC while the
#: cached copies still displace data (cf. Rogers et al. [14]). We model
#: exactly that: ``macs_cached=False`` (fetch per access) with
#: ``macs_in_llc=True`` (pollution), plus per-level Merkle update traffic
#: and serial root-ward verification latency.
IVEC = SecureDesign(
    name="IVEC",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=False,
    macs_cached=False,
    macs_in_llc=True,
    tree_kind=TreeKind.MAC_TREE,
    counter_mode=CounterMode.SPLIT,
    reliability=Reliability.IVEC_PARITY,
    serial_tree_verification=True,
)

#: LOT-ECC layered on the secure baseline (Fig. 17): SGX_O security plus
#: tier-2 parity updates on every data write.
LOTECC = SecureDesign(
    name="LOTECC",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.LOTECC,
    lotecc_parity_rmw=True,
)

LOTECC_COALESCED = SecureDesign(
    name="LOTECC_WC",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.LOTECC,
    lotecc_parity_rmw=True,
    lotecc_write_coalescing=True,
)

#: Extension (§VI-B): a custom DIMM providing 16 metadata bytes per line
#: co-locates MAC *and* parity with the data — Synergy without the parity
#: write traffic. "Such organizations may be used for future standards on
#: reliable and secure memories."
SYNERGY_CUSTOM = SecureDesign(
    name="Synergy_Custom",
    encrypted=True,
    mac_location=MacLocation.ECC_CHIP,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SYNERGY_PARITY,
    parity_write_on_data_write=False,
)

#: Secure baseline with commercial Chipkill reliability (Fig. 1b): same
#: metadata behaviour as SGX_O, but every access lock-steps two channels.
CHIPKILL_SECURE = SecureDesign(
    name="Chipkill_Secure",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.CHIPKILL,
    chipkill_lockstep=True,
)

#: §VII-B extensions: PoisonIvy-style speculative verification layered on
#: the baseline and on Synergy. Speculation hides verification *latency*;
#: Synergy removes verification *bandwidth* — the ablation shows the two
#: compose (Synergy's gain persists under speculation because the
#: workloads are bandwidth-bound).
SGX_O_SPECULATIVE = SecureDesign(
    name="SGX_O_Spec",
    encrypted=True,
    mac_location=MacLocation.SEPARATE,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SECDED,
    speculative_verification=True,
)

SYNERGY_SPECULATIVE = SecureDesign(
    name="Synergy_Spec",
    encrypted=True,
    mac_location=MacLocation.ECC_CHIP,
    counters_in_llc=True,
    macs_cached=False,
    macs_in_llc=False,
    tree_kind=TreeKind.BONSAI_COUNTER,
    counter_mode=CounterMode.MONOLITHIC,
    reliability=Reliability.SYNERGY_PARITY,
    parity_write_on_data_write=True,
    speculative_verification=True,
)

ALL_DESIGNS = [
    NON_SECURE,
    SGX,
    SGX_O,
    SYNERGY,
    SYNERGY_DEDICATED,
    SGX_O_SPLIT,
    SYNERGY_SPLIT,
    IVEC,
    LOTECC,
    LOTECC_COALESCED,
    SYNERGY_CUSTOM,
    CHIPKILL_SECURE,
    SGX_O_SPECULATIVE,
    SYNERGY_SPECULATIVE,
]

_BY_NAME = {design.name: design for design in ALL_DESIGNS}


def design_by_name(name: str) -> SecureDesign:
    """Look up a design descriptor by its Table II name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            "unknown design %r; known: %s" % (name, ", ".join(sorted(_BY_NAME)))
        ) from None
