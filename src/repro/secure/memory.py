"""Baseline functional secure memory: SGX-like design over a SECDED ECC-DIMM.

This is the functional reference for the paper's SGX / SGX_O baselines
(Table II): counter-mode encryption with monolithic 56-bit counters, 64-bit
GMACs stored in a separate MAC region, a Bonsai counter tree, and SECDED
(72,64) in the ECC chip protecting each beat.

Reliability behaviour matches Section II-B: SECDED silently corrects
single-bit upsets; anything larger surfaces as a MAC mismatch which the
design *must* flag as an attack — it has no way to distinguish error from
tampering. Synergy (in :mod:`repro.core.synergy`) replaces exactly this
weakness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.keys import ProcessorKeys
from repro.dimm.geometry import (
    BEATS,
    DATA_CHIPS,
    ECC_CHIP,
    beat_word,
    join_lanes,
    split_into_lanes,
)
from repro.dimm.module import EccDimm
from repro.ecc.secded import Secded72_64, SecdedStatus
from repro.secure.counter_tree import CounterTree
from repro.secure.counters import (
    COUNTERS_PER_LINE,
    counter_line_payload_bytes,
)
from repro.secure.errors import AttackDetected, UncorrectableError
from repro.secure.mac import LineMacCalculator
from repro.secure.metadata_layout import MetadataLayout
from repro.util.stats import StatGroup
from repro.util.units import CACHELINE_BYTES

MAC_BYTES = 8


class BaselineSecureMemory:
    """SGX-like secure memory with SECDED reliability (functional plane).

    Parameters
    ----------
    num_data_lines:
        Protected data capacity in 64-byte lines (power of two).
    keys:
        Processor key material; defaults to a fixed development key.
    cache_capacity:
        Metadata-cache capacity in lines (None = unbounded). Smaller caches
        force deeper tree walks, which tests use to exercise verification.
    """

    __slots__ = (
        "layout",
        "dimm",
        "cipher",
        "mac_calc",
        "secded",
        "tree",
        "stats",
        "_written_lines",
        "_data_counters_seen",
    )

    def __init__(
        self,
        num_data_lines: int,
        keys: Optional[ProcessorKeys] = None,
        cache_capacity: Optional[int] = None,
    ):
        keys = keys or ProcessorKeys()
        self.layout = MetadataLayout(num_data_lines)
        self.dimm = EccDimm()
        self.cipher = keys.make_cipher()
        self.mac_calc = LineMacCalculator(keys.make_mac())
        self.secded = Secded72_64()
        self.tree = CounterTree(self.layout, self.mac_calc, self, cache_capacity)
        self.stats = StatGroup("baseline_secure_memory")
        self._written_lines: set = set()
        self._data_counters_seen: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # SECDED line encode/decode (every stored line, any region)
    # ------------------------------------------------------------------

    def _encode_line(self, payload: bytes) -> List[bytes]:
        """64-byte payload -> 9 lanes with per-beat SECDED in the ECC lane."""
        lanes = split_into_lanes(payload, bytes(BEATS))
        ecc = bytearray(BEATS)
        for beat in range(BEATS):
            word, _ = beat_word(lanes, beat)
            codeword = self.secded.encode(word)
            # Store the 8 check bits: the codeword's non-data content is
            # spread over bit positions; we stash the full 72-bit codeword's
            # parity byte compactly as (codeword >> 64) would lose position
            # info, so instead keep check bits by diffing data-extension.
            ecc[beat] = self._check_byte(codeword, word)
        return split_into_lanes(payload, bytes(ecc))

    @staticmethod
    def _check_byte(codeword: int, word: int) -> int:
        """Compress the 8 redundancy bits of a (72,64) codeword into a byte.

        The extended Hamming code has check bits at positions {0, 1, 2, 4,
        8, 16, 32, 64} of the codeword; everything else is data. Packing
        just those eight bits into the ECC byte is lossless.
        """
        del word
        positions = [0, 1, 2, 4, 8, 16, 32, 64]
        byte = 0
        for bit, position in enumerate(positions):
            if (codeword >> position) & 1:
                byte |= 1 << bit
        return byte

    @staticmethod
    def _rebuild_codeword(word: int, check: int) -> int:
        """Inverse of :meth:`_check_byte`: splice data + check bits back."""
        positions = [0, 1, 2, 4, 8, 16, 32, 64]
        codeword = 0
        data_positions = [
            p for p in range(1, 72) if p & (p - 1) != 0
        ]
        for bit_index, position in enumerate(data_positions):
            if (word >> bit_index) & 1:
                codeword |= 1 << position
        for bit, position in enumerate(positions):
            if (check >> bit) & 1:
                codeword |= 1 << position
        return codeword

    def _decode_line(self, address: int, lanes: List[bytes]) -> bytes:
        """9 lanes -> 64-byte payload, SECDED-correcting each beat."""
        payload, ecc = join_lanes(lanes)
        corrected = bytearray(payload)
        for beat in range(BEATS):
            word, _ = beat_word(lanes, beat)
            codeword = self._rebuild_codeword(word, ecc[beat])
            result = self.secded.decode(codeword)
            if result.status is SecdedStatus.DETECTED_UNCORRECTABLE:
                raise UncorrectableError(
                    "SECDED uncorrectable error in beat %d" % beat, address
                )
            if result.status is SecdedStatus.CORRECTED:
                self.stats.counter("secded_corrections").add()
            word = result.data
            for chip in range(DATA_CHIPS):
                corrected[beat * DATA_CHIPS + chip] = (word >> (8 * chip)) & 0xFF
        return bytes(corrected)

    def _store_payload(self, address: int, payload: bytes) -> None:
        self.dimm.write_line(address, self._encode_line(payload))
        self._written_lines.add(address)
        self.stats.counter("memory_writes").add()

    def _load_payload(self, address: int) -> Optional[bytes]:
        if address not in self._written_lines:
            return None
        self.stats.counter("memory_reads").add()
        return self._decode_line(address, self.dimm.read_line(address))

    # ------------------------------------------------------------------
    # LineStore protocol (counter/tree lines) for the CounterTree
    # ------------------------------------------------------------------

    def load_counter_line(self, address: int) -> Optional[Tuple[List[int], bytes]]:
        """Raw counters+MAC of a counter-type line (SECDED-corrected)."""
        payload = self._load_payload(address)
        if payload is None:
            return None
        counters = [
            int.from_bytes(payload[7 * i : 7 * i + 7], "big")
            for i in range(COUNTERS_PER_LINE)
        ]
        mac = payload[56:64]
        return counters, mac

    def store_counter_line(self, address: int, counters: List[int], mac: bytes) -> None:
        """Encode and store a counter-type line."""
        self._store_payload(address, counter_line_payload_bytes(counters, mac))

    # ------------------------------------------------------------------
    # Verified counter walk (SGX behaviour: mismatch == attack)
    # ------------------------------------------------------------------

    def fetch_verified_counters(self, address: int) -> List[int]:
        """Counters of a counter/tree line, verified up to the root.

        Recursive walk: a cached line is trusted; otherwise verify this
        line's MAC under its parent's (recursively verified) covering
        counter. Any mismatch is an attack — the baseline has no correction
        story beyond SECDED, which already ran during the load.
        """
        cached = self.tree.cache.lookup(address)
        if cached is not None:
            return cached
        counters, mac = self.tree.load_or_fresh(address)
        parent_address, parent_slot = self.layout.parent_of(address)
        if parent_address == -1:
            parent_value = self.tree.root
        else:
            parent_value = self.fetch_verified_counters(parent_address)[parent_slot]
        if mac is None:
            # Fresh line: parent slot must still be zero for consistency.
            if parent_value != 0:
                raise AttackDetected(
                    "missing counter line with non-zero parent", address
                )
        else:
            expected = self.mac_calc.counter_line_mac(address, parent_value, counters)
            if expected != mac:
                raise AttackDetected("counter line MAC mismatch", address)
        self.tree.cache.insert(address, counters)
        return counters

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def read(self, data_line: int) -> bytes:
        """Read and verify a 64-byte data line, returning plaintext."""
        self.stats.counter("reads").add()
        counter = self._current_counter(data_line)
        ciphertext = self._load_payload(data_line)
        if ciphertext is None:
            self._materialise_data_line(data_line, counter)
            ciphertext = self._load_payload(data_line)
        stored_mac = self._load_data_mac(data_line)
        expected = self.mac_calc.data_mac(data_line, counter, ciphertext)
        if expected != stored_mac:
            raise AttackDetected("data MAC mismatch", data_line)
        return self.cipher.decrypt(data_line, counter, ciphertext)

    def write(self, data_line: int, plaintext: bytes) -> None:
        """Encrypt, MAC, and store a 64-byte data line."""
        if len(plaintext) != CACHELINE_BYTES:
            raise ValueError("data lines are %d bytes" % CACHELINE_BYTES)
        self.stats.counter("writes").add()
        chain = self.layout.verification_chain(data_line)
        trusted = {
            address: self.fetch_verified_counters(address) for address, _ in chain
        }
        counter = self.tree.bump_chain(chain, trusted)
        ciphertext = self.cipher.encrypt(data_line, counter, plaintext)
        mac = self.mac_calc.data_mac(data_line, counter, ciphertext)
        self._store_payload(data_line, ciphertext)
        self._store_data_mac(data_line, mac)

    # -- data-line helpers ---------------------------------------------

    def _current_counter(self, data_line: int) -> int:
        counters = self.fetch_verified_counters(self.layout.counter_line(data_line))
        return counters[self.layout.counter_slot(data_line)]

    def _materialise_data_line(self, data_line: int, counter: int) -> None:
        """First touch of a never-written line: store encrypted zeros."""
        plaintext = bytes(CACHELINE_BYTES)
        ciphertext = self.cipher.encrypt(data_line, counter, plaintext)
        mac = self.mac_calc.data_mac(data_line, counter, ciphertext)
        self._store_payload(data_line, ciphertext)
        self._store_data_mac(data_line, mac)

    def _load_data_mac(self, data_line: int) -> bytes:
        mac_line = self.layout.mac_line(data_line)
        slot = self.layout.mac_slot(data_line)
        payload = self._load_payload(mac_line)
        if payload is None:
            payload = bytes(CACHELINE_BYTES)
        return payload[slot * MAC_BYTES : (slot + 1) * MAC_BYTES]

    def _store_data_mac(self, data_line: int, mac: bytes) -> None:
        mac_line = self.layout.mac_line(data_line)
        slot = self.layout.mac_slot(data_line)
        payload = self._load_payload(mac_line)
        if payload is None:
            payload = bytes(CACHELINE_BYTES)
        updated = bytearray(payload)
        updated[slot * MAC_BYTES : (slot + 1) * MAC_BYTES] = mac
        self._store_payload(mac_line, bytes(updated))
