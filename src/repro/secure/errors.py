"""Exception hierarchy for the secure-memory planes."""

from __future__ import annotations


class SecureMemoryError(Exception):
    """Base class for secure-memory failures."""


class AttackDetected(SecureMemoryError):
    """Integrity verification failed and no correction hypothesis resolved it.

    Raised for genuine tampering *and* for detected-uncorrectable errors:
    per Section III-B the system cannot distinguish the two, and declaring an
    attack is the only response that preserves security.
    """

    def __init__(self, message: str, line_address: int = -1):
        super().__init__(message)
        self.line_address = line_address


class UncorrectableError(SecureMemoryError):
    """A reliability code detected an error it cannot correct.

    In the baseline (SECDED) designs this is surfaced when a multi-bit error
    defeats the code; the enclosing secure layer then escalates to
    :class:`AttackDetected` because a MAC mismatch follows.
    """

    def __init__(self, message: str, line_address: int = -1):
        super().__init__(message)
        self.line_address = line_address
