"""Physical placement of security and reliability metadata.

One flat line-address space holds, in order: program data, encryption
counters, data MACs (baseline designs only — Synergy keeps MACs in the ECC
chip), Synergy parities, and the integrity-tree levels bottom-up. Storage
overheads match Section IV-A of the paper: counters 12.5%, MACs 12.5%,
parity 12.5%, tree ~1.8% for an 8-ary tree.

The tree is a Bonsai-style counter tree: its leaves are the encryption
counter lines; each tree line covers ``arity`` child lines; the counter that
verifies the single top-level line lives on-chip (the root of trust).
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.util.units import is_power_of_two

#: Sentinel parent address meaning "verified by the on-chip root register".
ROOT_PARENT = -1


class Region(enum.Enum):
    """Which kind of line an address refers to."""

    DATA = "data"
    COUNTER = "counter"
    MAC = "mac"
    PARITY = "parity"
    TREE = "tree"


class MetadataLayout:
    """Computes metadata addresses for every data line.

    Parameters
    ----------
    num_data_lines:
        Number of protected 64-byte program-data lines (power of two).
    arity:
        Fan-out of the counter tree and of every per-line metadata grouping
        (8 in the paper: 8 counters / MACs / parities per 64-byte line).
    """

    __slots__ = (
        "num_data_lines",
        "arity",
        "num_counter_lines",
        "num_mac_lines",
        "num_parity_lines",
        "counter_base",
        "mac_base",
        "parity_base",
        "tree_base",
        "tree_level_sizes",
        "tree_level_bases",
        "total_lines",
    )

    def __init__(self, num_data_lines: int, arity: int = 8):
        if not is_power_of_two(num_data_lines):
            raise ValueError("num_data_lines must be a power of two")
        if num_data_lines < arity:
            raise ValueError("need at least one full metadata line")
        if arity < 2:
            raise ValueError("arity must be at least 2")
        self.num_data_lines = num_data_lines
        self.arity = arity

        self.num_counter_lines = self._ceil_div(num_data_lines, arity)
        self.num_mac_lines = self._ceil_div(num_data_lines, arity)
        self.num_parity_lines = self._ceil_div(num_data_lines, arity)

        self.counter_base = num_data_lines
        self.mac_base = self.counter_base + self.num_counter_lines
        self.parity_base = self.mac_base + self.num_mac_lines
        self.tree_base = self.parity_base + self.num_parity_lines

        # Tree levels, bottom (level 0, covering counter lines) to top.
        self.tree_level_sizes: List[int] = []
        level_size = self._ceil_div(self.num_counter_lines, arity)
        while True:
            self.tree_level_sizes.append(level_size)
            if level_size == 1:
                break
            level_size = self._ceil_div(level_size, arity)
        self.tree_level_bases: List[int] = []
        cursor = self.tree_base
        for size in self.tree_level_sizes:
            self.tree_level_bases.append(cursor)
            cursor += size
        self.total_lines = cursor

    @staticmethod
    def _ceil_div(numerator: int, denominator: int) -> int:
        return -(-numerator // denominator)

    # -- region classification --------------------------------------------

    def region_of(self, address: int) -> Region:
        """Classify a line address into its region."""
        if not 0 <= address < self.total_lines:
            raise ValueError("address %d outside memory" % address)
        if address < self.counter_base:
            return Region.DATA
        if address < self.mac_base:
            return Region.COUNTER
        if address < self.parity_base:
            return Region.MAC
        if address < self.tree_base:
            return Region.PARITY
        return Region.TREE

    def tree_level_of(self, address: int) -> int:
        """Which tree level a TREE address belongs to."""
        if self.region_of(address) is not Region.TREE:
            raise ValueError("address %d is not a tree line" % address)
        for level in range(len(self.tree_level_bases) - 1, -1, -1):
            if address >= self.tree_level_bases[level]:
                return level
        raise AssertionError("unreachable")

    # -- per-data-line metadata -------------------------------------------

    def counter_line(self, data_line: int) -> int:
        """Address of the counter line covering ``data_line``."""
        self._check_data(data_line)
        return self.counter_base + data_line // self.arity

    def counter_slot(self, data_line: int) -> int:
        """Slot (0..arity-1) of ``data_line``'s counter within its line."""
        self._check_data(data_line)
        return data_line % self.arity

    def mac_line(self, data_line: int) -> int:
        """Address of the MAC line covering ``data_line`` (baseline designs)."""
        self._check_data(data_line)
        return self.mac_base + data_line // self.arity

    def mac_slot(self, data_line: int) -> int:
        """Slot of ``data_line``'s MAC within its MAC line."""
        self._check_data(data_line)
        return data_line % self.arity

    def parity_line(self, data_line: int) -> int:
        """Address of the Synergy parity line covering ``data_line``."""
        self._check_data(data_line)
        return self.parity_base + data_line // self.arity

    def parity_slot(self, data_line: int) -> int:
        """Slot (= chip index) of ``data_line``'s parity within its line."""
        self._check_data(data_line)
        return data_line % self.arity

    # -- tree navigation ----------------------------------------------------

    def tree_line(self, level: int, index: int) -> int:
        """Address of tree node ``index`` at ``level``."""
        if not 0 <= level < len(self.tree_level_sizes):
            raise ValueError("tree level out of range")
        if not 0 <= index < self.tree_level_sizes[level]:
            raise ValueError("tree index out of range")
        return self.tree_level_bases[level] + index

    def parent_of(self, address: int) -> Tuple[int, int]:
        """Parent (line address, slot) that verifies ``address``.

        Returns ``(ROOT_PARENT, 0)`` for the top tree line. Only counter and
        tree lines have parents (data lines are verified by their MAC, which
        is bound to a counter — the Bonsai property that keeps data MACs out
        of the tree).
        """
        region = self.region_of(address)
        if region is Region.COUNTER:
            index = address - self.counter_base
            return self.tree_line(0, index // self.arity), index % self.arity
        if region is Region.TREE:
            level = self.tree_level_of(address)
            index = address - self.tree_level_bases[level]
            if level == len(self.tree_level_sizes) - 1:
                return ROOT_PARENT, 0
            return (
                self.tree_line(level + 1, index // self.arity),
                index % self.arity,
            )
        raise ValueError("%s lines have no tree parent" % region.value)

    def verification_chain(self, data_line: int) -> List[Tuple[int, int]]:
        """The (line, slot) chain from the counter line up to the root.

        First element is the encryption-counter line, last element's parent
        is the on-chip root. This is the path the upward/downward traversal
        of Fig. 7 walks.
        """
        chain: List[Tuple[int, int]] = []
        address = self.counter_line(data_line)
        slot = self.counter_slot(data_line)
        chain.append((address, slot))
        while True:
            parent, parent_slot = self.parent_of(address)
            if parent == ROOT_PARENT:
                break
            chain.append((parent, parent_slot))
            address = parent
        return chain

    @property
    def tree_depth(self) -> int:
        """Number of in-memory tree levels."""
        return len(self.tree_level_sizes)

    def storage_overheads(self) -> dict:
        """Fractional storage overhead per metadata type (vs data)."""
        tree_lines = sum(self.tree_level_sizes)
        return {
            "counters": self.num_counter_lines / self.num_data_lines,
            "macs": self.num_mac_lines / self.num_data_lines,
            "parity": self.num_parity_lines / self.num_data_lines,
            "tree": tree_lines / self.num_data_lines,
        }

    def _check_data(self, data_line: int) -> None:
        if not 0 <= data_line < self.num_data_lines:
            raise ValueError("data line %d out of range" % data_line)
