"""Bonsai-style 8-ary counter tree state.

The tree's leaves are the encryption-counter lines; every level above holds
tree counters, eight per line plus a 64-bit MAC keyed by the *parent's*
counter; the single top line is keyed by an on-chip root register. Data MACs
are deliberately *not* part of the tree (the Bonsai property, Section II-A4)
— protecting the counters alone suffices to prevent replay of the whole
{Data, MAC, Counter} tuple, and it is what lets Synergy move data MACs into
the ECC chip without disturbing tree construction (Section VII-A1).

This class owns tree *state* (root register, on-chip metadata cache) and
mechanism (counter bumping along a verification chain); *policy* — how lines
are physically encoded and how mismatches are handled — belongs to the
owning memory class, which supplies a :class:`LineStore` and performs its
own walks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Protocol, Tuple

from repro.analysis.sanitizer import get_sanitizer
from repro.secure.counters import COUNTERS_PER_LINE
from repro.secure.mac import LineMacCalculator
from repro.secure.metadata_layout import ROOT_PARENT, MetadataLayout
from repro.telemetry import get_registry


class LineStore(Protocol):
    """Physical encode/decode of counter-type lines, supplied per design."""

    def load_counter_line(
        self, address: int
    ) -> Optional[Tuple[List[int], bytes]]:
        """Raw (counters, mac) from memory, or None if never written."""

    def store_counter_line(
        self, address: int, counters: List[int], mac: bytes
    ) -> None:
        """Encode and store a counter-type line."""


class MetadataCache:
    """On-chip cache of *trusted* counter lines (LRU, line-granular).

    Functional-plane semantics: a hit returns values immune to memory faults
    (they live on-chip), which is exactly the property the tree walk uses to
    terminate (Fig. 7: "this entry is assumed to be free from errors since
    it is found on-chip"). Capacity ``None`` means unbounded.
    """

    __slots__ = (
        "capacity",
        "_lines",
        "hits",
        "misses",
        "_t_hits",
        "_t_misses",
    )

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._lines: "OrderedDict[int, List[int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        registry = get_registry()
        self._t_hits = registry.counter("secure.tree_cache_hits")
        self._t_misses = registry.counter("secure.tree_cache_misses")

    def lookup(self, address: int) -> Optional[List[int]]:
        """Return trusted counters for ``address`` or None."""
        counters = self._lines.get(address)
        if counters is None:
            self.misses += 1
            self._t_misses.inc()
            return None
        self._lines.move_to_end(address)
        self.hits += 1
        self._t_hits.inc()
        return counters

    def contains(self, address: int) -> bool:
        """Presence check without touching hit/miss stats or LRU order."""
        return address in self._lines

    def insert(self, address: int, counters: List[int]) -> None:
        """Insert/refresh a trusted line, evicting LRU on overflow.

        The functional plane is write-through, so evictions are silent.
        """
        self._lines[address] = list(counters)
        self._lines.move_to_end(address)
        if self.capacity is not None and len(self._lines) > self.capacity:
            self._lines.popitem(last=False)

    def invalidate(self, address: int) -> None:
        """Drop a line (test hook to force walks deeper)."""
        self._lines.pop(address, None)

    def clear(self) -> None:
        """Drop everything."""
        self._lines.clear()


class CounterTree:
    """Counter state: root register, cache, and chain bumping."""

    __slots__ = (
        "layout",
        "mac_calc",
        "store",
        "cache",
        "root",
        "_sanitizer",
    )

    def __init__(
        self,
        layout: MetadataLayout,
        mac_calc: LineMacCalculator,
        store: LineStore,
        cache_capacity: Optional[int] = None,
    ):
        self.layout = layout
        self.mac_calc = mac_calc
        self.store = store
        self.cache = MetadataCache(cache_capacity)
        self.root = 0
        # None unless REPRO_SANITIZE is on; bump_chain re-verifies every
        # stored line against its new parent when set.
        self._sanitizer = get_sanitizer()

    # -- chain helpers ------------------------------------------------------

    def parent_value(
        self, chain: List[Tuple[int, int]], index: int, trusted: Dict[int, List[int]]
    ) -> int:
        """The counter that keys the MAC of ``chain[index]``'s line.

        For the top line it is the on-chip root; otherwise it is the covering
        slot in the next line up, whose trusted values the caller provides.
        """
        if index == len(chain) - 1:
            return self.root
        parent_address, parent_slot = chain[index + 1]
        return trusted[parent_address][parent_slot]

    def fresh_line(self) -> List[int]:
        """Counters of a never-written line (all zero)."""
        return [0] * COUNTERS_PER_LINE

    def load_or_fresh(self, address: int) -> Tuple[List[int], Optional[bytes]]:
        """Load raw line content; a never-written line materialises as zeros.

        Returns (counters, mac); mac is None for fresh lines — the caller
        treats a fresh line as implicitly valid (its parent slot must also be
        zero in any untampered execution) and writes it back properly.
        """
        loaded = self.store.load_counter_line(address)
        if loaded is None:
            return self.fresh_line(), None
        return loaded

    # -- mutation -----------------------------------------------------------

    def bump_chain(
        self, chain: List[Tuple[int, int]], trusted: Dict[int, List[int]]
    ) -> int:
        """Increment the write counters along a verification chain.

        ``trusted`` maps every chain line address to its current verified
        counters (the caller obtained them via its walk). Increments the
        covering slot at every level plus the root, recomputes each line's
        MAC under its *new* parent value, stores the lines, refreshes the
        cache, and returns the new leaf (encryption) counter.
        """
        for address, _ in chain:
            if address not in trusted:
                raise KeyError("chain line %d not in trusted set" % address)
        updated: Dict[int, List[int]] = {
            address: list(trusted[address]) for address, _ in chain
        }
        for address, slot in chain:
            updated[address][slot] += 1
        self.root += 1
        # Recompute MACs with the incremented parent values, top-down so the
        # ordering mirrors hardware (parents final before children signed —
        # functionally order-free since values are already settled).
        for index in range(len(chain) - 1, -1, -1):
            address, _ = chain[index]
            parent = self.parent_value(chain, index, updated)
            mac = self.mac_calc.counter_line_mac(address, parent, updated[address])
            self.store.store_counter_line(address, updated[address], mac)
            self.cache.insert(address, updated[address])
        if self._sanitizer is not None:
            self._sanitizer.check_counter_chain(self, chain, trusted, updated)
        leaf_address, leaf_slot = chain[0]
        return updated[leaf_address][leaf_slot]
