"""Counter-cacheline packing and the split-counter compression model.

Monolithic organisation (SGX, SGX_O, Synergy — Table II): a 64-byte counter
line holds eight 56-bit write counters plus one 64-bit MAC, arranged so that
chip ``i`` supplies counter ``i`` (7 bytes) and byte ``i`` of the MAC
(Fig. 7a). A failing chip therefore corrupts exactly one counter and one MAC
byte — the property Synergy's ParityC reconstruction relies on.

Split organisation (Yan et al., evaluated in Fig. 13): one 64-bit major
counter per page shared by 64 lines with 7-bit per-line minors. We model its
functional effect (counter value = major << 7 | minor, minor overflow bumps
major and re-encrypts the page) and, for the timing plane, its 8x better
counter-line coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.ecc.parity import xor_parity
from repro.util.units import CACHELINE_BYTES

COUNTERS_PER_LINE = 8
COUNTER_BITS = 56
COUNTER_BYTES = COUNTER_BITS // 8
MAC_BYTES = 8
COUNTER_LIMIT = 1 << COUNTER_BITS


def pack_counter_payload(counters: Sequence[int]) -> bytes:
    """Serialise the eight 56-bit counters (the MAC'd payload, 56 bytes)."""
    if len(counters) != COUNTERS_PER_LINE:
        raise ValueError("expected %d counters" % COUNTERS_PER_LINE)
    payload = bytearray()
    for counter in counters:
        if not 0 <= counter < COUNTER_LIMIT:
            raise ValueError("counter exceeds 56 bits")
        payload.extend(counter.to_bytes(COUNTER_BYTES, "big"))
    return bytes(payload)


def counter_line_lanes(counters: Sequence[int], mac: bytes) -> List[bytes]:
    """Pack counters + MAC into the eight data-chip lanes (chip-aligned).

    Lane ``i`` = counter ``i`` (7 bytes) || MAC byte ``i``. The ninth (ECC
    chip) lane is design-dependent — ParityC under Synergy, SECDED bytes in
    the baseline — and is appended by the caller.
    """
    if len(mac) != MAC_BYTES:
        raise ValueError("MAC must be %d bytes" % MAC_BYTES)
    if len(counters) != COUNTERS_PER_LINE:
        raise ValueError("expected %d counters" % COUNTERS_PER_LINE)
    lanes = []
    for index, counter in enumerate(counters):
        if not 0 <= counter < COUNTER_LIMIT:
            raise ValueError("counter exceeds 56 bits")
        lanes.append(counter.to_bytes(COUNTER_BYTES, "big") + mac[index : index + 1])
    return lanes


def unpack_counter_lanes(lanes: Sequence[bytes]) -> Tuple[List[int], bytes]:
    """Inverse of :func:`counter_line_lanes` for the eight data-chip lanes."""
    if len(lanes) != COUNTERS_PER_LINE:
        raise ValueError("expected %d data-chip lanes" % COUNTERS_PER_LINE)
    counters = []
    mac = bytearray()
    for lane in lanes:
        if len(lane) != COUNTER_BYTES + 1:
            raise ValueError("counter lanes are 8 bytes")
        counters.append(int.from_bytes(lane[:COUNTER_BYTES], "big"))
        mac.append(lane[COUNTER_BYTES])
    return counters, bytes(mac)


def counter_parity(lanes: Sequence[bytes]) -> bytes:
    """ParityC / ParityT: XOR of the eight counter-carrying chip lanes."""
    if len(lanes) != COUNTERS_PER_LINE:
        raise ValueError("ParityC covers the 8 data chips")
    return xor_parity(list(lanes))


def counter_line_payload_bytes(counters: Sequence[int], mac: bytes) -> bytes:
    """The 64-byte view of a counter line (counters then MAC)."""
    payload = pack_counter_payload(counters) + bytes(mac)
    if len(payload) != CACHELINE_BYTES:
        raise AssertionError("counter line must be 64 bytes")
    return payload


@dataclass(frozen=True)
class SplitCounterConfig:
    """Parameters of the split-counter organisation (Fig. 13 sensitivity).

    ``lines_per_major`` lines share one major counter; each line keeps a
    ``minor_bits``-wide minor. One 64-byte counter line then covers
    ``lines_per_major`` data lines instead of 8 — the timing plane uses
    ``coverage`` to size counter-region footprints and cacheability.
    """

    major_bits: int = 64
    minor_bits: int = 7
    lines_per_major: int = 64

    @property
    def coverage(self) -> int:
        """Data lines covered by one 64-byte counter line."""
        return self.lines_per_major

    @property
    def minor_limit(self) -> int:
        """Writes before a minor overflows and forces a page re-encryption."""
        return 1 << self.minor_bits


class SplitCounterPage:
    """Functional split-counter state for one page of lines.

    Tracks a shared major and per-line minors; ``bump`` returns the effective
    counter value for encryption plus the set of lines that must be
    re-encrypted when a minor overflow rolls the major forward.
    """

    __slots__ = (
        "config",
        "major",
        "minors",
    )

    def __init__(self, config: SplitCounterConfig = SplitCounterConfig()):
        self.config = config
        self.major = 0
        self.minors = [0] * config.lines_per_major

    def value(self, line_index: int) -> int:
        """Effective counter for ``line_index`` (major||minor)."""
        return (self.major << self.config.minor_bits) | self.minors[line_index]

    def bump(self, line_index: int) -> Tuple[int, List[int]]:
        """Increment the line's counter; returns (new value, lines to re-encrypt).

        On minor overflow the major increments, every minor resets, and all
        other lines of the page must be re-encrypted under their new
        effective counters (the well-known split-counter write amplification).
        """
        if not 0 <= line_index < self.config.lines_per_major:
            raise ValueError("line_index out of page")
        self.minors[line_index] += 1
        if self.minors[line_index] < self.config.minor_limit:
            return self.value(line_index), []
        self.major += 1
        self.minors = [0] * self.config.lines_per_major
        others = [i for i in range(self.config.lines_per_major) if i != line_index]
        return self.value(line_index), others
