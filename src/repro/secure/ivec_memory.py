"""Functional IVEC-style memory: MAC-tree integrity + parity correction.

IVEC (Huang & Suh, ISCA 2010 — the paper's closest prior work) combines
security and reliability for commodity DIMMs: per-line MACs double as error
detectors, a Merkle MAC tree provides replay protection, and a small parity
corrects the errors the MACs detect. On an ECC-DIMM (the paper's Fig. 15
configuration) the parity rides the ECC chip.

This functional model mirrors :class:`repro.core.synergy.SynergyMemory`'s
interface so tests can compare the two co-designs' correction behaviour
directly. Differences from Synergy:

* the data MAC lives in a separate MAC region (tree leaf), *not* the ECC
  chip — so each line's ECC lane carries the line's own parity instead,
  and correction needs no separate parity-region access;
* integrity comes from the MAC tree, not a counter tree: any MAC update
  re-hashes the path to the on-chip root;
* correction capability: any single-chip error within the 8 data chips of
  a line (the parity covers the 8 data lanes; the MAC lane is protected by
  the tree structure itself).
"""

from __future__ import annotations

from typing import List, Optional

from repro.crypto.keys import ProcessorKeys
from repro.dimm.geometry import DATA_CHIPS, ECC_CHIP, join_lanes, split_into_lanes
from repro.dimm.module import EccDimm
from repro.ecc.parity import xor_parity
from repro.secure.errors import AttackDetected
from repro.secure.mac import LineMacCalculator
from repro.secure.mac_tree import MacTree
from repro.util.stats import StatGroup
from repro.util.units import CACHELINE_BYTES


class IvecMemory:
    """Functional IVEC on a 9-chip ECC-DIMM (parity in the ECC chip)."""

    __slots__ = (
        "num_data_lines",
        "dimm",
        "cipher",
        "mac_calc",
        "tree",
        "stats",
        "_counters",
        "_written",
    )

    def __init__(
        self,
        num_data_lines: int,
        keys: Optional[ProcessorKeys] = None,
    ):
        if num_data_lines < 1:
            raise ValueError("need at least one line")
        keys = keys or ProcessorKeys()
        self.num_data_lines = num_data_lines
        self.dimm = EccDimm()
        self.cipher = keys.make_cipher()
        self.mac_calc = LineMacCalculator(keys.make_mac())
        self.tree = MacTree(num_data_lines, keys.make_mac())
        self.stats = StatGroup("ivec_memory")
        # IVEC uses simple per-line write counters for encryption (split
        # counters in the original; a flat map suffices functionally).
        self._counters = {}
        self._written: set = set()

    # ------------------------------------------------------------------

    def _check_line(self, data_line: int) -> None:
        if not 0 <= data_line < self.num_data_lines:
            raise ValueError("line out of range")

    def write(self, data_line: int, plaintext: bytes) -> None:
        """Encrypt, store with in-line parity, install the MAC as a leaf."""
        self._check_line(data_line)
        if len(plaintext) != CACHELINE_BYTES:
            raise ValueError("lines are %d bytes" % CACHELINE_BYTES)
        self.stats.counter("writes").add()
        counter = self._counters.get(data_line, 0) + 1
        self._counters[data_line] = counter
        ciphertext = self.cipher.encrypt(data_line, counter, plaintext)
        mac = self.mac_calc.data_mac(data_line, counter, ciphertext)
        lanes = split_into_lanes(ciphertext, bytes(8))
        parity = xor_parity(list(lanes[:DATA_CHIPS]))
        self.dimm.write_line(data_line, lanes[:DATA_CHIPS] + [parity])
        self.tree.update_leaf(data_line, mac)
        self._written.add(data_line)

    def read(self, data_line: int) -> bytes:
        """Read, verify against the MAC tree, correct single-chip errors."""
        self._check_line(data_line)
        self.stats.counter("reads").add()
        if data_line not in self._written:
            return bytes(CACHELINE_BYTES)
        counter = self._counters[data_line]
        trusted_mac = self.tree.verify_leaf(data_line)
        lanes = self.dimm.read_line(data_line)
        ciphertext, _parity = join_lanes(lanes)
        expected = self.mac_calc.data_mac(data_line, counter, ciphertext)
        if expected == trusted_mac:
            return self.cipher.decrypt(data_line, counter, ciphertext)

        # MAC mismatch: try reconstructing each data chip from the in-line
        # parity (the ECC lane), verifying each hypothesis with the MAC.
        self.stats.counter("mismatches").add()
        parity = lanes[ECC_CHIP]
        for chip in range(DATA_CHIPS):
            others = [lanes[i] for i in range(DATA_CHIPS) if i != chip]
            rebuilt = xor_parity(others + [parity])
            repaired = list(lanes[:DATA_CHIPS])
            repaired[chip] = rebuilt
            candidate, _ = join_lanes(repaired + [parity])
            if self.mac_calc.data_mac(data_line, counter, candidate) == trusted_mac:
                self.stats.counter("corrections").add()
                self.dimm.write_line(data_line, repaired + [xor_parity(repaired)])
                return self.cipher.decrypt(data_line, counter, candidate)
        raise AttackDetected("uncorrectable error or attack (IVEC)", data_line)

    # ------------------------------------------------------------------

    @property
    def tree_depth(self) -> int:
        """Depth of the integrity MAC tree."""
        return self.tree.depth
