"""Functional model of a 9-chip x8 ECC-DIMM.

A 64-byte cacheline is transferred in a burst of 8 beats over a 72-bit bus;
each of the nine x8 chips contributes one byte per beat, so each chip owns an
8-byte *lane* of every 72-byte line. The ECC chip's lane holds SECDED check
bytes on a conventional DIMM — or, under Synergy, the cacheline MAC.

* :mod:`repro.dimm.geometry` — bus/chip/beat constants and the lane maths.
* :mod:`repro.dimm.chips` — per-chip byte storage with fault hooks.
* :mod:`repro.dimm.faults` — chip-fault descriptors at the granularities of
  the Sridharan field study (bit, word, column, row, bank, chip).
* :mod:`repro.dimm.module` — the 9-chip DIMM assembling lanes into lines.
"""

from repro.dimm.chips import SimulatedChip
from repro.dimm.faults import ChipFault, FaultKind
from repro.dimm.geometry import DimmGeometry
from repro.dimm.module import EccDimm

__all__ = ["SimulatedChip", "ChipFault", "FaultKind", "DimmGeometry", "EccDimm"]
