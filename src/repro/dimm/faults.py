"""Chip-fault descriptors for the functional DIMM.

Faults follow the granularities of the Sridharan & Liberty field study
(Table I of the paper): single bit, word, column, row, bank, and whole-chip.
A fault corrupts the bytes a chip returns for the addresses it covers;
*permanent* faults corrupt every read, *transient* faults are modelled as a
corruption already resident in the stored value (injected once).

The functional plane uses these to drive the exact detection/correction flows
of Figs. 5 and 7; the reliability simulator has its own, purely statistical
fault representation in :mod:`repro.reliability.faults`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dimm.geometry import LANE_BYTES
from repro.util.rng import DeterministicRng


class FaultKind(enum.Enum):
    """Granularity of a chip fault (Table I failure modes)."""

    SINGLE_BIT = "single_bit"
    SINGLE_WORD = "single_word"
    SINGLE_COLUMN = "single_column"
    SINGLE_ROW = "single_row"
    SINGLE_BANK = "single_bank"
    WHOLE_CHIP = "whole_chip"


@dataclass
class ChipFault:
    """An active fault on one chip of the functional DIMM.

    ``line_address`` anchors the fault; which addresses are affected depends
    on ``kind`` together with the row/bank geometry supplied by the chip.
    Corruption is deterministic given ``seed`` so tests are reproducible.
    """

    kind: FaultKind
    line_address: int = 0
    bit_index: int = 0  # for SINGLE_BIT / SINGLE_COLUMN: which bit of the lane
    seed: int = 0
    rows_per_bank: int = 64
    _rng: Optional[DeterministicRng] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.bit_index < 8 * LANE_BYTES:
            raise ValueError("bit_index must address one of the 64 lane bits")
        self._rng = DeterministicRng(self.seed)

    # -- address coverage --------------------------------------------------

    def affects(self, line_address: int) -> bool:
        """Does this fault corrupt reads of ``line_address``?"""
        if self.kind in (FaultKind.SINGLE_BIT, FaultKind.SINGLE_WORD):
            return line_address == self.line_address
        if self.kind == FaultKind.SINGLE_COLUMN:
            # Same column = same offset within the row, across all rows of
            # one bank. With rows_per_bank lines per row-group, lines that
            # share (address mod rows) share a column position.
            return (line_address % self.rows_per_bank) == (
                self.line_address % self.rows_per_bank
            )
        if self.kind == FaultKind.SINGLE_ROW:
            row = self.line_address // self.rows_per_bank
            return line_address // self.rows_per_bank == row
        if self.kind in (FaultKind.SINGLE_BANK, FaultKind.WHOLE_CHIP):
            return True
        raise AssertionError("unreachable fault kind")

    # -- corruption --------------------------------------------------------

    def corrupt(self, line_address: int, lane: bytes) -> bytes:
        """Return the corrupted lane the chip produces for this address."""
        if not self.affects(line_address):
            return lane
        if self.kind in (FaultKind.SINGLE_BIT, FaultKind.SINGLE_COLUMN):
            byte_index, bit = divmod(self.bit_index, 8)
            corrupted = bytearray(lane)
            corrupted[byte_index] ^= 1 << bit
            return bytes(corrupted)
        # Word/row/bank/chip faults scramble the whole lane, deterministically
        # per address so repeated reads see a stable wrong value.
        scramble_rng = self._rng.fork(line_address)
        mask = scramble_rng.randbytes(len(lane))
        if all(b == 0 for b in mask):
            mask = b"\x01" + mask[1:]
        return bytes(b ^ m for b, m in zip(lane, mask))
