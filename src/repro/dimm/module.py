"""The 9-chip ECC-DIMM: assembles per-chip lanes into 72-byte lines."""

from __future__ import annotations

from typing import List, Sequence

from repro.dimm.chips import SimulatedChip
from repro.dimm.faults import ChipFault
from repro.dimm.geometry import LANE_BYTES, TOTAL_CHIPS


class EccDimm:
    """One rank of nine x8 chips addressed by cacheline index.

    The DIMM knows nothing about what the lanes *mean* (data, ECC, MAC,
    parity, counters) — interpretation belongs to the secure-memory layers.
    It provides exactly what hardware provides: write nine lanes, read nine
    lanes (possibly corrupted by chip faults).
    """

    def __init__(self):
        self.chips = [SimulatedChip(index) for index in range(TOTAL_CHIPS)]

    def write_line(self, line_address: int, lanes: Sequence[bytes]) -> None:
        """Store a full line as nine 8-byte lanes."""
        if len(lanes) != TOTAL_CHIPS:
            raise ValueError("expected %d lanes" % TOTAL_CHIPS)
        for chip, lane in zip(self.chips, lanes):
            chip.write(line_address, lane)

    def read_line(self, line_address: int) -> List[bytes]:
        """Read a full line; chip faults corrupt their lanes."""
        return [chip.read(line_address) for chip in self.chips]

    def write_lane(self, line_address: int, chip_index: int, lane: bytes) -> None:
        """Overwrite one chip's lane (scrubbing / correction write-back)."""
        self.chips[chip_index].write(line_address, lane)

    def inject_fault(self, chip_index: int, fault: ChipFault) -> None:
        """Inject a fault into one chip."""
        if not 0 <= chip_index < TOTAL_CHIPS:
            raise ValueError("chip_index out of range")
        self.chips[chip_index].inject_fault(fault)

    def clear_faults(self) -> None:
        """Clear all faults on all chips."""
        for chip in self.chips:
            chip.clear_faults()

    @property
    def faulty_chips(self) -> List[int]:
        """Indices of chips with at least one active fault."""
        return [chip.chip_index for chip in self.chips if chip.has_faults]

    @staticmethod
    def blank_lane() -> bytes:
        """An all-zero 8-byte lane."""
        return bytes(LANE_BYTES)
