"""A single simulated x8 DRAM chip: lane storage plus fault application."""

from __future__ import annotations

from typing import Dict, List

from repro.dimm.faults import ChipFault
from repro.dimm.geometry import LANE_BYTES


class SimulatedChip:
    """Sparse byte storage for one chip's 8-byte lane per line.

    Reads pass through any active faults (permanent-fault semantics: the
    stored value stays clean, the *returned* value is corrupted, so clearing
    the fault restores correct reads — matching a transient upset being
    overwritten or a faulty device being replaced).
    """

    def __init__(self, chip_index: int):
        self.chip_index = chip_index
        self._lanes: Dict[int, bytes] = {}
        self._faults: List[ChipFault] = []

    def write(self, line_address: int, lane: bytes) -> None:
        """Store the 8-byte lane for ``line_address``."""
        if len(lane) != LANE_BYTES:
            raise ValueError("lane must be %d bytes" % LANE_BYTES)
        self._lanes[line_address] = bytes(lane)

    def read(self, line_address: int) -> bytes:
        """Read the lane, applying active faults."""
        lane = self._lanes.get(line_address, bytes(LANE_BYTES))
        for fault in self._faults:
            lane = fault.corrupt(line_address, lane)
        return lane

    def read_raw(self, line_address: int) -> bytes:
        """Read the stored (fault-free) lane; test/diagnostic use only."""
        return self._lanes.get(line_address, bytes(LANE_BYTES))

    def inject_fault(self, fault: ChipFault) -> None:
        """Activate a fault on this chip."""
        self._faults.append(fault)

    def clear_faults(self) -> None:
        """Deactivate all faults (device repair / transient scrubbed)."""
        self._faults.clear()

    @property
    def has_faults(self) -> bool:
        """Whether any fault is active."""
        return bool(self._faults)
