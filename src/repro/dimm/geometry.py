"""Geometry of the x8 ECC-DIMM: chips, beats, lanes.

The mapping between a 64-byte cacheline plus 8 ECC/MAC bytes and the nine
per-chip lanes is the foundation everything else builds on:

* data byte ``beat * 8 + chip`` travels on chip ``chip`` during ``beat``;
* the ECC chip (index 8) carries one byte per beat (ECC, MAC, or parity
  depending on the design and line type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.util.units import CACHELINE_BYTES

DATA_CHIPS = 8
ECC_CHIP = 8
TOTAL_CHIPS = 9
BEATS = 8
LANE_BYTES = BEATS  # one byte per beat -> 8 bytes per chip per line


@dataclass(frozen=True)
class DimmGeometry:
    """Line capacity of one rank of the simulated DIMM."""

    num_lines: int

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ValueError("num_lines must be positive")

    @property
    def data_bytes_per_line(self) -> int:
        """Payload bytes per line (excluding the ECC chip lane)."""
        return CACHELINE_BYTES

    @property
    def total_bytes_per_line(self) -> int:
        """Payload plus ECC lane."""
        return CACHELINE_BYTES + LANE_BYTES


def split_into_lanes(data: bytes, ecc: bytes) -> List[bytes]:
    """Pack 64 data bytes + 8 ECC-lane bytes into nine 8-byte chip lanes."""
    if len(data) != CACHELINE_BYTES:
        raise ValueError("data must be %d bytes" % CACHELINE_BYTES)
    if len(ecc) != LANE_BYTES:
        raise ValueError("ecc lane must be %d bytes" % LANE_BYTES)
    lanes = []
    for chip in range(DATA_CHIPS):
        lanes.append(bytes(data[beat * DATA_CHIPS + chip] for beat in range(BEATS)))
    lanes.append(bytes(ecc))
    return lanes


def join_lanes(lanes: Sequence[bytes]) -> tuple:
    """Unpack nine chip lanes back into (64 data bytes, 8 ECC-lane bytes)."""
    if len(lanes) != TOTAL_CHIPS:
        raise ValueError("expected %d lanes" % TOTAL_CHIPS)
    if any(len(lane) != LANE_BYTES for lane in lanes):
        raise ValueError("each lane must be %d bytes" % LANE_BYTES)
    data = bytearray(CACHELINE_BYTES)
    for chip in range(DATA_CHIPS):
        for beat in range(BEATS):
            data[beat * DATA_CHIPS + chip] = lanes[chip][beat]
    return bytes(data), bytes(lanes[ECC_CHIP])


def beat_word(lanes: Sequence[bytes], beat: int) -> tuple:
    """The 64-bit data word and ECC byte transferred in one beat.

    A conventional ECC-DIMM protects each beat independently with
    SECDED(72,64); this helper extracts that codeword's two halves.
    """
    if not 0 <= beat < BEATS:
        raise ValueError("beat out of range")
    word = 0
    for chip in range(DATA_CHIPS):
        word |= lanes[chip][beat] << (8 * chip)
    return word, lanes[ECC_CHIP][beat]
