"""Tests for GHASH and the 64-bit GMAC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ghash import GHash
from repro.crypto.gmac import MAC_BYTES, Gmac64

KEY = bytes(range(16))


class TestGHash:
    def test_subkey_length_checked(self):
        with pytest.raises(ValueError):
            GHash(b"short")

    def test_deterministic(self):
        ghash = GHash(KEY)
        assert ghash.digest(b"hello") == ghash.digest(b"hello")

    def test_length_matters(self):
        ghash = GHash(KEY)
        # Same bytes padded differently must hash differently (length block).
        assert ghash.digest(b"a") != ghash.digest(b"a" + b"\x00")

    def test_empty_input(self):
        assert len(GHash(KEY).digest(b"")) == 16

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=100))
    def test_digest_is_16_bytes(self, data):
        assert len(GHash(KEY).digest(data)) == 16


class TestGmac64:
    def test_tag_length(self):
        assert len(Gmac64(KEY).tag(0, 0, b"x" * 64)) == MAC_BYTES

    def test_verify_roundtrip(self):
        gmac = Gmac64(KEY)
        tag = gmac.tag(0x40, 7, b"payload" * 8)
        assert gmac.verify(0x40, 7, b"payload" * 8, tag)

    def test_address_binding(self):
        gmac = Gmac64(KEY)
        assert gmac.tag(1, 5, b"x" * 64) != gmac.tag(2, 5, b"x" * 64)

    def test_counter_binding(self):
        gmac = Gmac64(KEY)
        assert gmac.tag(1, 5, b"x" * 64) != gmac.tag(1, 6, b"x" * 64)

    def test_payload_binding(self):
        gmac = Gmac64(KEY)
        assert gmac.tag(1, 5, b"x" * 64) != gmac.tag(1, 5, b"y" + b"x" * 63)

    def test_key_binding(self):
        other = bytes([1]) + KEY[1:]
        assert Gmac64(KEY).tag(1, 5, b"x" * 64) != Gmac64(other).tag(1, 5, b"x" * 64)

    def test_large_counter_accepted(self):
        # Corrupted counters can be up to 56 bits; tagging must not raise.
        gmac = Gmac64(KEY)
        tag = gmac.tag(3, (1 << 56) - 1, b"z" * 64)
        assert len(tag) == MAC_BYTES

    def test_verify_rejects_wrong_tag(self):
        gmac = Gmac64(KEY)
        tag = bytearray(gmac.tag(9, 1, b"w" * 64))
        tag[0] ^= 1
        assert not gmac.verify(9, 1, b"w" * 64, bytes(tag))

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=64, max_size=64), st.integers(0, 2**32))
    def test_single_byte_change_detected(self, payload, counter):
        gmac = Gmac64(KEY)
        tag = gmac.tag(0x123, counter, payload)
        corrupted = bytes([payload[0] ^ 0xFF]) + payload[1:]
        assert not gmac.verify(0x123, counter, corrupted, tag)
