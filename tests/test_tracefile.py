"""Trace file I/O tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import MemoryOp, Trace, TraceRecord
from repro.cpu.tracefile import (
    format_record,
    iter_trace,
    load_trace,
    parse_record,
    save_trace,
)
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        st.integers(0, 10_000),
        st.sampled_from([MemoryOp.READ, MemoryOp.WRITE]),
        st.integers(0, 2**40),
    ),
    min_size=0,
    max_size=50,
)


class TestRecordFormat:
    def test_format(self):
        record = TraceRecord(12, MemoryOp.READ, 0xABC)
        assert format_record(record) == "12 R 0xabc"

    def test_parse(self):
        record = parse_record("12 W 0xabc")
        assert record == TraceRecord(12, MemoryOp.WRITE, 0xABC)

    def test_parse_decimal_address(self):
        assert parse_record("0 R 64").line_address == 64

    def test_parse_errors(self):
        for bad in ("", "1 R", "x R 0x1", "1 Q 0x1", "1 R zz"):
            with pytest.raises(ValueError):
                parse_record(bad)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(0, 10**6),
        st.sampled_from([MemoryOp.READ, MemoryOp.WRITE]),
        st.integers(0, 2**48),
    )
    def test_roundtrip_property(self, gap, op, address):
        record = TraceRecord(gap, op, address)
        assert parse_record(format_record(record)) == record


class TestFileIo:
    @settings(max_examples=10, deadline=None)
    @given(records_strategy)
    def test_save_load_roundtrip(self, records):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.trace"
            save_trace(records, path)
            loaded = load_trace(path)
            assert list(loaded) == records

    def test_gzip_roundtrip(self, tmp_path):
        trace = generate_trace(profile_by_name("gcc"), 200)
        path = tmp_path / "gcc.trace.gz"
        count = save_trace(trace, path)
        assert count == 200
        loaded = load_trace(path)
        assert list(loaded) == list(trace)
        assert loaded.name == "gcc.trace"

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\n3 R 0x10\n")
        assert list(iter_trace(path)) == [TraceRecord(3, MemoryOp.READ, 0x10)]

    def test_error_reports_location(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("3 R 0x10\nbogus line\n")
        with pytest.raises(ValueError, match=":2:"):
            list(iter_trace(path))

    def test_loaded_trace_drives_simulation(self, tmp_path):
        from repro.secure.designs import SYNERGY
        from repro.sim.config import SystemConfig
        from repro.sim.system import SystemSimulator

        trace = generate_trace(profile_by_name("gcc"), 300, scale_divisor=16)
        path = tmp_path / "gcc.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        config = SystemConfig(num_cores=1, accesses_per_core=300)
        sim = SystemSimulator(SYNERGY, [loaded], config).run()
        assert sim.total_instructions == Trace(list(trace)).total_instructions
