"""AES-128 tests: FIPS-197 vectors plus structural properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import Aes128

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# NIST SP 800-38A ECB-AES128 vectors.
SP800_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP800_BLOCKS = [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
]


class TestFipsVectors:
    def test_fips197_appendix_c(self):
        assert Aes128(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_fips197_decrypt(self):
        assert Aes128(FIPS_KEY).decrypt_block(FIPS_CIPHERTEXT) == FIPS_PLAINTEXT

    @pytest.mark.parametrize("plaintext_hex,ciphertext_hex", SP800_BLOCKS)
    def test_sp800_38a_ecb(self, plaintext_hex, ciphertext_hex):
        cipher = Aes128(SP800_KEY)
        assert cipher.encrypt_block(bytes.fromhex(plaintext_hex)) == bytes.fromhex(
            ciphertext_hex
        )


class TestStructure:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            Aes128(b"short")

    def test_bad_block_length(self):
        cipher = Aes128(FIPS_KEY)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"x" * 17)

    def test_deterministic(self):
        cipher = Aes128(FIPS_KEY)
        block = b"A" * 16
        assert cipher.encrypt_block(block) == cipher.encrypt_block(block)

    def test_key_sensitivity(self):
        other_key = bytes([FIPS_KEY[0] ^ 1]) + FIPS_KEY[1:]
        block = b"B" * 16
        assert Aes128(FIPS_KEY).encrypt_block(block) != Aes128(other_key).encrypt_block(
            block
        )

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=16, max_size=16))
    def test_roundtrip(self, block):
        cipher = Aes128(FIPS_KEY)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=16, max_size=16))
    def test_avalanche(self, block):
        cipher = Aes128(FIPS_KEY)
        flipped = bytes([block[0] ^ 1]) + block[1:]
        a = cipher.encrypt_block(block)
        b = cipher.encrypt_block(flipped)
        differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        # A single input-bit flip should change roughly half the output bits.
        assert differing_bits > 30
