"""Functional IVEC memory tests (the paper's closest prior co-design)."""

import pytest

from repro.dimm.faults import ChipFault, FaultKind
from repro.secure.errors import AttackDetected
from repro.secure.ivec_memory import IvecMemory


@pytest.fixture
def memory(keys):
    return IvecMemory(64, keys=keys)


class TestDataPath:
    def test_roundtrip(self, memory):
        memory.write(3, b"ivec data".ljust(64, b"\x00"))
        assert memory.read(3)[:9] == b"ivec data"

    def test_untouched_reads_zero(self, memory):
        assert memory.read(9) == bytes(64)

    def test_range_checked(self, memory):
        with pytest.raises(ValueError):
            memory.write(64, bytes(64))
        with pytest.raises(ValueError):
            memory.read(-1)

    def test_length_checked(self, memory):
        with pytest.raises(ValueError):
            memory.write(0, b"short")

    def test_data_at_rest_encrypted(self, memory):
        plaintext = b"cleartext secret".ljust(64, b"\x00")
        memory.write(0, plaintext)
        stored = b"".join(memory.dimm.read_line(0)[:8])
        assert plaintext[:16] not in stored


class TestCorrection:
    @pytest.mark.parametrize("chip", range(8))
    def test_data_chip_failure_corrected(self, keys, chip):
        memory = IvecMemory(64, keys=keys)
        memory.write(0, b"D" * 64)
        memory.dimm.inject_fault(
            chip, ChipFault(FaultKind.SINGLE_WORD, line_address=0, seed=chip)
        )
        assert memory.read(0) == b"D" * 64
        assert memory.stats.counter("corrections").value == 1

    def test_correction_scrubs(self, memory):
        memory.write(0, b"S" * 64)
        memory.dimm.inject_fault(
            2, ChipFault(FaultKind.SINGLE_WORD, line_address=0, seed=9)
        )
        memory.read(0)
        memory.dimm.clear_faults()
        assert memory.read(0) == b"S" * 64
        assert memory.stats.counter("mismatches").value == 1  # only once

    def test_two_chip_failure_is_attack(self, memory):
        memory.write(0, b"X" * 64)
        memory.dimm.inject_fault(
            1, ChipFault(FaultKind.SINGLE_WORD, line_address=0, seed=1)
        )
        memory.dimm.inject_fault(
            5, ChipFault(FaultKind.SINGLE_WORD, line_address=0, seed=2)
        )
        with pytest.raises(AttackDetected):
            memory.read(0)


class TestSecurity:
    def test_tamper_detected(self, memory):
        memory.write(4, b"T" * 64)
        lanes = [bytearray(lane) for lane in memory.dimm.read_line(4)]
        lanes[0][0] ^= 1
        lanes[3][0] ^= 1  # two chips: beyond parity correction
        memory.dimm.write_line(4, [bytes(lane) for lane in lanes])
        with pytest.raises(AttackDetected):
            memory.read(4)

    def test_leaf_replay_detected(self, memory):
        memory.write(4, b"old!".ljust(64, b"\x00"))
        old_lanes = memory.dimm.read_line(4)
        old_mac = memory.tree.leaf_mac(4)
        memory.write(4, b"new!".ljust(64, b"\x00"))
        memory.dimm.write_line(4, old_lanes)
        memory.tree.tamper_leaf(4, old_mac)
        with pytest.raises(AttackDetected):
            memory.read(4)

    def test_tree_depth_positive(self, memory):
        assert memory.tree_depth >= 1
